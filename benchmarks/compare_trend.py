"""Cross-run benchmark trend comparison.

CI uploads ``benchmarks/output/BENCH_history.jsonl`` after every run (one
timestamped JSON line per gate measurement).  This script compares the
*current* run's records against a *baseline* history downloaded from a
previous run's artifact and flags regressions:

.. code-block:: console

   python benchmarks/compare_trend.py \
       --baseline previous/BENCH_history.jsonl \
       --current  benchmarks/output/BENCH_history.jsonl \
       --threshold 0.20 --warn-only

Records are matched by ``(gate, scenario, backend)`` — the same key the
snapshot file uses.  For each key present in both files, the *latest* line
per file is compared on measured ``seconds``: a current measurement more
than ``threshold`` slower than baseline is a regression.  Gates whose
baseline ran ungated (``gated: false`` — e.g. a single-core runner) are
compared but reported as informational only, since their absolute timings
are not comparable across runner shapes.

Exit status: 0 when clean (or ``--warn-only``), 1 on regression, and 0 with
a notice when either file is missing — the first CI run of a repository has
no baseline artifact to compare against, and that must not fail the build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

Key = Tuple[str, str, str]


def load_latest(path: Path) -> Dict[Key, dict]:
    """Latest record per ``(gate, scenario, backend)`` from a history file.

    Malformed lines are skipped (the file is append-only across process
    crashes, so a torn final line is possible and harmless).
    """
    latest: Dict[Key, dict] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "seconds" not in record:
                continue
            key = (
                str(record.get("gate", "")),
                str(record.get("scenario", "")),
                str(record.get("backend", "")),
            )
            latest[key] = record  # later lines win: the file is append-only
    return latest


def compare(
    baseline: Dict[Key, dict],
    current: Dict[Key, dict],
    threshold: float,
) -> Tuple[list, list, list]:
    """Returns ``(regressions, improvements_or_flat, informational)`` rows.

    Each row is ``(key, baseline_seconds, current_seconds, ratio)`` with
    ``ratio = current / baseline`` (>1 is slower).
    """
    regressions, clean, info = [], [], []
    for key in sorted(set(baseline) & set(current)):
        base_s = float(baseline[key]["seconds"])
        cur_s = float(current[key]["seconds"])
        if base_s <= 0:
            continue
        ratio = cur_s / base_s
        row = (key, base_s, cur_s, ratio)
        # A baseline measured ungated (1-CPU runner) is not a comparable
        # absolute timing — report it, never fail on it.
        if baseline[key].get("gated") is False or current[key].get("gated") is False:
            info.append(row)
        elif ratio > 1.0 + threshold:
            regressions.append(row)
        else:
            clean.append(row)
    return regressions, clean, info


def _print_rows(label: str, rows: list) -> None:
    if not rows:
        return
    print(f"{label}:")
    for (gate, scenario, backend), base_s, cur_s, ratio in rows:
        print(
            f"  {gate} / {scenario} / {backend}: "
            f"{base_s:.3f}s -> {cur_s:.3f}s ({ratio - 1.0:+.0%} vs baseline)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare two BENCH_history.jsonl files for regressions"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="history file from the previous run (downloaded artifact)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="history file produced by this run",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that counts as a regression (default: 0.20)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for noisy shared runners)",
    )
    args = parser.parse_args(argv)
    if not args.threshold > 0:
        parser.error(f"--threshold must be > 0, got {args.threshold}")

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not path.exists():
            # No baseline on the first run of a repo / branch: nothing to
            # compare is not a failure.
            print(f"compare_trend: no {label} history at {path}; skipping")
            return 0

    baseline = load_latest(args.baseline)
    current = load_latest(args.current)
    regressions, clean, info = compare(baseline, current, args.threshold)

    shared = len(regressions) + len(clean) + len(info)
    print(
        f"compare_trend: {shared} shared gate record(s), "
        f"threshold {args.threshold:.0%}"
    )
    _print_rows("regressions", regressions)
    _print_rows("within threshold", clean)
    _print_rows("informational (ungated runner)", info)
    only_new = sorted(set(current) - set(baseline))
    if only_new:
        print(f"new gates (no baseline): {len(only_new)}")
        for gate, scenario, backend in only_new:
            print(f"  {gate} / {scenario} / {backend}")

    if regressions and not args.warn_only:
        print(
            f"compare_trend: FAIL — {len(regressions)} gate(s) regressed "
            f"more than {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    if regressions:
        print(
            f"compare_trend: WARN — {len(regressions)} regression(s) "
            f"(--warn-only)",
        )
    else:
        print("compare_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
