"""Benchmark: Figure 7 — rendering time as a function of the reduction percentage."""

from __future__ import annotations

from repro.experiments.fig6_7_reduction import format_fig7, run_reduction_sweep


def test_fig7_reduction_sweep(run_once, scenario_64, scale_params):
    percentages = (0, 20, 40, 60, 80, 90, 94, 98, 100)
    result = run_once(
        run_reduction_sweep,
        scenario_64,
        percentages=percentages,
        niterations=scale_params["sweep_iterations"],
    )
    print("\n" + format_fig7(result))

    means = result.means()
    # Rendering time decreases (weakly) with the percentage of reduced blocks.
    assert means[0] == max(means)
    assert means[-1] == min(means)
    # Section II-C / E13: everything reduced collapses the cost to ~1 s.
    assert result.mean(100.0) < 3.0
    # The paper's key observation: the improvement is NOT proportional to the
    # percentage — a majority of blocks must be reduced before the slowest
    # process benefits, so the 0 -> 50 percent drop is small compared with the
    # 50 -> 100 percent drop.
    drop_first_half = result.mean(0.0) - result.mean(40.0)
    drop_second_half = result.mean(80.0) - result.mean(100.0)
    assert drop_second_half > drop_first_half
