"""Process-backend and scaling-sweep performance gates.

Three gates guard the PR 7 performance story, each recording a
machine-readable entry in ``benchmarks/output/BENCH_engine.json``:

* the vectorised :meth:`NetworkCostModel.alltoallv` must price a 4096-rank
  byte matrix ≥10x faster than the reference Python loop — the optimisation
  that keeps 10,000-virtual-rank sweeps out of O(P²) Python;
* a cost-model-driven weak-scaling sweep of ``blue_waters_64`` must reach
  10,000 virtual ranks well inside five minutes;
* on a GIL-bound scalar metric (:class:`PythonVarianceMetric` — the shape
  of a user-supplied scorer written without NumPy), the process backend's
  scoring must beat the thread backend's wherever there is more than one
  core to win on.  Single-core runners cannot exhibit that speedup (both
  backends degenerate to serial execution plus overhead), so there the gate
  asserts bitwise parity and records the measured ratio without enforcing
  it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.scoring_step import ParallelScoringStep, ProcessScoringStep
from repro.experiments.common import ExperimentScenario, cached_scenario
from repro.metrics.statistics import PythonVarianceMetric
from repro.scenarios.sweep import model_scaling_sweep
from repro.simmpi.costmodel import NetworkCostModel
from repro.utils.benchjson import record_bench
from repro.utils.procpool import default_process_workers

#: Required vectorised/loop ratio for the alltoallv pricing at P=4096.
MIN_ALLTOALLV_SPEEDUP = 10.0

#: Wall-clock budget (seconds) for the 10k-virtual-rank weak-scaling sweep.
SWEEP_BUDGET_SECONDS = 300.0

#: Required process/thread ratio for GIL-bound scoring on multi-core hosts.
MIN_GIL_SPEEDUP = 1.2


def _effective_workers() -> int:
    """Worker processes that can actually run concurrently on this host."""
    return min(default_process_workers(), os.cpu_count() or 1)


@pytest.fixture(scope="module")
def fine_scenario_64() -> ExperimentScenario:
    """64 ranks, 64 blocks per rank — the speedup-gate configuration."""
    return cached_scenario(name="blue_waters_64_fine")


def test_vectorized_alltoallv_speedup():
    """One NumPy pass over a 4096² byte matrix beats the Python loop ≥10x."""
    nranks = 4096
    model = NetworkCostModel.blue_waters()
    rng = np.random.default_rng(2016)
    matrix = rng.integers(0, 1 << 20, size=(nranks, nranks))

    start = time.perf_counter()
    vec_cost = model.alltoallv(matrix, nranks)
    vec_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loop_cost = model.alltoallv_loop(matrix, nranks)
    loop_seconds = time.perf_counter() - start

    assert vec_cost == loop_cost  # identical floats, not merely close
    speedup = loop_seconds / vec_seconds
    record_bench(
        gate="alltoallv_vectorized",
        scenario=f"random_matrix_P{nranks}",
        backend="vectorized",
        seconds=vec_seconds,
        baseline_backend="loop",
        baseline_seconds=loop_seconds,
        passed=speedup >= MIN_ALLTOALLV_SPEEDUP,
    )
    print(
        f"\nalltoallv P={nranks}: loop {loop_seconds:.2f}s, "
        f"vectorized {vec_seconds * 1e3:.1f} ms, speedup {speedup:.0f}x"
    )
    assert speedup >= MIN_ALLTOALLV_SPEEDUP, (
        f"vectorized alltoallv speedup {speedup:.1f}x below required "
        f"{MIN_ALLTOALLV_SPEEDUP}x (loop {loop_seconds:.2f}s, "
        f"vectorized {vec_seconds:.3f}s)"
    )


def test_weak_scaling_sweep_reaches_10k_ranks_in_minutes():
    """The model-driven weak-scaling sweep prices 10,000 virtual ranks fast.

    The sweep runs the full pricing path — decomposition math, platform
    scoring/reduction costs, the gather+bcast sorting collective, the dense
    10⁸-cell redistribution matrix through the vectorised alltoallv, and the
    rendering proxy — and must finish far inside the five-minute budget.
    """
    start = time.perf_counter()
    sweep = model_scaling_sweep(
        "blue_waters_64", ranks=(64, 1024, 10000), mode="weak"
    )
    elapsed = time.perf_counter() - start

    points = sweep["points"]
    assert [p["ncores"] for p in points] == [64, 1024, 10000]
    assert points[-1]["nblocks"] == 10000 * 2 * 2 * 8
    for point in points:
        steps = point["modelled_steps"]
        assert set(steps) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
        assert all(value >= 0.0 for value in steps.values())
        assert point["modelled_total"] == pytest.approx(sum(steps.values()))
    # Weak scaling: modelled totals stay within the same order of magnitude
    # (communication grows slowly with P; per-rank compute is constant).
    totals = [p["modelled_total"] for p in points]
    assert max(totals) < 2.0 * min(totals)

    record_bench(
        gate="weak_scaling_sweep_10k",
        scenario="blue_waters_64[weak@10000]",
        backend="cost_model",
        seconds=elapsed,
        passed=elapsed < SWEEP_BUDGET_SECONDS,
        budget_seconds=SWEEP_BUDGET_SECONDS,
        max_ranks=10000,
    )
    print(f"\nweak-scaling sweep to 10k ranks: {elapsed:.1f}s")
    assert elapsed < SWEEP_BUDGET_SECONDS, (
        f"10k-rank weak-scaling sweep took {elapsed:.0f}s, "
        f"budget {SWEEP_BUDGET_SECONDS:.0f}s"
    )


def test_process_beats_threads_on_gil_bound_scoring(fine_scenario_64):
    """GIL-bound scalar scoring: process backend vs thread backend.

    ``PythonVarianceMetric`` holds the GIL for its entire per-block loop, so
    thread workers serialise; worker processes do not.  Bitwise score parity
    is asserted unconditionally; the ≥1.2x wall-clock gate applies only
    where a second core exists to win.
    """
    blocks = fine_scenario_64.blocks_for(0)
    platform = fine_scenario_64.platform
    metric = PythonVarianceMetric()
    threads = ParallelScoringStep(metric, platform)
    procs = ProcessScoringStep(metric, platform)

    thread_pairs, _, _ = threads.run(blocks)
    process_pairs, _, _ = procs.run(blocks)
    assert process_pairs == thread_pairs  # bitwise parity before timing

    def best_of(step, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            step.run(blocks)
            best = min(best, time.perf_counter() - start)
        return best

    workers = _effective_workers()
    gated = workers >= 2
    for _attempt in range(3):
        thread_seconds = best_of(threads)
        process_seconds = best_of(procs)
        speedup = thread_seconds / process_seconds
        if not gated or speedup >= MIN_GIL_SPEEDUP:
            break

    record_bench(
        gate="gil_bound_scoring",
        scenario="blue_waters_64_fine",
        backend="process",
        seconds=process_seconds,
        baseline_backend="parallel",
        baseline_seconds=thread_seconds,
        passed=(speedup >= MIN_GIL_SPEEDUP) if gated else None,
        workers=workers,
        gated=gated,
        metric="PYVAR",
    )
    print(
        f"\nGIL-bound scoring 4096 blocks / {workers} worker(s): "
        f"threads {thread_seconds * 1e3:.0f} ms, "
        f"process {process_seconds * 1e3:.0f} ms, ratio {speedup:.2f}x"
    )
    if gated:
        assert speedup >= MIN_GIL_SPEEDUP, (
            f"process backend {speedup:.2f}x vs threads on GIL-bound scoring "
            f"with {workers} workers (threads {thread_seconds:.3f}s, "
            f"process {process_seconds:.3f}s); required {MIN_GIL_SPEEDUP}x"
        )
