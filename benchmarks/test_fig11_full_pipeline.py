"""Benchmark: Figure 11 — the full pipeline (reduction + redistribution) under adaptation."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig10_adaptation import format_fig10
from repro.experiments.fig11_full_pipeline import (
    PAPER_FIG11_TARGETS,
    run_full_pipeline_adaptation,
)


def test_fig11_full_pipeline_64(run_once, scenario_64, scale_params):
    result = run_once(
        run_full_pipeline_adaptation,
        scenario_64,
        targets=PAPER_FIG11_TARGETS[64],
        niterations=scale_params["adaptation_iterations"],
    )
    print("\n" + format_fig10(result, label="Figure 11"))

    assert result.redistribution == "round_robin"
    for target, trace in result.traces.items():
        tail = np.asarray(trace.times[5:])
        # With redistribution the pipeline meets much tighter targets than
        # Figure 10's: the tail of the run stays within ~2x of the budget.
        assert np.median(tail) <= 2.0 * target
        assert np.median(tail) >= 0.1 * target


def test_fig11_full_pipeline_400(run_once, scenario_400, scale_params):
    result = run_once(
        run_full_pipeline_adaptation,
        scenario_400,
        targets=PAPER_FIG11_TARGETS[400],
        niterations=scale_params["adaptation_iterations"],
    )
    print("\n" + format_fig10(result, label="Figure 11"))

    for target, trace in result.traces.items():
        tail = np.asarray(trace.times[5:])
        assert np.median(tail) <= 2.5 * target
