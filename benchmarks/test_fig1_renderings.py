"""Benchmark: Figure 1 — original vs filtered renderings of the dBZ field."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.fig1_renderings import run_fig1

OUTPUT_DIR = Path(__file__).parent / "output"


def test_fig1_renderings(run_once, scenario_64):
    result = run_once(run_fig1, scenario_64)
    paths = result.save(OUTPUT_DIR)
    print(
        "\nFigure 1 — rendering cost: original %.1f s, all blocks reduced %.2f s"
        % (result.render_seconds_original, result.render_seconds_filtered)
    )
    for name, path in paths.items():
        print(f"  wrote {path}")

    # Section II-C: reducing every block collapses the rendering cost (50 s -> 1 s
    # at 400 cores in the paper); here we require at least a 20x collapse.
    assert result.render_seconds_filtered < result.render_seconds_original / 20.0
    # The filtered images still contain the storm.
    assert result.volume_filtered.max() > 0.2
    assert result.colormap_filtered.max() > 0.2
