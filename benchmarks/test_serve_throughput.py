"""Serve execution-tier throughput gate.

``repro serve`` exists so many clients can share one warm replay cache; the
process execution tier exists so those concurrent runs are not serialised by
the GIL when the requested metric is plain Python (``PYVAR`` — the shape of
a user-supplied scalar scorer).  This gate drives N identical cached-replay
runs *concurrently* against a thread-tier and a process-tier server and
requires the process tier to finish the batch at least
:data:`MIN_SERVE_SPEEDUP` times faster wherever there are enough cores to
win that margin.

Core-count-aware, like the PR 7 process gates: with W effective workers the
ideal batch speedup is W, so the required ratio is
``min(MIN_SERVE_SPEEDUP, 0.6 * W)`` — on a single-core runner both tiers
degenerate to serial execution and the ratio is recorded as an ungated
trend line.  Streamed-event parity between the tiers is asserted before any
timing (the process tier must change *where* runs execute, never what they
produce), and a timeout-cancelled run on each tier must leave zero owned
shm segments behind.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
from pathlib import Path

import pytest

from repro.grid.shm import live_owned_segments
from repro.serve.server import ServeApp
from repro.utils.benchjson import record_bench
from repro.utils.procpool import default_process_workers, shutdown_shared_pool

#: Required process/thread batch-throughput ratio at full core count.
MIN_SERVE_SPEEDUP = 2.0

#: Concurrent identical requests per timed batch.
N_RUNS = 4

#: The benchmark workload: cached replay + GIL-bound scalar scoring.
PAYLOAD = {"scenario": "blue_waters_64", "snapshots": 2, "metric": "PYVAR"}


def _effective_workers() -> int:
    """Worker processes that can actually run concurrently on this host."""
    return min(default_process_workers(), os.cpu_count() or 1)


def _required_speedup(workers: int) -> float:
    """The ratio this host must clear: ideal is ``workers``, demand 60%."""
    return min(MIN_SERVE_SPEEDUP, 0.6 * workers)


def _post_run(port: int, payload: dict) -> list:
    """One blocking ``POST /run``; returns the decoded NDJSON events."""
    body = json.dumps(payload).encode("utf-8")
    with socket.create_connection(("127.0.0.1", port), timeout=300) as sock:
        sock.sendall(
            (
                f"POST /run HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("utf-8")
            + body
        )
        data = b""
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    _, _, payload_bytes = data.partition(b"\r\n\r\n")
    lines = payload_bytes.decode("utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def _comparable(events: list) -> list:
    """Events with tier-/cache-dependent fields stripped, for parity."""
    out = []
    for event in events:
        event = dict(event)
        event.pop("cache", None)  # hit/miss + live counters
        event.pop("execution", None)  # the one field that must differ
        event.pop("cache_key", None)
        out.append(event)
    return out


async def _drive_tier(app: ServeApp, check_timeout_leak: bool) -> dict:
    """Warm the cache, run one parity request, then time the batch."""
    loop = asyncio.get_running_loop()
    server = await app.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    async with server:
        warm = await loop.run_in_executor(None, _post_run, port, PAYLOAD)
        assert warm[0]["cache"] == "miss" and warm[-1]["type"] == "summary", warm[-1]
        parity = await loop.run_in_executor(None, _post_run, port, PAYLOAD)
        assert parity[0]["cache"] == "hit"

        start = time.perf_counter()
        batches = await asyncio.gather(
            *(
                loop.run_in_executor(None, _post_run, port, PAYLOAD)
                for _ in range(N_RUNS)
            )
        )
        seconds = time.perf_counter() - start
        for events in batches:
            assert events[-1]["type"] == "summary", events[-1]
            assert events[0]["cache"] == "hit"

        if check_timeout_leak:
            cancelled = await loop.run_in_executor(
                None, _post_run, port, {**PAYLOAD, "timeout_s": 0.01}
            )
            assert cancelled[-1]["type"] == "error", cancelled[-1]
            assert cancelled[-1]["reason"] == "timeout"
            assert live_owned_segments() == (), (
                "timeout-cancelled run leaked shm segments: "
                f"{live_owned_segments()}"
            )
    app.close(grace_s=5.0)
    return {"seconds": seconds, "events": _comparable(parity)}


@pytest.fixture()
def fresh_pool():
    """Leave no worker/manager processes behind to skew later benchmarks."""
    yield
    shutdown_shared_pool()


def test_process_tier_beats_thread_tier_on_concurrent_replays(
    tmp_path: Path, fresh_pool
):
    """N concurrent GIL-bound cached replays: process tier vs thread tier."""
    workers = _effective_workers()
    gated = workers >= 2
    required = _required_speedup(workers)

    # The process app forks its worker pool at construction — build it
    # before any thread-tier server threads exist.
    process_app = ServeApp(
        tmp_path / "process", max_workers=N_RUNS, execution="process"
    )
    thread_app = ServeApp(
        tmp_path / "thread", max_workers=N_RUNS, execution="thread"
    )

    for _attempt in range(3):
        thread_result = asyncio.run(
            _drive_tier(thread_app, check_timeout_leak=True)
        )
        process_result = asyncio.run(
            _drive_tier(process_app, check_timeout_leak=True)
        )
        speedup = thread_result["seconds"] / process_result["seconds"]
        if not gated or speedup >= required:
            break
        # Re-run on a fresh pair of caches: timing noise, not correctness.
        thread_app = ServeApp(
            tmp_path / f"thread{_attempt}", max_workers=N_RUNS, execution="thread"
        )
        process_app = ServeApp(
            tmp_path / f"process{_attempt}", max_workers=N_RUNS, execution="process"
        )

    # Parity before any throughput claim: both tiers must stream identical
    # iteration rows and summaries for the same request (only the start
    # event's execution field and the live cache counters may differ).
    assert process_result["events"] == thread_result["events"]

    record_bench(
        gate="serve_tier_throughput",
        scenario=f"{PAYLOAD['scenario']}[x{N_RUNS} concurrent]",
        backend="process",
        seconds=process_result["seconds"],
        baseline_backend="thread",
        baseline_seconds=thread_result["seconds"],
        passed=(speedup >= required) if gated else None,
        workers=workers,
        gated=gated,
        required_speedup=required,
        metric=PAYLOAD["metric"],
    )
    print(
        f"\nserve tiers, {N_RUNS} concurrent PYVAR replays / "
        f"{workers} worker(s): thread {thread_result['seconds']:.2f}s, "
        f"process {process_result['seconds']:.2f}s, ratio {speedup:.2f}x "
        f"(required {required:.2f}x, gated={gated})"
    )
    if gated:
        assert speedup >= required, (
            f"process tier {speedup:.2f}x vs thread tier on {N_RUNS} "
            f"concurrent GIL-bound replays with {workers} workers "
            f"(thread {thread_result['seconds']:.2f}s, "
            f"process {process_result['seconds']:.2f}s); required {required:.2f}x"
        )
