"""Benchmark: Figure 8 — redistribution communication time vs reduction percentage."""

from __future__ import annotations

import pytest

from repro.perfmodel.calibration import PAPER_BASELINES
from repro.experiments.fig8_comm import format_fig8, run_comm_sweep


def test_fig8_comm_time_64(run_once, scenario_64, scale_params):
    result = run_once(
        run_comm_sweep,
        scenario_64,
        percentages=(0, 20, 40, 60, 80, 100),
        niterations=scale_params["sweep_iterations"],
    )
    print("\n" + format_fig8(result))

    for strategy in ("round_robin", "shuffle"):
        means = result.means(strategy)
        # Communication time decreases as more blocks are reduced (less data moves).
        assert means[0] > means[-1]
        assert all(m >= 0.0 for m in means)
    # E12: the full exchange costs on the order of the paper's ~1.2 s at 64 cores.
    full_exchange = result.mean("shuffle", 0.0)
    assert full_exchange == pytest.approx(PAPER_BASELINES["redistribution_comm"][64], rel=0.75)
    # Round robin and random shuffle move comparable volumes.
    assert result.mean("round_robin", 0.0) == pytest.approx(full_exchange, rel=0.5)
