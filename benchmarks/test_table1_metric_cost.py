"""Benchmark: Table I — computation time required for different metrics."""

from __future__ import annotations

import pytest

from repro.experiments.table1_metric_cost import format_table, run_table1


def test_table1_metric_cost(run_once, scenario_64):
    rows = run_once(run_table1, scenario_64, max_blocks=96)
    print("\n" + format_table(rows))

    by_name = {row.metric: row for row in rows}
    # Modelled costs reproduce the paper's Table I values on both core counts.
    for row in rows:
        assert row.modelled_seconds_64 == pytest.approx(row.paper_seconds_64, rel=0.2)
        assert row.modelled_seconds_400 == pytest.approx(row.paper_seconds_400, rel=0.2)
    # The measured (laptop) costs keep the paper's ordering: VAR and LEA are the
    # cheap metrics, TRILIN and ITL the expensive ones.
    assert by_name["VAR"].measured_seconds <= by_name["ITL"].measured_seconds
    assert by_name["LEA"].measured_seconds <= by_name["TRILIN"].measured_seconds
