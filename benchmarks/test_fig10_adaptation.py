"""Benchmark: Figure 10 — dynamic adaptation without load redistribution."""

from __future__ import annotations

from repro.experiments.fig10_adaptation import (
    PAPER_FIG10_TARGETS,
    format_fig10,
    run_adaptation,
)


def test_fig10_adaptation_64(run_once, scenario_64, scale_params):
    result = run_once(
        run_adaptation,
        scenario_64,
        targets=PAPER_FIG10_TARGETS[64],
        niterations=scale_params["adaptation_iterations"],
        redistribution="none",
    )
    print("\n" + format_fig10(result))

    for target, trace in result.traces.items():
        # After the first few iterations the run time settles near the target,
        # within the rendering-time variability the paper also observes (its
        # Figure 10 shows spikes to ~45 s against the 20 s target, i.e. a
        # comparable relative deviation for the tightest budget).
        assert trace.converged(warmup=5, tolerance=0.75), (
            f"target {target}: settling error {trace.settling_error():.2f}"
        )
        # Tighter targets require reducing more blocks.
    percents_by_target = {t: max(tr.percents) for t, tr in result.traces.items()}
    assert percents_by_target[20.0] >= percents_by_target[120.0]


def test_fig10_adaptation_400(run_once, scenario_400, scale_params):
    result = run_once(
        run_adaptation,
        scenario_400,
        targets=PAPER_FIG10_TARGETS[400],
        niterations=scale_params["adaptation_iterations"],
        redistribution="none",
    )
    print("\n" + format_fig10(result))

    for target, trace in result.traces.items():
        # The laptop-scale pipeline floor (~1.5 s of per-rank overhead) is a
        # sizeable fraction of the 400-core targets (30/15/7 s), so the
        # controller hovers around the tighter targets with more relative
        # noise than at 64 cores; a looser tolerance captures convergence.
        assert trace.converged(warmup=5, tolerance=1.0), (
            f"target {target}: settling error {trace.settling_error():.2f}"
        )
