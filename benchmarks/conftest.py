"""Shared configuration for the figure/table reproduction benchmarks.

Each benchmark module regenerates one artefact of the paper's evaluation
section, prints the regenerated rows/series, and asserts the qualitative
shape the paper reports.  ``REPRO_BENCH_SCALE=full`` switches to the paper's
iteration counts (10 iterations per configuration, 30 for the adaptive runs);
the default "small" scale uses fewer iterations so the whole suite completes
in a few minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScenario, bench_scale, cached_scenario


@pytest.fixture(scope="session")
def scale_params():
    """Iteration counts for the selected benchmark scale."""
    if bench_scale() == "full":
        return {
            "sweep_iterations": 10,
            "adaptation_iterations": 30,
            "fast_metric_only": False,
        }
    return {
        "sweep_iterations": 3,
        "adaptation_iterations": 12,
        "fast_metric_only": True,
    }


@pytest.fixture(scope="session")
def scenario_64() -> ExperimentScenario:
    """The paper's 64-core configuration (laptop-scale data, calibrated model)."""
    return cached_scenario(name="blue_waters_64", nsnapshots=10)


@pytest.fixture(scope="session")
def scenario_400() -> ExperimentScenario:
    """The paper's 400-core configuration (laptop-scale data, calibrated model)."""
    return cached_scenario(name="blue_waters_400", nsnapshots=10)


@pytest.fixture()
def run_once(benchmark):
    """Run a driver exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
