"""Benchmark: Figure 6 — per-iteration rendering time at fixed reduction percentages."""

from __future__ import annotations

from repro.experiments.fig6_7_reduction import format_fig6, run_reduction_sweep


def test_fig6_reduction_timeseries(run_once, scenario_64, scale_params):
    percentages = (0, 80, 90, 98, 100)  # the 64-core percentages plotted by the paper
    result = run_once(
        run_reduction_sweep,
        scenario_64,
        percentages=percentages,
        niterations=scale_params["sweep_iterations"],
    )
    print("\n" + format_fig6(result))

    # 0 percent is the slowest series, 100 percent the fastest, at every iteration.
    niter = len(result.series[0.0])
    for i in range(niter):
        assert result.series[0.0][i] >= result.series[100.0][i]
    # Reducing everything brings the rendering to the ~1 s overhead floor.
    assert result.mean(100.0) < 3.0
    # The storm evolves over the replayed iterations, so the uncontrolled
    # rendering time varies from iteration to iteration (paper's observation).
    if niter > 1:
        assert result.maximum(0.0) > result.minimum(0.0)
