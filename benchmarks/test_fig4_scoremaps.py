"""Benchmark: Figure 4 — scoremaps of the domain for each metric."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments.fig4_scoremaps import format_fig4, run_fig4
from repro.viz.framebuffer import Framebuffer

OUTPUT_DIR = Path(__file__).parent / "output"


def test_fig4_scoremaps(run_once, scenario_64):
    result = run_once(run_fig4, scenario_64)
    print("\n" + format_fig4(result))
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    Framebuffer.save_array_pgm(result.original_slice, OUTPUT_DIR / "fig4_original_dbz.pgm")
    for name, smap in result.scoremaps.items():
        Framebuffer.save_array_pgm(smap.image, OUTPUT_DIR / f"fig4_scoremap_{name.lower()}.pgm")

    field = np.asarray(scenario_64.dataset.snapshot(0).get_field("dbz"))
    storm_cols = field.max(axis=2) > 0.0
    for name, smap in result.scoremaps.items():
        norm = smap.normalised()
        # Every metric scores the storm region above the quiet background.
        assert norm[storm_cols].mean() > norm[~storm_cols].mean()
        # The high-score area is a localized minority of the domain.
        assert smap.high_score_fraction(0.9) < 0.5
