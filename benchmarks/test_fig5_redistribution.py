"""Benchmark: Figure 5 — rendering time under the redistribution policies."""

from __future__ import annotations

import pytest

from repro.experiments.common import render_baseline_seconds
from repro.experiments.fig5_redistribution import format_fig5, run_fig5


def test_fig5_redistribution_64(run_once, scenario_64, scale_params):
    result = run_once(
        run_fig5,
        scenario_64,
        niterations=scale_params["sweep_iterations"],
        fast_metric_only=scale_params["fast_metric_only"],
    )
    print("\n" + format_fig5(result))

    # The NONE baseline is anchored to the paper's 160 s.
    assert result.row("NONE").mean_seconds == pytest.approx(
        render_baseline_seconds(64), rel=0.35
    )
    # Redistribution speeds rendering up by several times (paper: ~4x on 64 cores).
    assert result.speedup("SHUFFLE") > 2.0
    assert result.speedup("VAR") > 2.0
    # The choice of metric (or random shuffling) makes little difference:
    # every redistribution policy lands within ~2x of every other.
    redistributed = [row.mean_seconds for row in result.rows if row.label != "NONE"]
    assert max(redistributed) / min(redistributed) < 2.5
    # Communication stays negligible relative to rendering (paper: ~1.2 s).
    assert result.row("SHUFFLE").mean_comm_seconds < 0.1 * result.row("SHUFFLE").mean_seconds


def test_fig5_redistribution_400(run_once, scenario_400, scale_params):
    result = run_once(
        run_fig5,
        scenario_400,
        niterations=scale_params["sweep_iterations"],
        fast_metric_only=True,
    )
    print("\n" + format_fig5(result))

    assert result.row("NONE").mean_seconds == pytest.approx(
        render_baseline_seconds(400), rel=0.35
    )
    # Redistribution still wins at 400 cores (paper: 5x; the laptop-scale dataset
    # offers less per-block parallel slack, see EXPERIMENTS.md).
    assert result.speedup("SHUFFLE") > 1.5
    assert result.speedup("VAR") > 1.5
    assert result.row("SHUFFLE").mean_comm_seconds < result.row("SHUFFLE").mean_seconds
