"""Benchmark: Figure 3 — pairwise rank agreement between the scoring metrics."""

from __future__ import annotations

from repro.experiments.fig3_metric_agreement import format_fig3, run_fig3


def test_fig3_metric_agreement(run_once, scenario_64):
    result = run_once(run_fig3, scenario_64, max_blocks=384)
    print("\n" + format_fig3(result))

    assert len(result.comparisons) == 15  # C(6, 2) pairs, as in the paper's grid
    # The quiet background blocks are ordered identically by every metric
    # (the diagonal lower-left segment of the paper's scatter plots).
    assert all(q >= 1 for q in result.quiet_prefix_size.values())
    # Metrics broadly agree (positive correlation), but not perfectly: the
    # paper's point is that they disagree on the ordering of the variable blocks.
    var_trilin = result.pair("VAR", "TRILIN")
    assert var_trilin.spearman > 0.5  # the paper notes TRILIN correlates well with VAR
    assert any(c.spearman < 0.999 for c in result.comparisons)
    assert all(c.spearman > 0.0 for c in result.comparisons)
