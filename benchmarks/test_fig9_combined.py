"""Benchmark: Figure 9 — combined effect of reduction and load redistribution."""

from __future__ import annotations

from repro.experiments.fig9_combined import format_fig9, run_combined_sweep


def test_fig9_combined_64(run_once, scenario_64, scale_params):
    percentages = (0, 40, 80, 98, 100)
    result = run_once(
        run_combined_sweep,
        scenario_64,
        percentages=percentages,
        niterations=scale_params["sweep_iterations"],
        strategies=("none", "round_robin", "shuffle"),
    )
    print("\n" + format_fig9(result))

    # Redistribution improves the rendering time at every percentage where
    # there is real work left (i.e. away from the all-reduced floor).
    for percent in (0.0, 40.0, 80.0):
        assert result.mean("round_robin", percent) <= result.mean("none", percent) * 1.05
        assert result.mean("shuffle", percent) <= result.mean("none", percent) * 1.05
    # Round-robin and random shuffling are equivalent (the paper's conclusion
    # that a score-guided redistribution adds nothing over statistical balance).
    for percent in (0.0, 40.0, 80.0):
        rr = result.mean("round_robin", percent)
        sh = result.mean("shuffle", percent)
        assert rr <= sh * 2.0 and sh <= rr * 2.0
