"""Engine benchmark: the vectorized backend must beat the serial per-block
loops ≥3x on the hot data-parallel steps — scoring, for the array metrics
(VAR) *and* for the coder metrics (FPZIP, the most expensive scorer of the
paper's Table I and the one its figures plot), and counting-mode rendering
(the load proxy the large virtual-rank experiments run) — and, now that
sorting, reduction, and redistribution are batched too, on the *entire*
fig11 pipeline end to end.  All three backends must reproduce the
fig10/fig11 runs identically, down to every field of every step report.

The speedup scenario uses the paper's 64-rank configuration with a finer
4×4×4 block decomposition (4,096 blocks): the regime the redistribution step
prefers (many small blocks to balance) and exactly where per-block Python
overhead dominates the serial scoring and rendering loops.
"""

from __future__ import annotations

import time

import pytest

from repro.cm1.dataset import CM1Dataset
from repro.core.config import AdaptationConfig
from repro.core.rendering_step import (
    ParallelRenderingStep,
    RenderingStep,
    VectorizedRenderingStep,
)
from repro.core.scoring_step import ScoringStep, VectorizedScoringStep
from repro.experiments.common import ExperimentScenario, cached_scenario
from repro.experiments.fig10_adaptation import PAPER_FIG10_TARGETS
from repro.experiments.fig11_full_pipeline import PAPER_FIG11_TARGETS
from repro.metrics.registry import create_metric
from repro.scenarios import get_scenario
from repro.utils.benchjson import record_bench

#: Minimum serial/vectorized wall-clock ratio the engine must deliver on the
#: gated hot paths (scoring and counting-mode rendering).
MIN_SPEEDUP = 3.0

#: Minimum end-to-end wall-clock ratio of the streaming execution path
#: (mmap replay + pipelined engine) over the one-shot sequential path
#: (live CM1 simulation + sequential engine) on a multi-snapshot fig11 run.
MIN_STREAMING_SPEEDUP = 1.3


@pytest.fixture(scope="module")
def fine_scenario_64() -> ExperimentScenario:
    """64 ranks, 64 blocks per rank (finer granularity than the default 32).

    Resolved through the scenario registry ("blue_waters_64_fine"), so the
    gate configuration is listed by ``python -m repro list`` and covered by
    the registry-driven parity sweep like every other workload.
    """
    return cached_scenario(name="blue_waters_64_fine")


def _best_of(run, repeats: int = 5) -> float:
    """Best wall-clock of ``repeats`` calls of the zero-argument ``run``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("metric_name,repeats", [("VAR", 5), ("FPZIP", 2)])
def test_vectorized_scoring_speedup(fine_scenario_64, metric_name, repeats):
    """Vectorized scoring beats the serial per-block loop by ≥3x.

    VAR gates the array-metric path (PR 1); FPZIP gates the coder-metric
    path, whose batched ``compressed_size_batch`` collapses per-block
    payload assembly into one pass over the stacked batch.
    """
    blocks = fine_scenario_64.blocks_for(0)
    serial = ScoringStep(create_metric(metric_name), fine_scenario_64.platform)
    vector = VectorizedScoringStep(
        create_metric(metric_name), fine_scenario_64.platform
    )
    # Identical outputs first (the speedup must not come from doing less).
    serial_pairs, _, _ = serial.run(blocks)
    vector_pairs, _, _ = vector.run(blocks)
    assert serial_pairs == vector_pairs
    # Wall-clock gate: re-measure on transient noise (shared CI runners)
    # before failing; a genuine regression fails all attempts.
    for _attempt in range(3):
        serial_seconds = _best_of(lambda: serial.run(blocks), repeats=repeats)
        vector_seconds = _best_of(lambda: vector.run(blocks), repeats=repeats)
        speedup = serial_seconds / vector_seconds
        if speedup >= MIN_SPEEDUP:
            break
    record_bench(
        gate=f"scoring_speedup_{metric_name}",
        scenario="blue_waters_64_fine",
        backend="vectorized",
        seconds=vector_seconds,
        baseline_backend="serial",
        baseline_seconds=serial_seconds,
        passed=speedup >= MIN_SPEEDUP,
    )
    print(
        f"\nscoring 4096 blocks / 64 ranks ({metric_name}): "
        f"serial {serial_seconds * 1e3:.1f} ms, "
        f"vectorized {vector_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized {metric_name} scoring speedup {speedup:.2f}x below required "
        f"{MIN_SPEEDUP}x (serial {serial_seconds:.3f}s, vectorized "
        f"{vector_seconds:.3f}s)"
    )


def test_vectorized_rendering_speedup(fine_scenario_64):
    """Batched count-mode rendering beats the serial per-block loop by ≥3x.

    Rendering is the step the paper's adaptation loop exists to control; the
    vectorised backend replaces the per-block ``count_active_cells`` calls
    with one stacked ``count_active_cells_batch`` pass per shape group.  The
    speedup must not come from doing less: counts, triangle estimates, and
    modelled seconds are asserted identical (for all three backends) before
    the wall-clock gate.
    """
    blocks = fine_scenario_64.blocks_for(0)
    platform = fine_scenario_64.platform
    serial = RenderingStep(platform, render_mode="count")
    vector = VectorizedRenderingStep(platform, render_mode="count")
    parallel = ParallelRenderingStep(platform, render_mode="count")

    def observable(step):
        results, info = step.run(blocks, 0)
        return (
            [r.per_block_active_cells for r in results],
            [r.per_block_triangles for r in results],
            [r.npoints for r in results],
            info["triangles_per_rank"],
            info["modelled_per_rank"],
        )

    reference = observable(serial)
    assert observable(vector) == reference
    assert observable(parallel) == reference

    for _attempt in range(3):
        serial_seconds = _best_of(lambda: serial.run(blocks, 0))
        vector_seconds = _best_of(lambda: vector.run(blocks, 0))
        speedup = serial_seconds / vector_seconds
        if speedup >= MIN_SPEEDUP:
            break
    record_bench(
        gate="rendering_speedup",
        scenario="blue_waters_64_fine",
        backend="vectorized",
        seconds=vector_seconds,
        baseline_backend="serial",
        baseline_seconds=serial_seconds,
        passed=speedup >= MIN_SPEEDUP,
    )
    print(
        f"\nrendering (count) 4096 blocks / 64 ranks: "
        f"serial {serial_seconds * 1e3:.1f} ms, "
        f"vectorized {vector_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized rendering speedup {speedup:.2f}x below required "
        f"{MIN_SPEEDUP}x (serial {serial_seconds:.3f}s, vectorized "
        f"{vector_seconds:.3f}s)"
    )


def test_reduction_ladder_quality_vs_cost(fine_scenario_64):
    """The mipmap ladder's middle rung earns its payload bytes: level-1
    strided reduction must reconstruct with strictly lower TRILIN error than
    corner reduction while shipping at most 1/4 of the full-block payload.

    The tracked quantity is the level-1/corner error ratio (lower is
    better), recorded through ``record_bench`` so ``compare_trend.py`` flags
    a ladder-quality regression across runs exactly like a wall-clock one.
    """
    import numpy as np

    from repro.grid.block import level_shape
    from repro.grid.reduction import reduction_error_batch

    blocks = fine_scenario_64.all_blocks(0)
    by_shape = {}
    for b in blocks:
        by_shape.setdefault(tuple(b.data.shape), []).append(
            np.asarray(b.data, dtype=np.float64)
        )
    level1_sum = corner_sum = 0.0
    level1_points = full_points = 0
    worst_fraction = 0.0  # largest single-block level-1 payload fraction
    for shape, group in by_shape.items():
        stacked = np.stack(group)
        level1_sum += float(reduction_error_batch(stacked, level=1).sum())
        corner_sum += float(reduction_error_batch(stacked, level=2).sum())
        level1_points += len(group) * int(np.prod(level_shape(1, shape)))
        full_points += len(group) * int(np.prod(shape))
        worst_fraction = max(
            worst_fraction, float(np.prod(level_shape(1, shape)) / np.prod(shape))
        )
    level1_mean = level1_sum / len(blocks)
    corner_mean = corner_sum / len(blocks)
    error_ratio = level1_mean / corner_mean
    # Cost is what the pipeline ships: total level-1 payload bytes over
    # total full-block bytes (tiny remainder blocks can individually sit a
    # shade above 1/4 — e.g. 6x6x5 -> 4*4*3/180 = 0.267 — without moving
    # the shipped volume).
    payload_fraction = level1_points / full_points

    full_shape = blocks[0].extent.shape

    passed = level1_mean < corner_mean and payload_fraction <= 0.25
    record_bench(
        gate="reduction_ladder_quality",
        scenario="blue_waters_64_fine",
        backend="level1",
        seconds=error_ratio,
        baseline_backend="corners",
        baseline_seconds=1.0,
        passed=passed,
        payload_fraction=payload_fraction,
        worst_block_payload_fraction=worst_fraction,
        level1_mean_error=level1_mean,
        corner_mean_error=corner_mean,
        nblocks=len(blocks),
    )
    print(
        f"\nreduction ladder quality ({len(blocks)} blocks, "
        f"block shape {full_shape}): level-1 error {level1_mean:.4g}, "
        f"corner error {corner_mean:.4g} (ratio {error_ratio:.3f}), "
        f"level-1 payload fraction {payload_fraction:.3f}"
    )
    assert level1_mean < corner_mean, (
        f"level-1 reduction must beat corners on TRILIN error "
        f"(level-1 {level1_mean:.4g} >= corners {corner_mean:.4g})"
    )
    assert payload_fraction <= 0.25, (
        f"level-1 payload fraction {payload_fraction:.3f} exceeds the 1/4 "
        f"full-block budget for block shape {full_shape}"
    )


def test_fig11_full_pipeline_speedup(fine_scenario_64):
    """The whole fig11 iteration — all five Figure-2 steps — runs ≥3x faster
    on the vectorized backend than on the serial reference.

    This is the gate the backend registry exists to win: after PRs 1–3 the
    fig11 hot path was dominated by the unvectorized middle of the pipeline
    (per-block sorting/reduction/redistribution loops), so scoring and
    rendering speedups alone could not move the end-to-end number.  The
    measured iteration runs the fig11 configuration (VAR metric, round-robin
    redistribution) at a 50% reduction percentage, the middle of the
    adaptive band the fig11 runs settle into.
    """
    blocks = fine_scenario_64.blocks_for(0)

    def build(engine):
        return fine_scenario_64.build_pipeline(
            metric="VAR", redistribution="round_robin", engine=engine
        )

    serial = build("serial")
    vector = build("vectorized")

    def iteration(pipeline):
        return lambda: pipeline.process_iteration(blocks, percent_override=50.0)

    for _attempt in range(3):
        serial_seconds = _best_of(iteration(serial), repeats=3)
        vector_seconds = _best_of(iteration(vector), repeats=3)
        speedup = serial_seconds / vector_seconds
        if speedup >= MIN_SPEEDUP:
            break
    record_bench(
        gate="fig11_pipeline_speedup",
        scenario="blue_waters_64_fine",
        backend="vectorized",
        seconds=vector_seconds,
        baseline_backend="serial",
        baseline_seconds=serial_seconds,
        passed=speedup >= MIN_SPEEDUP,
    )
    print(
        f"\nfig11 full pipeline 4096 blocks / 64 ranks: "
        f"serial {serial_seconds * 1e3:.1f} ms, "
        f"vectorized {vector_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized full-pipeline speedup {speedup:.2f}x below required "
        f"{MIN_SPEEDUP}x (serial {serial_seconds:.3f}s, vectorized "
        f"{vector_seconds:.3f}s)"
    )


def test_fig11_multisnapshot_streaming_speedup(tmp_path):
    """The streaming execution path this PR introduces — a raw-layout mmap
    replay feeding the pipelined engine — beats the pre-existing one-shot
    path (live CM1 simulation + sequential engine) ≥1.3x end to end on a
    multi-snapshot fig11 run.

    Both sides do the complete job of "turn a scenario config into per-
    iteration fig11 results": the baseline simulates every CM1 snapshot and
    runs the five steps strictly in sequence (the pre-PR behaviour of
    ``python -m repro run``); the gated path replays the snapshots through
    read-only ``np.memmap`` views of a raw-layout :class:`DatasetStore` —
    zero deserialisation, no re-simulation — and schedules the stage graph
    with :class:`PipelinedEngine`.  On a single-core runner the win is
    dominated by the replay cache (the stage overlap needs spare cores to
    pay off in wall-clock); the engine-only overlap is recorded separately
    as an ungated trend measurement so multi-core runners show it.

    The speedup must not come from doing less: every per-iteration result
    of the streaming run is asserted identical to the sequential run first.
    """
    config = get_scenario("blue_waters_64").build(nsnapshots=4)
    store_dir = tmp_path / "fig11-replay"

    def run_with(scenario, pipelined):
        pipeline = scenario.build_pipeline(
            metric="VAR", redistribution="round_robin", pipelined=pipelined
        )
        return pipeline.run(scenario.iteration_blocks(), percent_override=50.0)

    def cold_run():
        # Fresh scenario: simulates CM1 from scratch, like a one-shot CLI run.
        return run_with(ExperimentScenario(config), pipelined=False)

    def warm_run():
        dataset = CM1Dataset.load(store_dir, mmap=True)
        return run_with(ExperimentScenario(config, dataset=dataset), pipelined=True)

    # Warm the replay store once; persisting is charged to neither side
    # (serve mode pays it on the first request only).
    ExperimentScenario(config).dataset.save(store_dir, layout="raw")

    def rows(run):
        return [
            (
                r.iteration, r.percent_reduced, r.nblocks, r.nreduced,
                r.moved_bytes, dict(r.modelled_steps), r.modelled_total,
                tuple(r.triangles_per_rank),
            )
            for r in run.iterations
        ]

    assert rows(warm_run()) == rows(cold_run())

    for _attempt in range(3):
        cold_seconds = _best_of(cold_run, repeats=2)
        warm_seconds = _best_of(warm_run, repeats=2)
        speedup = cold_seconds / warm_seconds
        if speedup >= MIN_STREAMING_SPEEDUP:
            break
    record_bench(
        gate="fig11_streaming_speedup",
        scenario="blue_waters_64",
        backend="pipelined+mmap-replay",
        seconds=warm_seconds,
        baseline_backend="sequential+simulate",
        baseline_seconds=cold_seconds,
        passed=speedup >= MIN_STREAMING_SPEEDUP,
        snapshots=4,
    )
    print(
        f"\nfig11 4-snapshot run: one-shot {cold_seconds * 1e3:.0f} ms, "
        f"streaming {warm_seconds * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_STREAMING_SPEEDUP, (
        f"streaming fig11 speedup {speedup:.2f}x below required "
        f"{MIN_STREAMING_SPEEDUP}x (one-shot {cold_seconds:.3f}s, "
        f"streaming {warm_seconds:.3f}s)"
    )

    # Engine-only overlap trend (ungated): same blocks, sequential vs
    # pipelined.  On a single core this hovers around 1.0x — the stage
    # overlap converts wall-clock to concurrency only when cores are spare —
    # so it is recorded for the history file, not asserted.
    scenario = cached_scenario(name="blue_waters_64")
    blocks = [scenario.blocks_for(i % len(scenario.dataset)) for i in range(4)]
    engine_seconds = {}
    for pipelined in (False, True):
        pipeline = scenario.build_pipeline(
            metric="VAR", redistribution="round_robin", pipelined=pipelined
        )
        engine_seconds[pipelined] = _best_of(
            lambda: pipeline.run(blocks, percent_override=50.0), repeats=2
        )
    record_bench(
        gate="fig11_pipelined_engine_overlap",
        scenario="blue_waters_64",
        backend="pipelined",
        seconds=engine_seconds[True],
        baseline_backend="sequential",
        baseline_seconds=engine_seconds[False],
        snapshots=4,
    )
    print(
        f"engine-only 4-snapshot run: sequential "
        f"{engine_seconds[False] * 1e3:.0f} ms, pipelined "
        f"{engine_seconds[True] * 1e3:.0f} ms "
        f"({engine_seconds[False] / engine_seconds[True]:.2f}x)"
    )


def test_fig11_step_reports_identical_on_every_field(fine_scenario_64):
    """Serial, vectorized, and parallel step reports agree on *every* field
    of *every* step of a fig11 adaptive run — modelled per-rank seconds,
    payload bytes, counters, and per-rank counters; measured wall-clock is
    the one field that legitimately differs (only its per-rank shape is
    compared)."""

    def fig11_reports(engine, niterations=2):
        pipeline = fine_scenario_64.build_pipeline(
            metric="VAR",
            redistribution="round_robin",
            adaptation=AdaptationConfig(
                enabled=True, target_seconds=PAPER_FIG11_TARGETS[64][0]
            ),
            engine=engine,
        )
        reports = []
        for _ in range(niterations):
            result, _ = pipeline.process_iteration(fine_scenario_64.blocks_for(0))
            reports.append(result.step_reports)
        return reports

    reference = fig11_reports("serial")
    for engine in ("vectorized", "parallel"):
        other = fig11_reports(engine)
        for ref_iter, other_iter in zip(reference, other):
            assert set(other_iter) == set(ref_iter)
            for name, ref in ref_iter.items():
                report = other_iter[name]
                assert report.step == ref.step
                assert report.modelled_per_rank == ref.modelled_per_rank, (
                    engine,
                    name,
                )
                assert report.payload_bytes == ref.payload_bytes, (engine, name)
                assert report.counters == ref.counters, (engine, name)
                assert report.per_rank_counters == ref.per_rank_counters, (
                    engine,
                    name,
                )
                assert len(report.measured_per_rank) == len(ref.measured_per_rank)


def _adaptive_trace(scenario, redistribution, target, engine, niterations=4):
    pipeline = scenario.build_pipeline(
        metric="VAR",
        redistribution=redistribution,
        adaptation=AdaptationConfig(enabled=True, target_seconds=target),
        engine=engine,
    )
    trace = []
    for i in range(niterations):
        result, _ = pipeline.process_iteration(
            scenario.blocks_for(i % len(scenario.dataset))
        )
        trace.append(
            (
                result.percent_reduced,
                result.nreduced,
                result.moved_bytes,
                tuple(result.triangles_per_rank),
                result.modelled_total,
            )
        )
    return trace


@pytest.mark.parametrize(
    "redistribution,target",
    [
        ("none", PAPER_FIG10_TARGETS[64][1]),
        ("round_robin", PAPER_FIG11_TARGETS[64][0]),
    ],
    ids=["fig10", "fig11"],
)
def test_backends_identical_on_paper_scenarios(scenario_64, redistribution, target):
    """Serial, vectorized, and parallel fig10/fig11 runs are identical."""
    serial = _adaptive_trace(scenario_64, redistribution, target, "serial")
    vector = _adaptive_trace(scenario_64, redistribution, target, "vectorized")
    parallel = _adaptive_trace(scenario_64, redistribution, target, "parallel")
    assert serial == vector
    assert serial == parallel


@pytest.mark.parametrize(
    "redistribution,target",
    [
        ("none", PAPER_FIG10_TARGETS[64][1]),
        ("round_robin", PAPER_FIG11_TARGETS[64][0]),
    ],
    ids=["fig10", "fig11"],
)
def test_backends_identical_with_coder_metric(scenario_64, redistribution, target):
    """The coder-metric (FPZIP) batched path reproduces the paper protocols
    identically on every backend — the parity discipline of the ≥3x gate."""

    def trace(engine):
        pipeline = scenario_64.build_pipeline(
            metric="FPZIP",
            redistribution=redistribution,
            adaptation=AdaptationConfig(enabled=True, target_seconds=target),
            engine=engine,
        )
        result, _ = pipeline.process_iteration(scenario_64.blocks_for(0))
        return (
            result.percent_reduced,
            result.nreduced,
            result.moved_bytes,
            tuple(result.triangles_per_rank),
            result.modelled_total,
        )

    serial = trace("serial")
    assert serial == trace("vectorized")
    assert serial == trace("parallel")
