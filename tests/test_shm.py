"""Tests for repro.grid.shm: shared-memory block batches and leak accounting.

The process backend's correctness story rests on two properties tested here:

* pickling a :class:`SharedBlockBatch` ships a ~100-byte handle, never the
  payload, and the attached view maps the same bytes read-only;
* every code path that creates a segment — including ones that die inside a
  worker — disposes of it, observable through :func:`live_owned_segments`.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.scoring_step import ProcessScoringStep
from repro.experiments.common import ExperimentScenario
from repro.grid.block import Block, BlockExtent
from repro.grid.shm import (
    SharedBatchError,
    SharedBlockBatch,
    ShmBatchHandle,
    live_owned_segments,
    purge_owned_segments,
)
from repro.metrics.base import MetricCost, ScoreMetric
from repro.scenarios import get_scenario


def _payload(seed: int = 0, shape=(3, 4, 5, 6)) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=shape)


def _blocks(n: int = 3, shape=(4, 4, 4)):
    sx, sy, sz = shape
    rng = np.random.default_rng(7)
    return [
        Block(
            block_id=i,
            extent=BlockExtent((i * sx, 0, 0), ((i + 1) * sx, sy, sz)),
            data=rng.normal(size=shape),
            owner=i % 2,
        )
        for i in range(n)
    ]


class ExplodingMetric(ScoreMetric):
    """Module-level (picklable) metric that always fails inside the worker."""

    name = "EXPLODE"
    cost = MetricCost(per_point=1e-9)
    supports_batch = False

    def score_block(self, data: np.ndarray) -> float:
        raise RuntimeError("metric exploded in worker")


class TestSharedBlockBatchLifecycle:
    def test_create_roundtrips_payload(self):
        payload = _payload()
        shared = SharedBlockBatch.create(payload)
        try:
            assert shared.owner
            assert shared.nbytes == payload.nbytes
            assert np.array_equal(shared.data, payload)
            # The owner's view is a *copy* in shared pages, not the input.
            assert shared.data.ctypes.data != payload.ctypes.data
        finally:
            shared.dispose()
        assert shared.name not in live_owned_segments()

    def test_create_validates_shape(self):
        with pytest.raises(ValueError, match="4-D"):
            SharedBlockBatch.create(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError, match="empty"):
            SharedBlockBatch.create(np.zeros((0, 4, 4, 4)))

    def test_attach_maps_same_bytes_readonly(self):
        payload = _payload(1)
        with SharedBlockBatch.create(payload) as owner:
            view = SharedBlockBatch.attach(owner.handle())
            try:
                assert not view.owner
                assert np.array_equal(view.data, payload)
                with pytest.raises(ValueError):
                    view.data[0, 0, 0, 0] = 42.0  # read-only mapping
            finally:
                view.close()

    def test_pickle_ships_handle_not_payload(self):
        payload = _payload(2, shape=(8, 16, 16, 16))  # 256 KiB
        with SharedBlockBatch.create(payload) as owner:
            blob = pickle.dumps(owner)
            assert len(blob) < 1024  # handle-sized, not payload-sized
            view = pickle.loads(blob)
            try:
                assert not view.owner
                assert np.array_equal(view.data, payload)
            finally:
                view.close()

    def test_handle_fields(self):
        with SharedBlockBatch.create(_payload()) as owner:
            handle = owner.handle()
            assert isinstance(handle, ShmBatchHandle)
            assert handle.name == owner.name
            assert handle.shape == (3, 4, 5, 6)
            assert np.dtype(handle.dtype) == np.float64

    def test_view_cannot_unlink(self):
        with SharedBlockBatch.create(_payload()) as owner:
            view = SharedBlockBatch.attach(owner.handle())
            try:
                with pytest.raises(SharedBatchError, match="only the creating"):
                    view.unlink()
            finally:
                view.close()

    def test_data_after_close_raises(self):
        shared = SharedBlockBatch.create(_payload())
        shared.dispose()
        with pytest.raises(SharedBatchError, match="closed"):
            shared.data

    def test_close_and_unlink_idempotent(self):
        shared = SharedBlockBatch.create(_payload())
        shared.close()
        shared.close()
        shared.unlink()
        shared.unlink()
        assert shared.name not in live_owned_segments()

    def test_close_before_unlink_still_destroys_segment(self):
        shared = SharedBlockBatch.create(_payload())
        handle = shared.handle()
        shared.close()  # view unmapped first ...
        shared.unlink()  # ... the segment must still be destroyed
        with pytest.raises(SharedBatchError):
            SharedBlockBatch.attach(handle)

    def test_attach_after_unlink_raises_clear_error(self):
        shared = SharedBlockBatch.create(_payload())
        handle = shared.handle()
        shared.dispose()
        with pytest.raises(SharedBatchError, match="already unlinked"):
            SharedBlockBatch.attach(handle)

    def test_context_manager_disposes(self):
        with SharedBlockBatch.create(_payload()) as shared:
            name = shared.name
            assert name in live_owned_segments()
        assert name not in live_owned_segments()

    def test_from_blocks_carries_metadata(self):
        blocks = _blocks()
        with SharedBlockBatch.from_blocks(blocks) as shared:
            batch = shared.batch
            assert batch.nblocks == len(blocks)
            assert list(batch.block_ids) == [b.block_id for b in blocks]
            stacked = np.stack([b.data for b in blocks])
            assert np.array_equal(batch.data, stacked)
            # The batch's payload IS the shared view, not a copy.
            assert batch.data.ctypes.data == shared.data.ctypes.data

    def test_bare_payload_has_no_batch(self):
        with SharedBlockBatch.create(_payload()) as shared:
            with pytest.raises(SharedBatchError, match="no block metadata"):
                shared.batch

    def test_from_blocks_carries_reduction_levels(self):
        """Level-1 payloads ship through shm with their ladder level intact."""
        from repro.grid.reduction import reduce_block

        blocks = [reduce_block(b, level=1) for b in _blocks(shape=(5, 4, 4))]
        with SharedBlockBatch.from_blocks(blocks) as shared:
            batch = shared.batch
            assert list(batch.levels) == [1] * len(blocks)
            rebuilt = batch.to_blocks()
            for original, copy in zip(blocks, rebuilt):
                assert copy.level == 1 and copy.reduced
                np.testing.assert_array_equal(copy.data, original.data)


class TestLeakAccounting:
    def test_live_owned_segments_tracks_lifecycle(self):
        before = live_owned_segments()
        a = SharedBlockBatch.create(_payload(3))
        b = SharedBlockBatch.create(_payload(4))
        live = live_owned_segments()
        assert a.name in live and b.name in live
        a.dispose()
        assert a.name not in live_owned_segments()
        assert b.name in live_owned_segments()
        b.dispose()
        assert live_owned_segments() == before

    def test_worker_exception_leaks_no_segments(self):
        """A metric that dies inside a worker must not leave segments behind
        (the step disposes its shared batches in a ``finally`` block)."""
        scenario = ExperimentScenario(get_scenario("tiny").tiny())
        step = ProcessScoringStep(ExplodingMetric(), scenario.platform)
        before = live_owned_segments()
        with pytest.raises(RuntimeError, match="metric exploded"):
            step.run(scenario.blocks_for(0))
        assert live_owned_segments() == before

    def test_purge_owned_segments_disposes_everything(self):
        """The last-resort sweep (cancelled serve runs): every segment this
        process still owns is disposed and reported, and a second purge is a
        no-op."""
        a = SharedBlockBatch.create(_payload(5))
        b = SharedBlockBatch.create(_payload(6))
        handle = a.handle()
        purged = purge_owned_segments()
        assert a.name in purged and b.name in purged
        assert live_owned_segments() == ()
        assert purge_owned_segments() == ()
        # The purged segments are really gone, not just unregistered.
        with pytest.raises(SharedBatchError):
            SharedBlockBatch.attach(handle)

    def test_purge_tolerates_already_disposed_segments(self):
        shared = SharedBlockBatch.create(_payload(8))
        shared.dispose()
        assert purge_owned_segments() == ()

    def test_process_backend_iteration_leaks_no_segments(self):
        """A full process-backend pipeline iteration cleans up every segment."""
        scenario = ExperimentScenario(get_scenario("tiny").tiny())
        before = live_owned_segments()
        pipeline = scenario.build_pipeline(
            metric="VAR", redistribution="round_robin", engine="process"
        )
        context = pipeline.engine.run_iteration(
            scenario.blocks_for(0), percent=50.0, iteration=0
        )
        assert context.per_rank_pairs  # the iteration did real work
        assert live_owned_segments() == before
