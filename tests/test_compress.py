"""Tests for the fpzip/zfp/lz-like compressors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitplane import (
    byte_lengths,
    float_to_ordered_uint,
    ordered_uint_to_float,
    pack_nibbles,
    unpack_nibbles,
    zigzag_decode,
    zigzag_encode,
)
from repro.compress.fpzip_like import FpzipLikeCompressor
from repro.compress.lz_like import (
    LzLikeCompressor,
    _hash4,
    _hash_all,
    lz77_compress,
    lz77_decompress,
)
from repro.compress.predictors import (
    delta_reconstruct,
    delta_residuals,
    lorenzo_reconstruct,
    lorenzo_residuals,
    lorenzo_residuals_batch,
)
from repro.compress.zfp_like import ZfpLikeCompressor


class TestBitplane:
    def test_ordered_uint_preserves_order_float32(self):
        values = np.array([-1e10, -1.0, -1e-20, 0.0, 1e-20, 1.0, 1e10], dtype=np.float32)
        codes = float_to_ordered_uint(values)
        assert np.all(np.diff(codes.astype(np.float64)) > 0)

    def test_ordered_uint_roundtrip(self):
        values = np.array([-3.5, 0.0, 1.25, -0.0, 7e8], dtype=np.float32)
        codes = float_to_ordered_uint(values)
        back = ordered_uint_to_float(codes, np.float32)
        np.testing.assert_array_equal(np.abs(back), np.abs(values))

    def test_ordered_uint_float64(self):
        values = np.array([-2.0, 3.0], dtype=np.float64)
        back = ordered_uint_to_float(float_to_ordered_uint(values), np.float64)
        np.testing.assert_array_equal(back, values)

    def test_unsupported_dtype(self):
        with pytest.raises(ValueError):
            float_to_ordered_uint(np.zeros(3, dtype=np.int32))

    def test_zigzag_roundtrip(self):
        values = np.array([0, -1, 1, -2, 2, 12345, -99999], dtype=np.int32)
        codes = zigzag_encode(values, 32)
        assert codes[0] == 0 and codes[1] == 1 and codes[2] == 2
        back = zigzag_decode(codes, 32)
        np.testing.assert_array_equal(back, values)

    def test_zigzag_64(self):
        values = np.array([-(2**40), 2**40], dtype=np.int64)
        back = zigzag_decode(zigzag_encode(values, 64), 64)
        np.testing.assert_array_equal(back, values)

    def test_byte_lengths(self):
        codes = np.array([0, 1, 255, 256, 65535, 65536, 2**24], dtype=np.uint64)
        lengths = byte_lengths(codes, 4)
        np.testing.assert_array_equal(lengths, [0, 1, 1, 2, 2, 3, 4])

    def test_pack_unpack_nibbles(self):
        values = np.array([0, 1, 15, 7, 3], dtype=np.uint8)
        packed = pack_nibbles(values)
        np.testing.assert_array_equal(unpack_nibbles(packed, 5), values)

    def test_pack_nibbles_rejects_large(self):
        with pytest.raises(ValueError):
            pack_nibbles(np.array([16], dtype=np.uint8))


class TestPredictors:
    def test_lorenzo_roundtrip(self):
        rng = np.random.default_rng(0)
        values = float_to_ordered_uint(rng.normal(size=(5, 6, 7)).astype(np.float32))
        residuals = lorenzo_residuals(values)
        back = lorenzo_reconstruct(residuals)
        np.testing.assert_array_equal(back, values)

    def test_lorenzo_smooth_residuals_small(self):
        x = np.linspace(0, 1, 16)
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        smooth = (xx + yy + zz).astype(np.float32)
        noisy = np.random.default_rng(1).normal(size=smooth.shape).astype(np.float32)
        res_smooth = lorenzo_residuals(float_to_ordered_uint(smooth))
        res_noisy = lorenzo_residuals(float_to_ordered_uint(noisy))
        # Compare the number of "large" residuals (fair proxy for coding cost).
        big_smooth = np.count_nonzero(res_smooth.astype(np.int64) > 2**20)
        big_noisy = np.count_nonzero(res_noisy.astype(np.int64) > 2**20)
        assert big_smooth < big_noisy

    def test_lorenzo_requires_uint(self):
        with pytest.raises(ValueError):
            lorenzo_residuals(np.zeros((2, 2, 2), dtype=np.float32))

    def test_delta_roundtrip(self):
        values = float_to_ordered_uint(np.random.default_rng(2).normal(size=(4, 4, 4)).astype(np.float32))
        np.testing.assert_array_equal(delta_reconstruct(delta_residuals(values)), values)


class TestFpzipLike:
    def test_lossless_roundtrip_float32(self, turbulent_block):
        comp = FpzipLikeCompressor()
        result = comp.compress(turbulent_block)
        back = comp.decompress(result)
        np.testing.assert_array_equal(back, turbulent_block)
        assert back.dtype == turbulent_block.dtype

    def test_lossless_roundtrip_float64(self):
        data = np.random.default_rng(3).normal(size=(7, 6, 5))
        comp = FpzipLikeCompressor()
        np.testing.assert_array_equal(comp.decompress(comp.compress(data)), data)

    def test_smooth_compresses_better_than_turbulent(self, smooth_block, turbulent_block):
        comp = FpzipLikeCompressor()
        assert comp.ratio(smooth_block) > comp.ratio(turbulent_block)

    def test_constant_block_high_ratio(self, constant_block):
        assert FpzipLikeCompressor().ratio(constant_block) > 3.0

    def test_rejects_non_finite(self):
        comp = FpzipLikeCompressor()
        data = np.full((3, 3, 3), np.nan, dtype=np.float32)
        with pytest.raises(ValueError):
            comp.compress(data)

    def test_rejects_wrong_payload(self):
        comp = FpzipLikeCompressor()
        result = comp.compress(np.zeros((3, 3, 3), dtype=np.float32))
        bad = type(result)(
            payload=b"XXXX" + result.payload[4:],
            original_nbytes=result.original_nbytes,
            shape=result.shape,
            dtype=result.dtype,
        )
        with pytest.raises(ValueError):
            comp.decompress(bad)

    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        nx=st.integers(min_value=2, max_value=8),
        ny=st.integers(min_value=2, max_value=8),
        nz=st.integers(min_value=2, max_value=8),
    )
    def test_roundtrip_property(self, seed, nx, ny, nz):
        """fpzip-like coding is lossless for arbitrary finite float32 blocks."""
        data = (np.random.default_rng(seed).normal(size=(nx, ny, nz)) * 10).astype(np.float32)
        comp = FpzipLikeCompressor()
        np.testing.assert_array_equal(comp.decompress(comp.compress(data)), data)


class TestZfpLike:
    def test_reconstruction_within_bound(self, smooth_block):
        comp = ZfpLikeCompressor(precision=18)
        result = comp.compress(smooth_block)
        back = comp.decompress(result)
        bound = comp.error_bound(smooth_block)
        assert np.abs(back - smooth_block.astype(np.float64)).max() <= bound

    def test_higher_precision_lower_error(self, turbulent_block):
        low = ZfpLikeCompressor(precision=8)
        high = ZfpLikeCompressor(precision=24)
        err_low = np.abs(low.decompress(low.compress(turbulent_block)) - turbulent_block).max()
        err_high = np.abs(high.decompress(high.compress(turbulent_block)) - turbulent_block).max()
        assert err_high <= err_low

    def test_smooth_compresses_better(self, smooth_block, turbulent_block):
        comp = ZfpLikeCompressor(precision=16)
        assert comp.ratio(smooth_block) > comp.ratio(turbulent_block)

    def test_constant_block_near_exact(self, constant_block):
        comp = ZfpLikeCompressor(precision=16)
        back = comp.decompress(comp.compress(constant_block))
        np.testing.assert_allclose(back, constant_block, atol=1e-6)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            ZfpLikeCompressor(precision=0)
        with pytest.raises(ValueError):
            ZfpLikeCompressor(precision=40)

    def test_non_multiple_of_four_shapes(self):
        data = np.random.default_rng(5).normal(size=(5, 7, 3))
        comp = ZfpLikeCompressor(precision=20)
        back = comp.decompress(comp.compress(data))
        assert back.shape == data.shape
        assert np.abs(back - data).max() <= comp.error_bound(data)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_error_bound_property(self, seed):
        data = np.random.default_rng(seed).uniform(-60, 80, size=(6, 6, 6))
        comp = ZfpLikeCompressor(precision=16)
        back = comp.decompress(comp.compress(data))
        assert np.abs(back - data).max() <= comp.error_bound(data)


class TestLz77:
    def test_roundtrip_simple(self):
        data = b"abcabcabcabcabc" * 10
        assert lz77_decompress(lz77_compress(data)) == data

    def test_roundtrip_empty(self):
        assert lz77_decompress(lz77_compress(b"")) == b""

    def test_roundtrip_no_repeats(self):
        data = bytes(range(256))
        assert lz77_decompress(lz77_compress(data)) == data

    def test_repetitive_data_compresses(self):
        data = b"\x00" * 4096
        compressed = lz77_compress(data)
        assert len(compressed) < len(data) / 4

    @settings(deadline=None, max_examples=30)
    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data


class TestLzLikeCompressor:
    def test_lossless_roundtrip(self, turbulent_block):
        comp = LzLikeCompressor()
        small = turbulent_block[:6, :6, :4]
        back = comp.decompress(comp.compress(small))
        np.testing.assert_array_equal(back, small)

    def test_smooth_better_ratio(self, smooth_block, turbulent_block):
        comp = LzLikeCompressor()
        assert comp.ratio(smooth_block) > comp.ratio(turbulent_block)

    def test_sample_limit_bounds_cost(self):
        comp = LzLikeCompressor(sample_limit=256)
        data = np.random.default_rng(0).normal(size=(20, 20, 10)).astype(np.float32)
        ratio = comp.ratio(data)
        assert ratio > 0

    def test_invalid_sample_limit(self):
        with pytest.raises(ValueError):
            LzLikeCompressor(sample_limit=2)


class TestHashAll:
    @settings(deadline=None, max_examples=30)
    @given(st.binary(min_size=0, max_size=300))
    def test_matches_scalar_hash(self, data):
        hashes = _hash_all(data)
        assert len(hashes) == max(0, len(data) - 3)
        assert hashes == [_hash4(data, p) for p in range(len(hashes))]


def _batch_blocks(dtype, shape=(6, 5, 4), nblocks=7, seed=11):
    """A mix of turbulent, smooth, and constant blocks (stackable)."""
    rng = np.random.default_rng(seed)
    blocks = [
        rng.uniform(-60.0, 80.0, size=shape).astype(dtype)
        for _ in range(nblocks - 2)
    ]
    ramp = np.add.outer(
        np.add.outer(np.linspace(0.0, 1.0, shape[0]), np.linspace(0.0, 2.0, shape[1])),
        np.linspace(0.0, 0.5, shape[2]),
    )
    blocks.append(ramp.astype(dtype))
    blocks.append(np.full(shape, 2.5, dtype=dtype))
    return blocks


@pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
@pytest.mark.parametrize(
    "make",
    [FpzipLikeCompressor, ZfpLikeCompressor, LzLikeCompressor],
    ids=["fpzip", "zfp", "lz"],
)
class TestCompressedSizeBatch:
    """The vectorised size path must agree with per-block compress exactly."""

    def test_sizes_match_per_block_compress(self, make, dtype):
        comp = make()
        blocks = _batch_blocks(dtype)
        sizes = comp.compressed_size_batch(np.stack(blocks))
        expected = [comp.compress(b).compressed_nbytes for b in blocks]
        assert sizes.tolist() == expected

    def test_empty_batch(self, make, dtype):
        comp = make()
        sizes = comp.compressed_size_batch(np.zeros((0, 4, 4, 4), dtype=dtype))
        assert sizes.shape == (0,)

    def test_non_contiguous_batch(self, make, dtype):
        comp = make()
        rng = np.random.default_rng(4)
        field = rng.uniform(-60.0, 80.0, size=(5, 12, 10, 8)).astype(dtype)
        batch = field[:, 2:8, 1:6, ::2]  # strided view
        sizes = comp.compressed_size_batch(batch)
        expected = [comp.compress(batch[i]).compressed_nbytes for i in range(5)]
        assert sizes.tolist() == expected

    def test_non_finite_rejected(self, make, dtype):
        comp = make()
        batch = np.zeros((2, 4, 4, 4), dtype=dtype)
        batch[1, 0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            comp.compressed_size_batch(batch)

    def test_wrong_ndim_rejected(self, make, dtype):
        with pytest.raises(ValueError):
            make().compressed_size_batch(np.zeros((4, 4, 4), dtype=dtype))


class TestLorenzoBatch:
    @pytest.mark.parametrize("utype", [np.uint32, np.uint64])
    def test_matches_scalar_blocks(self, utype):
        rng = np.random.default_rng(8)
        batch = rng.integers(0, 2**31, size=(6, 5, 4, 3)).astype(utype)
        batched = lorenzo_residuals_batch(batch)
        for i in range(batch.shape[0]):
            np.testing.assert_array_equal(batched[i], lorenzo_residuals(batch[i]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lorenzo_residuals_batch(np.zeros((4, 4, 4), dtype=np.uint32))
        with pytest.raises(ValueError):
            lorenzo_residuals_batch(np.zeros((2, 4, 4, 4), dtype=np.int32))
