"""Tests for repro.utils (timer, histogram, random, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.histogram import fixed_range_histogram, probabilities, shannon_entropy
from repro.utils.random import derive_seed, rng_from_seed
from repro.utils.timer import StepTimings, Timer
from repro.utils.validation import (
    ensure_3d,
    ensure_float_array,
    ensure_in_range,
    ensure_positive,
)


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_stop_returns_elapsed(self):
        t = Timer()
        t.start()
        assert t.stop() >= 0.0

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0

    def test_accumulates_over_restarts(self):
        t = Timer()
        t.start()
        first = t.stop()
        t.start()
        total = t.stop()
        assert total >= first

    def test_elapsed_while_running(self):
        t = Timer()
        t.start()
        assert t.elapsed >= 0.0


class TestStepTimings:
    def test_add_and_totals(self):
        st_ = StepTimings()
        st_.add_measured("a", 1.0)
        st_.add_measured("a", 2.0)
        st_.add_modelled("b", 5.0)
        assert st_.measured["a"] == pytest.approx(3.0)
        assert st_.total_measured() == pytest.approx(3.0)
        assert st_.total_modelled() == pytest.approx(5.0)

    def test_negative_rejected(self):
        st_ = StepTimings()
        with pytest.raises(ValueError):
            st_.add_measured("a", -1.0)
        with pytest.raises(ValueError):
            st_.add_modelled("a", -1.0)

    def test_merge(self):
        a = StepTimings({"x": 1.0}, {"x": 2.0})
        b = StepTimings({"x": 1.0, "y": 3.0}, {})
        merged = a.merge(b)
        assert merged.measured == {"x": 2.0, "y": 3.0}
        assert merged.modelled == {"x": 2.0}

    def test_steps_union(self):
        t = StepTimings({"a": 1.0}, {"b": 2.0})
        assert set(t.steps()) == {"a", "b"}

    def test_as_dict_roundtrip(self):
        t = StepTimings({"a": 1.0}, {"b": 2.0})
        d = t.as_dict()
        assert d["measured"]["a"] == 1.0
        assert d["modelled"]["b"] == 2.0


class TestHistogram:
    def test_counts_sum_to_size(self):
        values = np.linspace(-60, 80, 1000)
        counts = fixed_range_histogram(values, 256, (-60, 80))
        assert counts.sum() == 1000

    def test_clipping(self):
        values = np.array([-1000.0, 1000.0])
        counts = fixed_range_histogram(values, 10, (0.0, 1.0), clip=True)
        assert counts.sum() == 2
        assert counts[0] == 1 and counts[-1] == 1

    def test_drop_out_of_range(self):
        values = np.array([-1000.0, 0.5, 1000.0])
        counts = fixed_range_histogram(values, 10, (0.0, 1.0), clip=False)
        assert counts.sum() == 1

    def test_empty_input(self):
        counts = fixed_range_histogram(np.array([]), 8, (0.0, 1.0))
        assert counts.sum() == 0 and counts.size == 8

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            fixed_range_histogram(np.ones(3), 0, (0, 1))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            fixed_range_histogram(np.ones(3), 4, (1.0, 1.0))

    def test_probabilities_sum_to_one(self):
        counts = np.array([1, 2, 3, 0])
        probs = probabilities(counts)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_probabilities_empty(self):
        assert probabilities(np.zeros(4)).size == 0

    def test_entropy_constant_is_zero(self):
        counts = np.array([100, 0, 0, 0])
        assert shannon_entropy(counts) == pytest.approx(0.0)

    def test_entropy_uniform_is_log2_bins(self):
        counts = np.full(16, 10)
        assert shannon_entropy(counts) == pytest.approx(4.0)

    def test_entropy_empty(self):
        assert shannon_entropy(np.zeros(8)) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=64))
    def test_entropy_bounds_property(self, counts):
        e = shannon_entropy(np.asarray(counts))
        assert 0.0 <= e <= np.log2(len(counts)) + 1e-9


class TestRandom:
    def test_rng_from_int(self):
        a = rng_from_seed(7).standard_normal(4)
        b = rng_from_seed(7).standard_normal(4)
        np.testing.assert_allclose(a, b)

    def test_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "shuffle", 3) == derive_seed(42, "shuffle", 3)

    def test_derive_seed_depends_on_components(self):
        assert derive_seed(42, "shuffle", 3) != derive_seed(42, "shuffle", 4)
        assert derive_seed(42, "a") != derive_seed(43, "a")

    def test_derive_seed_in_range(self):
        s = derive_seed(1, "x")
        assert 0 <= s < 2**63


class TestValidation:
    def test_ensure_3d_ok(self):
        arr = ensure_3d(np.zeros((2, 3, 4)))
        assert arr.shape == (2, 3, 4)

    def test_ensure_3d_rejects_2d(self):
        with pytest.raises(ValueError):
            ensure_3d(np.zeros((2, 3)))

    def test_ensure_float_array_casts_ints(self):
        arr = ensure_float_array(np.zeros((2, 2), dtype=np.int32))
        assert np.issubdtype(arr.dtype, np.floating)

    def test_ensure_float_array_keeps_float32(self):
        arr = ensure_float_array(np.zeros(3, dtype=np.float32))
        assert arr.dtype == np.float32

    def test_ensure_positive(self):
        assert ensure_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_ensure_in_range(self):
        assert ensure_in_range(0.5, (0, 1)) == 0.5
        with pytest.raises(ValueError):
            ensure_in_range(1.5, (0, 1))


class TestSharedProcpool:
    def test_shared_manager_is_singleton_and_usable(self):
        from repro.utils.procpool import shared_manager

        manager = shared_manager()
        assert shared_manager() is manager
        # The proxies the serve tier relies on: a queue and an event that
        # survive a pickle round-trip into pool tasks.
        queue = manager.Queue()
        queue.put({"type": "iteration", "i": 0})
        assert queue.get(timeout=10) == {"type": "iteration", "i": 0}
        event = manager.Event()
        assert not event.is_set()
        event.set()
        assert event.is_set()

    def test_warm_shared_pool_forks_workers_up_front(self):
        from repro.utils.procpool import (
            default_process_workers,
            shared_process_pool,
            warm_shared_pool,
        )

        started = warm_shared_pool()
        assert 1 <= started <= default_process_workers()
        # The pool is live and every later submit hits a forked worker.
        assert shared_process_pool().submit(int, "7").result(timeout=30) == 7
        assert warm_shared_pool(tasks=1) >= 1
