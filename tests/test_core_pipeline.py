"""Integration tests of the full adaptive pipeline on small scenarios."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.config import AdaptationConfig, PipelineConfig
from repro.core.pipeline import InSituPipeline
from repro.core.results import IterationResult
from repro.perfmodel.platform import PlatformModel


class TestPipelineConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.metric == "VAR"

    def test_invalid_redistribution(self):
        with pytest.raises(ValueError):
            PipelineConfig(redistribution="banana")

    def test_invalid_render_mode(self):
        with pytest.raises(ValueError):
            PipelineConfig(render_mode="gpu")

    def test_empty_metric(self):
        with pytest.raises(ValueError):
            PipelineConfig(metric="")


class TestPipelineIntegration:
    def test_process_iteration_structure(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline(metric="VAR", redistribution="round_robin")
        blocks = tiny_scenario.blocks_for(0)
        result, renders = pipeline.process_iteration(blocks, percent_override=0.0)
        assert isinstance(result, IterationResult)
        assert result.nblocks == tiny_scenario.nblocks
        assert result.nreduced == 0
        assert len(renders) == tiny_scenario.nranks
        assert set(result.modelled_steps) == {
            "scoring",
            "sorting",
            "reduction",
            "redistribution",
            "rendering",
        }
        assert result.modelled_total > 0

    def test_rank_count_validated(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline()
        with pytest.raises(ValueError):
            pipeline.process_iteration([[]])

    def test_percent_override_bounds(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline()
        with pytest.raises(ValueError):
            pipeline.process_iteration(tiny_scenario.blocks_for(0), percent_override=150.0)

    def test_full_reduction_reduces_all_blocks(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline()
        result, _ = pipeline.process_iteration(tiny_scenario.blocks_for(0), percent_override=100.0)
        assert result.nreduced == result.nblocks

    def test_reduction_lowers_rendering_time(self, tiny_scenario):
        p_full = tiny_scenario.build_pipeline()
        full, _ = p_full.process_iteration(tiny_scenario.blocks_for(0), percent_override=0.0)
        p_red = tiny_scenario.build_pipeline()
        reduced, _ = p_red.process_iteration(tiny_scenario.blocks_for(0), percent_override=100.0)
        assert reduced.modelled_rendering < full.modelled_rendering

    def test_redistribution_improves_balance(self, small_scenario_16):
        scenario = small_scenario_16
        none_result, _ = scenario.build_pipeline(redistribution="none").process_iteration(
            scenario.blocks_for(0), percent_override=0.0
        )
        rr_result, _ = scenario.build_pipeline(redistribution="round_robin").process_iteration(
            scenario.blocks_for(0), percent_override=0.0
        )
        assert rr_result.load_imbalance <= none_result.load_imbalance
        assert rr_result.modelled_rendering <= none_result.modelled_rendering

    def test_monitor_records_iterations(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline()
        for i in range(2):
            pipeline.process_iteration(tiny_scenario.blocks_for(i), percent_override=0.0)
        assert pipeline.monitor.niterations == 2
        series = pipeline.monitor.step_series("rendering")
        assert len(series) == 2
        run = pipeline.monitor.to_run_result(pipeline.config_summary())
        assert run.niterations == 2
        assert run.summary()["iterations"] == 2

    def test_adaptation_moves_percent_toward_target(self, tiny_scenario):
        adaptation = AdaptationConfig(enabled=True, target_seconds=5.0)
        pipeline = tiny_scenario.build_pipeline(
            metric="VAR", redistribution="none", adaptation=adaptation
        )
        percents = []
        for i in range(4):
            blocks = tiny_scenario.blocks_for(i % len(tiny_scenario.dataset))
            result, _ = pipeline.process_iteration(blocks)
            percents.append(result.percent_reduced)
        # Starts at 0 and increases because the target is far below the baseline.
        assert percents[0] == 0.0
        assert percents[1] > 50.0

    def test_run_convenience(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline()
        run = pipeline.run([tiny_scenario.blocks_for(0), tiny_scenario.blocks_for(1)], percent_override=0.0)
        assert run.niterations == 2
        assert run.mean_modelled_rendering() > 0

    def test_config_summary_contents(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline(metric="LEA", redistribution="shuffle")
        summary = pipeline.config_summary()
        assert summary["metric"] == "LEA"
        assert summary["redistribution"] == "shuffle"
        assert summary["nranks"] == tiny_scenario.nranks

    def test_quickstart_helper(self):
        run = repro.quickstart_pipeline(nranks=4, nsnapshots=2)
        assert run.niterations == 2
        assert all(t > 0 for t in run.modelled_totals())

    def test_mesh_render_mode(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline(render_mode="mesh")
        result, renders = pipeline.process_iteration(
            tiny_scenario.blocks_for(0), percent_override=0.0
        )
        assert result.modelled_rendering > 0
        assert any(r.mesh is not None for r in renders)

    def test_nranks_mismatch_with_comm(self, tiny_scenario):
        from repro.simmpi.communicator import BSPCommunicator

        with pytest.raises(ValueError):
            InSituPipeline(
                PipelineConfig(),
                PlatformModel.blue_waters(4),
                nranks=4,
                comm=BSPCommunicator(8),
            )


class TestIterationResult:
    def test_totals_and_imbalance(self):
        result = IterationResult(
            iteration=0,
            percent_reduced=10.0,
            nblocks=8,
            nreduced=1,
            modelled_steps={"rendering": 10.0, "scoring": 1.0},
            measured_steps={"rendering": 0.1},
            triangles_per_rank=[10, 30],
        )
        assert result.modelled_total == pytest.approx(11.0)
        assert result.measured_total == pytest.approx(0.1)
        assert result.modelled_rendering == pytest.approx(10.0)
        assert result.load_imbalance == pytest.approx(1.5)

    def test_empty_triangles_imbalance_one(self):
        result = IterationResult(iteration=0, percent_reduced=0, nblocks=0, nreduced=0)
        assert result.load_imbalance == 1.0
