"""Tests of the scenario subsystem: registry, storm families, parity sweep.

The centrepiece is the registry-driven cross-backend parity sweep: it
parameterises over *every* registered scenario (``scenario_names()``), so a
newly registered workload automatically gets serial/vectorized/parallel
parity coverage at tiny scale without anyone writing a test for it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cm1 import (
    CM1Config,
    CM1Simulation,
    DecayingStorm,
    DecayingStormConfig,
    MultiCellConfig,
    MultiCellStorm,
    SquallLineConfig,
    SquallLineStorm,
    SupercellStorm,
    TurbulenceFieldConfig,
    TurbulenceFieldStorm,
    make_storm,
)
from repro.experiments.common import ExperimentScenario, cached_scenario
from repro.perfmodel.platform import PlatformModel
from repro.scenarios import (
    ScenarioConfig,
    create_scenario_config,
    get_scenario,
    model_scaling_point,
    model_scaling_sweep,
    register_scenario,
    scaling_variants,
    scenario_names,
    scenario_specs,
)
from repro.scenarios.registry import _REGISTRY

BACKENDS = ("serial", "vectorized", "parallel", "process")

#: The four storm families this PR introduces, all required to be registered.
NEW_FAMILIES = ("squall_line", "multicell_cluster", "turbulence_field", "decaying_storm")

_TINY_CACHE = {}


def tiny_scenario(name: str) -> ExperimentScenario:
    """Tiny-scale ExperimentScenario of a registered workload (cached)."""
    if name not in _TINY_CACHE:
        _TINY_CACHE[name] = ExperimentScenario(get_scenario(name).tiny())
    return _TINY_CACHE[name]


class TestRegistry:
    def test_catalogue_size_and_contents(self):
        names = scenario_names()
        assert len(names) >= 7
        for required in ("blue_waters_64", "blue_waters_400", "tiny") + NEW_FAMILIES:
            assert required in names

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="blue_waters_64"):
            get_scenario("definitely_not_registered")

    def test_specs_carry_metadata(self):
        for spec in scenario_specs():
            assert spec.name
            assert spec.description
            assert spec.default_ranks >= 1
            assert spec.default_snapshots >= 1

    def test_build_applies_overrides_and_stamps_name(self):
        config = create_scenario_config("squall_line", ncores=4, nsnapshots=3, seed=7)
        assert config.ncores == 4
        assert config.nsnapshots == 3
        assert config.seed == 7
        assert config.name == "squall_line"
        # None overrides are ignored (CLI arguments forward directly).
        default = create_scenario_config("squall_line", ncores=None)
        assert default.ncores == get_scenario("squall_line").default_ranks

    def test_register_decorator_and_overwrite(self):
        @register_scenario("pytest_tmp_scenario", description="x", tags=("tmp",))
        def _factory(**overrides):
            return ScenarioConfig(ncores=2, shape=(44, 44, 12), **overrides)

        try:
            assert "pytest_tmp_scenario" in scenario_names()
            assert create_scenario_config("pytest_tmp_scenario").ncores == 2
            # Re-registration overwrites (the documented extension contract).
            register_scenario(
                "pytest_tmp_scenario",
                lambda **o: ScenarioConfig(ncores=3, shape=(44, 44, 12), **o),
            )
            assert create_scenario_config("pytest_tmp_scenario").ncores == 3
        finally:
            _REGISTRY.pop("pytest_tmp_scenario", None)

    def test_classic_constructors_resolve_through_registry(self):
        assert ScenarioConfig.blue_waters_64(nsnapshots=3).name == "blue_waters_64"
        assert ScenarioConfig.blue_waters_400().ncores == 400
        tiny = ScenarioConfig.tiny(nranks=2, nsnapshots=1)
        assert (tiny.ncores, tiny.nsnapshots, tiny.name) == (2, 1, "tiny")
        assert ExperimentScenario.from_name("tiny", nsnapshots=1).config.name == "tiny"


class TestStormFamilies:
    def test_make_storm_dispatch(self):
        assert type(make_storm(SquallLineConfig())) is SquallLineStorm
        assert type(make_storm(MultiCellConfig())) is MultiCellStorm
        assert type(make_storm(TurbulenceFieldConfig())) is TurbulenceFieldStorm
        assert type(make_storm(DecayingStormConfig())) is DecayingStorm
        assert type(make_storm(SquallLineConfig().__class__())) is SquallLineStorm
        from repro.cm1.config import StormConfig

        assert type(make_storm(StormConfig())) is SupercellStorm

    def test_families_produce_distinct_fields(self):
        fields = {}
        for name in ("tiny",) + NEW_FAMILIES:
            storm = tiny_scenario(name).config.storm
            sim = CM1Simulation(
                CM1Config(
                    shape=(44, 44, 12), **({} if storm is None else {"storm": storm})
                )
            )
            fields[name] = np.asarray(sim.snapshot(0).get_field("dbz"))
        names = list(fields)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not np.array_equal(fields[a], fields[b]), (a, b)

    def test_squall_line_is_elongated(self):
        storm = make_storm(SquallLineConfig())
        x = np.linspace(0, 1, 60)
        xn, yn, zn = np.meshgrid(x, x, np.linspace(0, 1, 12), indexing="ij")
        # The reflectivity band (core envelope) is the defining structure;
        # the trailing stratiform anvil legitimately widens the full mask.
        core = storm.envelopes(xn, yn, zn, iteration=5)["core"]
        cols = (core > 0.15).any(axis=2)
        ii, jj = np.nonzero(cols)
        # Principal-axis anisotropy: an elongated band has one dominant
        # eigenvalue in its horizontal covariance.
        coords = np.stack([ii, jj]).astype(float)
        cov = np.cov(coords)
        evals = np.sort(np.linalg.eigvalsh(cov))
        assert evals[1] > 4.0 * max(evals[0], 1e-9)

    def test_multicell_placement_deterministic_and_seeded(self):
        a = MultiCellStorm(MultiCellConfig(placement_seed=7))
        b = MultiCellStorm(MultiCellConfig(placement_seed=7))
        c = MultiCellStorm(MultiCellConfig(placement_seed=8))
        centers = lambda storm: [cell.config.initial_center for cell in storm._cells]
        assert centers(a) == centers(b)
        assert centers(a) != centers(c)

    def test_turbulence_field_scores_near_uniform(self):
        scenario = tiny_scenario("turbulence_field")
        pipeline = scenario.build_pipeline(metric="VAR")
        context = pipeline.engine.run_iteration(scenario.blocks_for(0), 0.0, 0)
        scores = np.array(
            [score for pairs in context.per_rank_pairs for (_, score) in pairs]
        )
        assert scores.min() > 0
        # Near-uniform: far tighter spread than the supercell workload.
        cv_turb = scores.std() / scores.mean()
        supercell = tiny_scenario("tiny")
        ctx2 = supercell.build_pipeline(metric="VAR").engine.run_iteration(
            supercell.blocks_for(0), 0.0, 0
        )
        s2 = np.array([s for pairs in ctx2.per_rank_pairs for (_, s) in pairs])
        cv_storm = s2.std() / s2.mean()
        assert cv_turb < 0.5 * cv_storm

    def test_decaying_storm_load_falls_over_snapshots(self):
        scenario = tiny_scenario("decaying_storm")
        config = scenario.config
        sim = CM1Simulation(
            CM1Config(shape=config.shape, seed=config.seed, storm=config.storm)
        )
        early = (np.asarray(sim.snapshot(0).get_field("dbz")) > 45.0).sum()
        late = (np.asarray(sim.snapshot(8).get_field("dbz")) > 45.0).sum()
        assert early > 0
        assert late < 0.6 * early


def _iteration_observables(
    scenario: ExperimentScenario, backend: str, quality_ladder=None
):
    """Decision-bearing outputs of one 50%-reduction iteration."""
    pipeline = scenario.build_pipeline(
        metric="VAR",
        redistribution="round_robin",
        engine=backend,
        quality_ladder=quality_ladder,
    )
    context = pipeline.engine.run_iteration(
        scenario.blocks_for(0), percent=50.0, iteration=0
    )
    owners = {
        block.block_id: block.owner
        for blocks in context.per_rank_blocks
        for block in blocks
    }
    reports = {
        name: (
            report.modelled_per_rank,
            report.payload_bytes,
            report.counters,
            report.per_rank_counters,
        )
        for name, report in context.reports.items()
    }
    return context.per_rank_pairs, context.sorted_pairs, owners, reports


def _run_observables(scenario: ExperimentScenario, pipelined: bool):
    """Decision-bearing outputs of a full multi-iteration run."""
    pipeline = scenario.build_pipeline(
        metric="VAR", redistribution="round_robin", pipelined=pipelined
    )
    assert pipeline.config_summary()["pipelined"] is pipelined
    run = pipeline.run(scenario.iteration_blocks(), percent_override=50.0)
    return [
        (
            result.iteration,
            result.percent_reduced,
            result.nblocks,
            result.nreduced,
            result.moved_bytes,
            dict(result.modelled_steps),
            result.modelled_total,
            result.load_imbalance,
            {
                name: (
                    report.modelled_per_rank,
                    report.payload_bytes,
                    report.counters,
                    report.per_rank_counters,
                )
                for name, report in result.step_reports.items()
            },
        )
        for result in run.iterations
    ]


@pytest.mark.parametrize("name", scenario_names())
class TestRegistryParitySweep:
    """Every registered workload must run identically on every backend."""

    def test_three_backend_parity(self, name):
        scenario = tiny_scenario(name)
        ref_pairs, ref_sorted, ref_owners, ref_reports = _iteration_observables(
            scenario, "serial"
        )
        # Sanity: the iteration did real work on this workload.
        assert ref_sorted and len(ref_owners) == scenario.nblocks
        assert set(ref_reports) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
        for backend in BACKENDS[1:]:
            pairs, sorted_pairs, owners, reports = _iteration_observables(
                scenario, backend
            )
            assert pairs == ref_pairs, backend
            assert sorted_pairs == ref_sorted, backend
            assert owners == ref_owners, backend
            for step, ref in ref_reports.items():
                assert reports[step] == ref, (backend, step)

    def test_pipelined_engine_parity(self, name):
        """The overlapping engine is bitwise-identical to the sequential one
        on a full multi-iteration run: scores, owner maps, step reports."""
        scenario = tiny_scenario(name)
        sequential = _run_observables(scenario, pipelined=False)
        overlapped = _run_observables(scenario, pipelined=True)
        assert len(sequential) == len(scenario.iteration_blocks())
        assert overlapped == sequential

    def test_quality_ladder_backend_parity(self, name):
        """With a non-trivial mipmap ladder (half the selection to level 2,
        half to level 1) every backend must still agree bitwise on every
        decision-bearing output — including the new points_copied counter
        and the level-dependent payload bytes."""
        ladder = ((2, 0.5), (1, 0.5))
        scenario = tiny_scenario(name)
        ref = _iteration_observables(scenario, "serial", quality_ladder=ladder)
        ref_pairs, ref_sorted, ref_owners, ref_reports = ref
        assert ref_reports["reduction"][2]["points_copied"] > 0
        for backend in BACKENDS[1:]:
            pairs, sorted_pairs, owners, reports = _iteration_observables(
                scenario, backend, quality_ladder=ladder
            )
            assert pairs == ref_pairs, backend
            assert sorted_pairs == ref_sorted, backend
            assert owners == ref_owners, backend
            for step, expected in ref_reports.items():
                assert reports[step] == expected, (backend, step)
        # The ladder must actually change the workload versus all-corners:
        # level-1 blocks ship more bytes through redistribution.
        corners = _iteration_observables(scenario, "serial")
        assert (
            ref_reports["reduction"][2]["points_copied"]
            > corners[3]["reduction"][2]["points_copied"]
        )


class TestDeterminism:
    @pytest.mark.parametrize("name", ["multicell_cluster", "squall_line"])
    def test_same_name_and_seed_bitwise_identical(self, name):
        spec = get_scenario(name)
        a = ExperimentScenario(spec.tiny())
        b = ExperimentScenario(spec.tiny())
        for blocks_a, blocks_b in zip(a.blocks_for(1), b.blocks_for(1)):
            assert len(blocks_a) == len(blocks_b)
            for block_a, block_b in zip(blocks_a, blocks_b):
                assert block_a.block_id == block_b.block_id
                assert block_a.data.tobytes() == block_b.data.tobytes()
        reports_a = _iteration_observables(a, "vectorized")
        reports_b = _iteration_observables(b, "vectorized")
        assert reports_a == reports_b

    def test_different_seeds_differ(self):
        spec = get_scenario("multicell_cluster")
        base = ExperimentScenario(spec.tiny())
        other = ExperimentScenario(spec.build(
            ncores=4, nsnapshots=2, shape=(44, 44, 12), seed=12345
        ))
        field_a = np.asarray(base.dataset.snapshot(0).get_field("dbz"))
        field_b = np.asarray(other.dataset.snapshot(0).get_field("dbz"))
        assert field_a.shape == field_b.shape
        assert not np.array_equal(field_a, field_b)


class TestCachedScenario:
    def test_distinct_scenarios_same_scale_do_not_collide(self):
        tiny = cached_scenario(ncores=4, nsnapshots=2, name="tiny")
        turb = cached_scenario(ncores=4, nsnapshots=2, name="turbulence_field")
        assert tiny is not turb
        assert tiny.config.name == "tiny"
        assert turb.config.name == "turbulence_field"
        assert tiny.config.storm != turb.config.storm

    def test_identical_requests_share_one_scenario(self):
        a = cached_scenario(ncores=4, nsnapshots=2, name="tiny")
        b = cached_scenario(ncores=4, nsnapshots=2, name="tiny")
        assert a is b

    def test_legacy_positional_call_still_resolves_paper_names(self):
        scenario = cached_scenario(64, 1)
        assert scenario.config.name == "blue_waters_64"
        assert scenario.config.nsnapshots == 1
        assert cached_scenario(64, 1) is scenario

    def test_requires_name_or_ncores(self):
        with pytest.raises(TypeError):
            cached_scenario()


class TestScalingVariants:
    def test_strong_scaling_keeps_shape(self):
        variants = scaling_variants("tiny", ranks=(1, 2, 4), mode="strong")
        assert [v.ncores for v in variants] == [1, 2, 4]
        assert all(v.shape == (44, 44, 12) for v in variants)
        assert [v.name for v in variants] == [
            "tiny[strong@1]", "tiny[strong@2]", "tiny[strong@4]",
        ]

    def test_weak_scaling_grows_horizontal_grid(self):
        variants = scaling_variants("tiny", ranks=(4, 16), mode="weak")
        base, grown = variants
        assert base.shape == (44, 44, 12)
        assert grown.shape == (88, 88, 12)  # sqrt(16/4) = 2x per horizontal axis
        # Per-rank point counts stay constant under weak scaling.
        per_rank = lambda v: v.shape[0] * v.shape[1] * v.shape[2] / v.ncores
        assert per_rank(grown) == pytest.approx(per_rank(base))

    def test_variants_are_runnable(self):
        variant = scaling_variants("tiny", ranks=(2,), mode="weak", nsnapshots=1)[0]
        scenario = ExperimentScenario(variant)
        pipeline = scenario.build_pipeline(metric="VAR")
        result, _ = pipeline.process_iteration(scenario.blocks_for(0))
        assert result.nblocks == scenario.nblocks

    def test_weak_scaling_rounds_half_up_at_5_boundary(self):
        """Regression: weak-scaling extents exactly on .5 must round up.

        With base shape 15 at 4 ranks, the 9-rank variant scales by
        sqrt(9/4) = 1.5 exactly, landing 15 * 1.5 = 22.5 on a .5 boundary.
        Banker's round() returns 22 (nearest even), silently shrinking the
        per-rank load; half-up rounding must give 23.
        """
        register_scenario(
            "pytest_weak_boundary",
            lambda **o: ScenarioConfig(
                ncores=4, shape=(15, 15, 12), blocks_per_subdomain=(1, 1, 1), **o
            ),
            description="weak-scaling .5-boundary fixture",
        )
        try:
            variant = scaling_variants("pytest_weak_boundary", ranks=(9,), mode="weak")[0]
            assert round(22.5) == 22  # the trap this test guards against
            assert variant.shape == (23, 23, 12)
        finally:
            _REGISTRY.pop("pytest_weak_boundary", None)

    def test_strong_scaling_refuses_infeasible_rank_counts(self):
        # tiny's 44-point axes cannot host 1024 ranks' block columns; a
        # silently grown grid would make the sweep incomparable, so the
        # helper must refuse instead.
        with pytest.raises(ValueError, match="1024 ranks"):
            scaling_variants("tiny", ranks=(4, 1024), mode="strong")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            scaling_variants("tiny", ranks=(2,), mode="sideways")
        with pytest.raises(ValueError, match="ranks"):
            scaling_variants("tiny", ranks=())
        with pytest.raises(KeyError):
            scaling_variants("unregistered", ranks=(2,))


class TestModelScalingSweep:
    """The cost-model sweep: analytic pricing of iterations without data."""

    def test_point_structure_and_work_counts(self):
        config = scaling_variants("blue_waters_64", ranks=(64,), mode="weak")[0]
        point = model_scaling_point(config)
        bx, by, bz = config.blocks_per_subdomain
        nx, ny, nz = config.shape
        assert point["ncores"] == 64
        assert point["nblocks"] == 64 * bx * by * bz
        assert point["npoints"] == nx * ny * nz
        assert point["metric"] == "VAR"
        steps = point["modelled_steps"]
        assert set(steps) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
        assert all(v >= 0.0 for v in steps.values())
        assert point["modelled_total"] == pytest.approx(sum(steps.values()))

    def test_point_deterministic_per_seed(self):
        config = scaling_variants("tiny", ranks=(4,), mode="weak")[0]
        assert model_scaling_point(config) == model_scaling_point(config)

    def test_percent_extremes(self):
        config = scaling_variants("tiny", ranks=(4,), mode="weak")[0]
        none_reduced = model_scaling_point(config, percent=0.0)
        assert none_reduced["nreduced"] == 0
        assert none_reduced["modelled_steps"]["reduction"] == pytest.approx(
            PlatformModel.blue_waters(4).reduction_seconds(0)
        )
        all_reduced = model_scaling_point(config, percent=100.0)
        assert all_reduced["nreduced"] == all_reduced["nblocks"]
        # No survivors -> nothing to redistribute.
        assert all_reduced["moved_bytes"] == 0
        assert all_reduced["modelled_steps"]["redistribution"] == 0.0

    def test_point_validates_arguments(self):
        config = scaling_variants("tiny", ranks=(4,), mode="weak")[0]
        with pytest.raises(ValueError, match="percent"):
            model_scaling_point(config, percent=150.0)
        with pytest.raises(ValueError, match="active_fraction"):
            model_scaling_point(config, active_fraction=2.0)

    def test_sweep_orders_points_by_ranks(self):
        sweep = model_scaling_sweep(
            "tiny", ranks=(4, 16), mode="weak", parallel=False
        )
        assert sweep["scenario"] == "tiny"
        assert sweep["ranks"] == [4, 16]
        assert [p["ncores"] for p in sweep["points"]] == [4, 16]
        # Weak scaling: per-rank points constant, so total points grow 4x.
        assert sweep["points"][1]["npoints"] == 4 * sweep["points"][0]["npoints"]

    def test_sweep_parallel_matches_serial(self):
        serial = model_scaling_sweep("tiny", ranks=(4, 16), parallel=False)
        fanned = model_scaling_sweep("tiny", ranks=(4, 16), parallel=True)
        assert fanned == serial

    def test_weak_scaling_catalog_entries_registered(self):
        names = scenario_names()
        assert "blue_waters_weak_1024" in names
        assert "blue_waters_weak_10k" in names
        assert get_scenario("blue_waters_weak_1024").default_ranks == 1024
        assert get_scenario("blue_waters_weak_10k").default_ranks == 10000
        # Their full-scale configs exist purely for the model-driven sweep,
        # but (like every registry entry) they must be priceable directly.
        config = create_scenario_config("blue_waters_weak_10k")
        point = model_scaling_point(config)
        assert point["nblocks"] == 10000 * np.prod(config.blocks_per_subdomain)
