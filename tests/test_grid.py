"""Tests for repro.grid: rectilinear grids, blocks, decomposition, reduction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.block import (
    Block,
    BlockExtent,
    REDUCTION_LEVELS,
    axis_sample_indices,
    level_shape,
)
from repro.grid.decomposition import CartesianDecomposition, factorize_ranks, split_axis
from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid, stretched_axis, uniform_axis
from repro.grid.reduction import (
    expand_from_corners,
    expand_from_level,
    reconstruct_block,
    reduce_block,
    reduce_to_corners,
    reduce_to_level,
    reduction_error,
    trilinear_sample,
)


class TestRectilinearGrid:
    def test_uniform_shape_and_extent(self):
        grid = RectilinearGrid.uniform((10, 20, 5), extent=(1.0, 2.0, 0.5))
        assert grid.shape == (10, 20, 5)
        assert grid.extent == pytest.approx((1.0, 2.0, 0.5))
        assert grid.npoints == 10 * 20 * 5

    def test_axes_strictly_increasing_required(self):
        with pytest.raises(ValueError):
            RectilinearGrid(np.array([0.0, 0.0, 1.0]), np.arange(3.0), np.arange(3.0))

    def test_cm1_like_is_stretched(self):
        grid = RectilinearGrid.cm1_like((60, 60, 10))
        dx = np.diff(grid.x)
        # Border spacing is larger than the interior spacing.
        assert dx[0] > dx[len(dx) // 2]
        assert dx[-1] > dx[len(dx) // 2]

    def test_subgrid(self):
        grid = RectilinearGrid.uniform((10, 10, 10))
        sub = grid.subgrid((slice(2, 5), slice(0, 3), slice(4, 10)))
        assert sub.shape == (3, 3, 6)

    def test_cell_volumes_positive(self):
        grid = RectilinearGrid.cm1_like((12, 12, 6))
        vols = grid.cell_volumes()
        assert vols.shape == (11, 11, 5)
        assert np.all(vols > 0)

    def test_uniform_axis_errors(self):
        with pytest.raises(ValueError):
            uniform_axis(0, 1.0)
        with pytest.raises(ValueError):
            uniform_axis(3, -1.0)

    def test_stretched_axis_monotone(self):
        axis = stretched_axis(50, 10.0, stretch_factor=3.0)
        assert axis.size == 50
        assert np.all(np.diff(axis) > 0)

    def test_stretched_axis_validation(self):
        with pytest.raises(ValueError):
            stretched_axis(3, 1.0)
        with pytest.raises(ValueError):
            stretched_axis(20, 1.0, stretch_factor=0.5)
        with pytest.raises(ValueError):
            stretched_axis(20, 1.0, stretch_fraction=0.7)


class TestBlockExtent:
    def test_shape_npoints_slices(self):
        ext = BlockExtent((1, 2, 3), (4, 6, 5))
        assert ext.shape == (3, 4, 2)
        assert ext.npoints == 24
        assert ext.slices == (slice(1, 4), slice(2, 6), slice(3, 5))

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            BlockExtent((0, 0, 0), (0, 1, 1))
        with pytest.raises(ValueError):
            BlockExtent((-1, 0, 0), (1, 1, 1))

    def test_contains(self):
        ext = BlockExtent((0, 0, 0), (2, 2, 2))
        assert ext.contains((1, 1, 1))
        assert not ext.contains((2, 0, 0))

    def test_overlaps(self):
        a = BlockExtent((0, 0, 0), (4, 4, 4))
        b = BlockExtent((3, 3, 3), (6, 6, 6))
        c = BlockExtent((4, 4, 4), (6, 6, 6))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_corner_indices(self):
        ext = BlockExtent((0, 0, 0), (3, 3, 3))
        corners = ext.corner_indices()
        assert len(corners) == 8
        assert (0, 0, 0) in corners and (2, 2, 2) in corners


class TestBlock:
    def test_full_block_shape_checked(self):
        ext = BlockExtent((0, 0, 0), (2, 3, 4))
        with pytest.raises(ValueError):
            Block(0, ext, np.zeros((2, 3, 5)))

    def test_reduced_block_must_be_2x2x2(self):
        ext = BlockExtent((0, 0, 0), (5, 5, 5))
        Block(0, ext, np.zeros((2, 2, 2)), reduced=True)
        with pytest.raises(ValueError):
            Block(0, ext, np.zeros((3, 3, 3)), reduced=True)

    def test_with_owner_and_score(self):
        ext = BlockExtent((0, 0, 0), (2, 2, 2))
        blk = Block(1, ext, np.zeros((2, 2, 2)))
        blk2 = blk.with_owner(3).with_score(4.5)
        assert blk2.owner == 3 and blk2.score == 4.5
        assert blk.owner == 0  # original unchanged

    def test_nbytes_and_points(self):
        ext = BlockExtent((0, 0, 0), (4, 4, 4))
        data = np.zeros((4, 4, 4), dtype=np.float32)
        blk = Block(0, ext, data)
        assert blk.nbytes == 4 * 64
        assert blk.npoints_payload == 64
        assert blk.npoints_full == 64

    def test_value_range(self):
        ext = BlockExtent((0, 0, 0), (2, 2, 2))
        blk = Block(0, ext, np.arange(8, dtype=float).reshape(2, 2, 2))
        assert blk.value_range() == (0.0, 7.0)

    def test_negative_block_id_rejected(self):
        ext = BlockExtent((0, 0, 0), (2, 2, 2))
        with pytest.raises(ValueError):
            Block(-1, ext, np.zeros((2, 2, 2)))


class TestFactorization:
    def test_factorize_64(self):
        assert factorize_ranks(64) == (4, 4, 4)

    def test_factorize_400(self):
        dims = factorize_ranks(400)
        assert np.prod(dims) == 400

    def test_factorize_2d(self):
        dims = factorize_ranks(64, ndims=2)
        assert len(dims) == 2 and np.prod(dims) == 64

    def test_factorize_prime(self):
        assert factorize_ranks(7) == (7, 1, 1)

    def test_factorize_one(self):
        assert factorize_ranks(1) == (1, 1, 1)

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=1, max_value=3))
    def test_factorize_product_property(self, n, ndims):
        dims = factorize_ranks(n, ndims)
        assert int(np.prod(dims)) == n

    def test_split_axis_covers_all(self):
        ranges = split_axis(23, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 23
        total = sum(hi - lo for lo, hi in ranges)
        assert total == 23

    def test_split_axis_errors(self):
        with pytest.raises(ValueError):
            split_axis(3, 5)
        with pytest.raises(ValueError):
            split_axis(3, 0)

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=32))
    def test_split_axis_property(self, npoints, nparts):
        if npoints < nparts:
            return
        ranges = split_axis(npoints, nparts)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == npoints
        assert max(sizes) - min(sizes) <= 1


class TestCartesianDecomposition:
    def test_coverage(self):
        decomp = CartesianDecomposition((16, 16, 8), nranks=4, blocks_per_subdomain=(2, 2, 1))
        assert decomp.validate_coverage()

    def test_rank_coords_roundtrip(self):
        decomp = CartesianDecomposition((16, 16, 8), nranks=8)
        for rank in range(8):
            coords = decomp.rank_coords(rank)
            assert decomp.rank_from_coords(coords) == rank

    def test_block_ids_and_owner(self):
        decomp = CartesianDecomposition((16, 16, 8), nranks=4, blocks_per_subdomain=(2, 1, 1))
        assert decomp.nblocks == 8
        for rank in range(4):
            for bid in decomp.block_ids(rank):
                assert decomp.owner_of_block(bid) == rank

    def test_block_extent_lookup_consistent(self):
        decomp = CartesianDecomposition((16, 12, 8), nranks=2, blocks_per_subdomain=(2, 2, 2))
        all_extents = decomp.all_block_extents()
        for bid, ext in all_extents.items():
            assert decomp.block_extent(bid) == ext

    def test_extract_blocks_content(self):
        shape = (8, 8, 4)
        field = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
        decomp = CartesianDecomposition(shape, nranks=2, blocks_per_subdomain=(1, 1, 1))
        blocks = decomp.extract_blocks(0, field)
        for blk in blocks:
            np.testing.assert_array_equal(blk.data, field[blk.extent.slices])

    def test_extract_blocks_wrong_shape(self):
        decomp = CartesianDecomposition((8, 8, 4), nranks=2)
        with pytest.raises(ValueError):
            decomp.extract_blocks(0, np.zeros((4, 4, 4)))

    def test_rank_dims_override(self):
        decomp = CartesianDecomposition(
            (20, 20, 10), nranks=4, rank_dims_override=(4, 1, 1)
        )
        assert decomp.rank_dims == (4, 1, 1)

    def test_rank_dims_override_mismatch(self):
        with pytest.raises(ValueError):
            CartesianDecomposition((20, 20, 10), nranks=4, rank_dims_override=(2, 1, 1))

    def test_rank_dims_override_wrong_arity_rejected(self):
        """A 2-tuple override must fail on its length, not on its product.

        Regression for the Optional annotation fix: the tuple's arity is
        validated before any product comparison, and a non-iterable override
        raises ValueError (not TypeError) with a clear message.
        """
        with pytest.raises(ValueError, match="rank_dims_override"):
            CartesianDecomposition((20, 20, 10), nranks=4, rank_dims_override=(2, 2))
        with pytest.raises(ValueError, match="3-tuple"):
            CartesianDecomposition((20, 20, 10), nranks=4, rank_dims_override=4)
        with pytest.raises(ValueError, match="rank_dims_override"):
            CartesianDecomposition(
                (20, 20, 10), nranks=4, rank_dims_override=(2, 2, 1, 1)
            )

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            CartesianDecomposition((4, 4, 2), nranks=64)

    def test_invalid_rank_queries(self):
        decomp = CartesianDecomposition((8, 8, 4), nranks=2)
        with pytest.raises(ValueError):
            decomp.block_ids(5)
        with pytest.raises(ValueError):
            decomp.owner_of_block(1000)

    @settings(deadline=None, max_examples=20)
    @given(
        nranks=st.sampled_from([1, 2, 4, 8]),
        bps=st.sampled_from([(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]),
    )
    def test_blocks_tile_domain_property(self, nranks, bps):
        decomp = CartesianDecomposition((24, 24, 12), nranks=nranks, blocks_per_subdomain=bps)
        total_points = sum(e.npoints for e in decomp.all_block_extents().values())
        assert total_points == 24 * 24 * 12


class TestDomain:
    def test_field_shape_validated(self, tiny_domain):
        with pytest.raises(ValueError):
            tiny_domain.add_field("bad", np.zeros((2, 2, 2)))

    def test_subdomain_assemble_matches_field(self, tiny_domain):
        decomp = tiny_domain.decompose(4, blocks_per_subdomain=(2, 2, 1))
        field = tiny_domain.get_field("dbz")
        for rank in range(4):
            sub = tiny_domain.subdomain(decomp, rank)
            np.testing.assert_allclose(
                sub.assemble(), field[decomp.subdomain_extent(rank).slices], rtol=1e-6
            )

    def test_subdomain_block_lookup(self, tiny_domain):
        decomp = tiny_domain.decompose(2)
        sub = tiny_domain.subdomain(decomp, 0)
        first = sub.blocks[0]
        assert sub.block_by_id(first.block_id) is first
        assert sub.block_by_id(999999) is None

    def test_field_names(self, tiny_domain):
        assert "dbz" in tiny_domain.field_names()


class TestReduction:
    def test_corner_values_preserved(self):
        data = np.random.default_rng(0).normal(size=(6, 5, 4))
        corners = reduce_to_corners(data)
        assert corners.shape == (2, 2, 2)
        assert corners[0, 0, 0] == data[0, 0, 0]
        assert corners[1, 1, 1] == data[-1, -1, -1]
        assert corners[1, 0, 1] == data[-1, 0, -1]

    def test_expand_exact_for_linear_field(self):
        x = np.linspace(0, 1, 7)
        y = np.linspace(0, 1, 6)
        z = np.linspace(0, 1, 5)
        xx, yy, zz = np.meshgrid(x, y, z, indexing="ij")
        data = 2.0 * xx - 3.0 * yy + 0.5 * zz + 1.0
        rebuilt = expand_from_corners(reduce_to_corners(data), data.shape)
        np.testing.assert_allclose(rebuilt, data, atol=1e-12)

    def test_reduction_error_zero_for_linear(self):
        x = np.linspace(0, 1, 5)
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        assert reduction_error(xx + yy + zz) == pytest.approx(0.0, abs=1e-20)

    def test_reduction_error_positive_for_nonlinear(self):
        x = np.linspace(0, 2 * np.pi, 9)
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        assert reduction_error(np.sin(xx) * np.cos(yy)) > 0.0

    def test_trilinear_sample_corners(self):
        corners = np.arange(8, dtype=float).reshape(2, 2, 2)
        assert trilinear_sample(corners, 0, 0, 0) == pytest.approx(corners[0, 0, 0])
        assert trilinear_sample(corners, 1, 1, 1) == pytest.approx(corners[1, 1, 1])

    def test_trilinear_sample_bad_shape(self):
        with pytest.raises(ValueError):
            trilinear_sample(np.zeros((3, 2, 2)), 0.5, 0.5, 0.5)

    def test_reduce_block_roundtrip_shape(self):
        ext = BlockExtent((0, 0, 0), (6, 6, 4))
        blk = Block(0, ext, np.random.default_rng(1).normal(size=(6, 6, 4)))
        red = reduce_block(blk)
        assert red.reduced and red.data.shape == (2, 2, 2)
        # Reducing twice is a no-op.
        assert reduce_block(red) is red
        rebuilt = reconstruct_block(red)
        assert rebuilt.shape == (6, 6, 4)

    def test_reconstruct_full_block_is_identity(self):
        ext = BlockExtent((0, 0, 0), (3, 3, 3))
        data = np.random.default_rng(2).normal(size=(3, 3, 3))
        blk = Block(0, ext, data)
        np.testing.assert_array_equal(reconstruct_block(blk), data)

    @settings(deadline=None, max_examples=30)
    @given(
        nx=st.integers(min_value=2, max_value=10),
        ny=st.integers(min_value=2, max_value=10),
        nz=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_expand_bounded_by_corner_range_property(self, nx, ny, nz, seed):
        """Trilinear interpolation never exceeds the range of the corner values."""
        data = np.random.default_rng(seed).uniform(-5, 5, size=(nx, ny, nz))
        corners = reduce_to_corners(data)
        rebuilt = expand_from_corners(corners, data.shape)
        assert rebuilt.min() >= corners.min() - 1e-9
        assert rebuilt.max() <= corners.max() + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(
        nx=st.integers(min_value=1, max_value=8),
        ny=st.integers(min_value=1, max_value=8),
        nz=st.integers(min_value=1, max_value=8),
    )
    def test_reduce_to_corners_always_2x2x2_property(self, nx, ny, nz):
        data = np.zeros((nx, ny, nz))
        assert reduce_to_corners(data).shape == (2, 2, 2)


class TestReductionLadder:
    """The multi-level (mipmap) reduction ladder: levels 0, 1, 2."""

    def test_axis_sample_indices_small(self):
        assert axis_sample_indices(1) == (0,)
        assert axis_sample_indices(2) == (0, 1)
        assert axis_sample_indices(3) == (0, 2)
        assert axis_sample_indices(4) == (0, 2, 3)
        assert axis_sample_indices(5) == (0, 2, 4)
        with pytest.raises(ValueError):
            axis_sample_indices(0)

    @settings(deadline=None, max_examples=30)
    @given(n=st.integers(min_value=1, max_value=64))
    def test_axis_sample_indices_edges_property(self, n):
        """Both edge points of every axis are always retained."""
        samples = axis_sample_indices(n)
        assert samples[0] == 0 and samples[-1] == n - 1
        assert list(samples) == sorted(set(samples))

    def test_level_shape(self):
        assert level_shape(0, (6, 5, 4)) == (6, 5, 4)
        assert level_shape(1, (6, 5, 4)) == (4, 3, 3)
        assert level_shape(2, (6, 5, 4)) == (2, 2, 2)
        with pytest.raises(ValueError):
            level_shape(3, (6, 5, 4))

    def test_level2_is_exactly_corners(self):
        data = np.random.default_rng(3).normal(size=(6, 5, 4))
        np.testing.assert_array_equal(reduce_to_level(data, 2), reduce_to_corners(data))
        np.testing.assert_array_equal(reduce_to_level(data, 0), data)

    def test_level1_preserves_corners_bitwise(self):
        """Corner rung of a level-1 payload equals corners of the full block.

        This is the deepening guarantee: a level-1 block can later be reduced
        to level 2 with no additional error versus reducing the full block.
        """
        data = np.random.default_rng(4).normal(size=(11, 11, 12))
        level1 = reduce_to_level(data, 1)
        np.testing.assert_array_equal(reduce_to_corners(level1), reduce_to_corners(data))

    def test_level1_payload_fraction_below_quarter(self):
        for shape in [(11, 11, 12), (44, 44, 12), (55, 55, 38)]:
            level1 = level_shape(1, shape)
            fraction = np.prod(level1) / np.prod(shape)
            assert fraction <= 0.25, (shape, fraction)

    def test_level1_expand_exact_at_sample_points(self):
        data = np.random.default_rng(5).normal(size=(7, 6, 5))
        rebuilt = expand_from_level(reduce_to_level(data, 1), 1, data.shape)
        ix, iy, iz = (axis_sample_indices(n) for n in data.shape)
        sampled = data[np.ix_(ix, iy, iz)]
        np.testing.assert_array_equal(rebuilt[np.ix_(ix, iy, iz)], sampled)

    def test_level1_expand_exact_for_linear_field(self):
        x = np.linspace(0, 1, 7)
        y = np.linspace(0, 1, 6)
        z = np.linspace(0, 1, 5)
        xx, yy, zz = np.meshgrid(x, y, z, indexing="ij")
        data = 2.0 * xx - 3.0 * yy + 0.5 * zz + 1.0
        rebuilt = expand_from_level(reduce_to_level(data, 1), 1, data.shape)
        np.testing.assert_allclose(rebuilt, data, atol=1e-12)

    def test_level1_error_never_exceeds_level2(self):
        x = np.linspace(0, 2 * np.pi, 9)
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        data = np.sin(xx) * np.cos(yy) + 0.2 * zz
        assert reduction_error(data, level=1) <= reduction_error(data, level=2)
        assert reduction_error(data, level=0) == 0.0

    @pytest.mark.parametrize("level", [0, 1, 2])
    @pytest.mark.parametrize("shape", [(1, 5, 4), (5, 1, 4), (5, 4, 1), (1, 1, 1)])
    def test_degenerate_axis_roundtrip_exact(self, level, shape):
        """A length-1 axis must round-trip exactly at every ladder level.

        Along a degenerate axis there is nothing to interpolate — the single
        plane is both edges at once — so reduce→expand must reproduce the
        original values bitwise on the retained sample grid, and the expanded
        array must be constant along the degenerate axis.
        """
        data = np.random.default_rng(6).normal(size=shape)
        payload = reduce_to_level(data, level)
        assert payload.shape == level_shape(level, shape)
        rebuilt = expand_from_level(payload, level, shape)
        ix, iy, iz = (axis_sample_indices(n) for n in shape) if level == 1 else (
            (0, shape[0] - 1),
            (0, shape[1] - 1),
            (0, shape[2] - 1),
        )
        if level == 0:
            np.testing.assert_array_equal(rebuilt, data)
        else:
            np.testing.assert_array_equal(
                rebuilt[np.ix_(ix, iy, iz)], data[np.ix_(ix, iy, iz)]
            )

    def test_block_level_field_and_deepening(self):
        ext = BlockExtent((0, 0, 0), (6, 6, 4))
        data = np.random.default_rng(7).normal(size=(6, 6, 4))
        blk = Block(0, ext, data)
        assert blk.level == 0 and not blk.reduced
        lvl1 = reduce_block(blk, level=1)
        assert lvl1.level == 1 and lvl1.reduced
        assert lvl1.data.shape == level_shape(1, (6, 6, 4))
        # Deepening 1 -> 2 is bitwise identical to reducing the full block.
        lvl2_via_1 = reduce_block(lvl1, level=2)
        lvl2_direct = reduce_block(blk, level=2)
        np.testing.assert_array_equal(lvl2_via_1.data, lvl2_direct.data)
        # Reducing to a level the block already meets is a no-op.
        assert reduce_block(lvl2_via_1, level=1) is lvl2_via_1
        rebuilt = reconstruct_block(lvl1)
        assert rebuilt.shape == (6, 6, 4)

    def test_block_level_validation(self):
        ext = BlockExtent((0, 0, 0), (6, 6, 4))
        data = np.zeros((6, 6, 4))
        # Legacy constructor: reduced=True without a level means level 2.
        legacy = Block(0, ext, np.zeros((2, 2, 2)), reduced=True)
        assert legacy.level == 2
        with pytest.raises(ValueError):
            Block(0, ext, data, level=3)
        # Inconsistent (level, reduced) combinations are rejected.
        with pytest.raises(ValueError):
            Block(0, ext, data, reduced=True, level=0)
        with pytest.raises(ValueError):
            Block(0, ext, np.zeros((2, 2, 2)), reduced=False, level=2)
        # Payload shape must match the declared level.
        with pytest.raises(ValueError):
            Block(0, ext, np.zeros((2, 2, 2)), level=1)
        assert REDUCTION_LEVELS == (0, 1, 2)
