"""Tests for repro.simmpi: cost model, clocks, BSP communicator, SPMD runtime, sort."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi.communicator import BSPCommunicator, _payload_nbytes
from repro.simmpi.costmodel import NetworkCostModel
from repro.simmpi.rankcomm import RankCommunicator
from repro.simmpi.processcomm import RemoteRankError
from repro.simmpi.runtime import SimRuntime, SPMDError
from repro.simmpi.sort import (
    parallel_sort_pairs,
    parallel_sort_pairs_numpy,
    sample_sort,
)
from repro.simmpi.timing import VirtualClocks


class TestNetworkCostModel:
    def test_p2p_monotone_in_size(self):
        model = NetworkCostModel.blue_waters()
        assert model.p2p(10_000) > model.p2p(100) > 0

    def test_p2p_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkCostModel().p2p(-1)

    def test_single_rank_collectives_free(self):
        model = NetworkCostModel()
        assert model.bcast(1000, 1) == 0.0
        assert model.allgather(1000, 1) == 0.0
        assert model.allreduce(1000, 1) == 0.0

    def test_bcast_grows_with_ranks(self):
        model = NetworkCostModel()
        assert model.bcast(1 << 20, 64) >= model.bcast(1 << 20, 4)

    def test_allreduce_about_twice_bcast(self):
        model = NetworkCostModel(per_rank_overhead=0.0)
        assert model.allreduce(1 << 20, 16) == pytest.approx(2 * model.bcast(1 << 20, 16))

    def test_gather_scales_with_total_volume(self):
        model = NetworkCostModel()
        assert model.gather(1 << 20, 64) > model.gather(1 << 20, 8)

    def test_alltoallv_dominated_by_busiest_rank(self):
        model = NetworkCostModel(per_rank_overhead=0.0)
        # Rank 0 sends 1 MB to everyone; others send nothing.
        matrix = [[0] * 4 for _ in range(4)]
        for j in range(1, 4):
            matrix[0][j] = 1 << 20
        cost_hot = model.alltoallv(matrix, 4)
        balanced = [[1 << 18 if i != j else 0 for j in range(4)] for i in range(4)]
        cost_balanced = model.alltoallv(balanced, 4)
        assert cost_hot > cost_balanced

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkCostModel(latency=0.0)
        with pytest.raises(ValueError):
            NetworkCostModel(bandwidth=-1)

    def test_slow_cluster_slower_than_blue_waters(self):
        slow = NetworkCostModel.slow_cluster()
        fast = NetworkCostModel.blue_waters()
        assert slow.p2p(1 << 20) > fast.p2p(1 << 20)


class TestNetworkCostModelBatch:
    """The batch/vectorised pricing paths must match their scalar references."""

    def test_p2p_batch_matches_p2p_elementwise(self):
        model = NetworkCostModel.blue_waters()
        sizes = np.array([0, 1, 17, 1024, 1 << 20, 1 << 30], dtype=np.int64)
        batch = model.p2p_batch(sizes)
        assert batch.shape == sizes.shape
        for size, cost in zip(sizes, batch):
            assert cost == model.p2p(int(size))

    def test_p2p_batch_accepts_lists_and_empty(self):
        model = NetworkCostModel()
        assert model.p2p_batch([100])[0] == model.p2p(100)
        assert model.p2p_batch(np.array([], dtype=np.int64)).size == 0

    def test_p2p_batch_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkCostModel().p2p_batch(np.array([10, -1, 5]))

    def test_barrier_single_rank(self):
        model = NetworkCostModel(latency=1e-6, per_rank_overhead=1e-5)
        # _log2p clamps to one dissemination round even for P=1.
        assert model.barrier(1) == pytest.approx(1e-6 + 1e-5)

    def test_barrier_huge_rank_count(self):
        model = NetworkCostModel(latency=1e-6, per_rank_overhead=0.0)
        # ceil(log2(2^20)) = 20 rounds, nothing else.
        assert model.barrier(1 << 20) == pytest.approx(20 * 1e-6)

    def test_barrier_monotone_in_ranks(self):
        model = NetworkCostModel()
        costs = [model.barrier(p) for p in (1, 2, 64, 4096, 1 << 20)]
        assert costs == sorted(costs)

    def test_scatter_edges_mirror_gather(self):
        model = NetworkCostModel()
        assert model.scatter(1 << 20, 1) == 0.0
        for nranks in (2, 64, 1 << 16):
            assert model.scatter(1 << 10, nranks) == model.gather(1 << 10, nranks)

    def test_alltoallv_shape_validated(self):
        with pytest.raises(ValueError):
            NetworkCostModel().alltoallv(np.zeros((3, 4)), 4)

    def test_alltoallv_matches_loop_on_random_matrices(self):
        """Vectorised pricing returns the *identical* float as the loop."""
        model = NetworkCostModel.blue_waters()
        rng = np.random.default_rng(42)
        for nranks in (1, 2, 3, 8, 17):
            matrix = rng.integers(0, 1 << 16, size=(nranks, nranks))
            assert model.alltoallv(matrix, nranks) == model.alltoallv_loop(
                matrix, nranks
            )

    def test_alltoallv_matches_loop_on_float_and_negative_entries(self):
        """Floats truncate like int() and non-positive entries carry nothing."""
        model = NetworkCostModel.slow_cluster()
        rng = np.random.default_rng(7)
        for _ in range(10):
            nranks = int(rng.integers(2, 9))
            matrix = rng.uniform(-1000.0, 1e6, size=(nranks, nranks))
            assert model.alltoallv(matrix, nranks) == model.alltoallv_loop(
                matrix, nranks
            )

    def test_alltoallv_accepts_nested_lists(self):
        model = NetworkCostModel()
        matrix = [[0, 10, 0], [5, 0, 0], [0, 0, 0]]
        assert model.alltoallv(matrix, 3) == model.alltoallv_loop(matrix, 3)

    def test_alltoallv_does_not_mutate_input(self):
        model = NetworkCostModel()
        matrix = np.full((4, 4), 100, dtype=np.int64)
        before = matrix.copy()
        model.alltoallv(matrix, 4)
        assert np.array_equal(matrix, before)

    @settings(deadline=None, max_examples=30)
    @given(
        nranks=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_alltoallv_parity_property(self, nranks, seed):
        model = NetworkCostModel.blue_waters()
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-100, 1 << 12, size=(nranks, nranks))
        assert model.alltoallv(matrix, nranks) == model.alltoallv_loop(matrix, nranks)


class TestVirtualClocks:
    def test_advance_and_query(self):
        clocks = VirtualClocks(4)
        clocks.advance(1, 2.0)
        assert clocks.time(1) == 2.0
        assert clocks.time(0) == 0.0
        assert clocks.max_time() == 2.0

    def test_advance_all(self):
        clocks = VirtualClocks(3)
        clocks.advance_all([1.0, 2.0, 3.0])
        assert clocks.times() == [1.0, 2.0, 3.0]

    def test_synchronize_jumps_to_max_plus_cost(self):
        clocks = VirtualClocks(3)
        clocks.advance_all([1.0, 5.0, 3.0])
        t = clocks.synchronize(cost=0.5)
        assert t == pytest.approx(5.5)
        assert clocks.times() == [5.5, 5.5, 5.5]

    def test_synchronize_subset(self):
        clocks = VirtualClocks(4)
        clocks.advance_all([1.0, 2.0, 3.0, 10.0])
        clocks.synchronize(cost=0.0, ranks=[0, 1, 2])
        assert clocks.time(0) == 3.0
        assert clocks.time(3) == 10.0

    def test_imbalance(self):
        clocks = VirtualClocks(2)
        clocks.advance_all([1.0, 3.0])
        assert clocks.imbalance() == pytest.approx(1.5)

    def test_negative_rejected(self):
        clocks = VirtualClocks(2)
        with pytest.raises(ValueError):
            clocks.advance(0, -1.0)
        with pytest.raises(ValueError):
            clocks.synchronize(cost=-1.0)

    def test_reset(self):
        clocks = VirtualClocks(2)
        clocks.advance(0, 1.0)
        clocks.reset()
        assert clocks.max_time() == 0.0


class TestBSPCommunicator:
    def test_bcast_delivers_to_all(self):
        comm = BSPCommunicator(4)
        out = comm.bcast({"a": 1}, root=0)
        assert len(out) == 4 and all(v == {"a": 1} for v in out)

    def test_gather_only_root(self):
        comm = BSPCommunicator(3)
        out = comm.gather([10, 20, 30], root=1)
        assert out[1] == [10, 20, 30]
        assert out[0] is None and out[2] is None

    def test_allgather(self):
        comm = BSPCommunicator(3)
        out = comm.allgather(["a", "b", "c"])
        assert all(v == ["a", "b", "c"] for v in out)

    def test_scatter(self):
        comm = BSPCommunicator(3)
        out = comm.scatter([1, 2, 3], root=0)
        assert out == [1, 2, 3]

    def test_allreduce_sum_default(self):
        comm = BSPCommunicator(4)
        out = comm.allreduce([1, 2, 3, 4])
        assert out == [10, 10, 10, 10]

    def test_reduce_custom_op(self):
        comm = BSPCommunicator(3)
        out = comm.reduce([5, 1, 7], op=max, root=2)
        assert out[2] == 7 and out[0] is None

    def test_alltoallv_exchange(self):
        comm = BSPCommunicator(2)
        send = [[None, "from0"], ["from1", None]]
        recv = comm.alltoallv(send)
        assert recv[1][0] == "from0"
        assert recv[0][1] == "from1"

    def test_alltoallv_shape_validated(self):
        comm = BSPCommunicator(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[None], [None, None]])

    def test_clock_advances_with_collectives(self):
        comm = BSPCommunicator(4)
        before = comm.clocks.max_time()
        comm.bcast(np.zeros(1000), root=0)
        assert comm.clocks.max_time() > before
        assert comm.communication_seconds() > 0

    def test_compute_charges_per_rank(self):
        comm = BSPCommunicator(2)
        comm.compute([1.0, 3.0])
        assert comm.clocks.times() == [1.0, 3.0]

    def test_value_count_validated(self):
        comm = BSPCommunicator(3)
        with pytest.raises(ValueError):
            comm.gather([1, 2])

    def test_stats_tracking(self):
        comm = BSPCommunicator(2)
        comm.barrier()
        comm.bcast(1)
        assert comm.stats["barrier"]["calls"] == 1
        assert comm.stats["bcast"]["calls"] == 1
        comm.reset_stats()
        assert comm.stats == {}

    def test_payload_nbytes_array_vs_object(self):
        arr = np.zeros(100, dtype=np.float64)
        assert _payload_nbytes(arr) == 800
        assert _payload_nbytes("hello") > 0

    def test_payload_nbytes_unpicklable_uses_estimate(self):
        import threading

        from repro.simmpi.communicator import UNPICKLABLE_PAYLOAD_NBYTES

        lock = threading.Lock()  # TypeError from pickle
        assert _payload_nbytes(lock) == UNPICKLABLE_PAYLOAD_NBYTES
        assert _payload_nbytes(lambda x: x) == UNPICKLABLE_PAYLOAD_NBYTES

    def test_payload_nbytes_real_errors_propagate(self):
        class Exploding:
            def __reduce__(self):
                raise OSError("disk on fire")

        with pytest.raises(OSError):
            _payload_nbytes(Exploding())


class TestSimRuntimeSPMD:
    def test_allreduce_across_threads(self):
        def program(comm):
            return comm.allreduce(comm.Get_rank() + 1)

        results = SimRuntime(4).run(program)
        assert results == [10, 10, 10, 10]

    def test_point_to_point_ring(self):
        def program(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            comm.send(rank, dest=(rank + 1) % size, tag=5)
            return comm.recv(source=(rank - 1) % size, tag=5)

        results = SimRuntime(4).run(program)
        assert results == [3, 0, 1, 2]

    def test_isend_irecv(self):
        def program(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            req_out = comm.isend(rank * 10, dest=(rank + 1) % size)
            req_in = comm.irecv(source=(rank - 1) % size)
            req_out.wait()
            return req_in.wait()

        results = SimRuntime(3).run(program)
        assert results == [20, 0, 10]

    def test_bcast_scatter_gather(self):
        def program(comm):
            rank = comm.Get_rank()
            value = comm.bcast("payload" if rank == 0 else None, root=0)
            part = comm.scatter([i * i for i in range(comm.Get_size())] if rank == 0 else None)
            gathered = comm.gather(part, root=0)
            return (value, part, gathered)

        results = SimRuntime(3).run(program)
        assert all(r[0] == "payload" for r in results)
        assert [r[1] for r in results] == [0, 1, 4]
        assert results[0][2] == [0, 1, 4]
        assert results[1][2] is None

    def test_alltoall(self):
        def program(comm):
            rank = comm.Get_rank()
            return comm.alltoall([f"{rank}->{j}" for j in range(comm.Get_size())])

        results = SimRuntime(3).run(program)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_scan(self):
        def program(comm):
            return comm.scan(comm.Get_rank() + 1)

        assert SimRuntime(4).run(program) == [1, 3, 6, 10]

    def test_exception_propagates_as_spmd_error(self):
        def program(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("boom")
            return comm.Get_rank()

        with pytest.raises(SPMDError):
            SimRuntime(3, timeout=5.0).run(program)

    def test_single_rank(self):
        assert SimRuntime(1).run(lambda comm: comm.allreduce(5)) == [5]

    def test_hung_ranks_share_one_join_deadline(self):
        """N hung ranks fail after ~(timeout + grace), not N times that
        (regression: each join used to wait its own full timeout)."""
        import threading
        import time

        hang = threading.Event()  # released at the end of the test

        def program(comm):
            if comm.Get_rank() > 0:
                hang.wait()
            return comm.Get_rank()

        runtime = SimRuntime(4, timeout=0.3, join_grace=0.2)
        start = time.monotonic()
        try:
            with pytest.raises(SPMDError) as excinfo:
                runtime.run(program)
            elapsed = time.monotonic() - start
            # The old per-thread accumulation took >= 3 * (timeout + grace).
            assert elapsed < 2 * (runtime.timeout + runtime.join_grace)
            assert {f.rank for f in excinfo.value.failures} == {1, 2, 3}
            assert all(
                isinstance(f.exception, TimeoutError)
                for f in excinfo.value.failures
            )
        finally:
            hang.set()

    def test_join_grace_validated(self):
        with pytest.raises(ValueError):
            SimRuntime(2, join_grace=-1.0)

    def test_raiser_and_hung_rank_reported_together(self):
        """A hung rank must not mask a recorded exception (regression: the
        synthetic TimeoutError used to be built from the hung set alone,
        dropping the raiser that caused the hang in the first place)."""
        hang = threading.Event()  # released at the end of the test

        def program(comm):
            rank = comm.Get_rank()
            if rank == 1:
                raise ValueError("root cause")
            if rank == 2:
                hang.wait()
            return rank

        runtime = SimRuntime(3, timeout=0.3, join_grace=0.2)
        try:
            with pytest.raises(SPMDError) as excinfo:
                runtime.run(program)
        finally:
            hang.set()
        failures = {f.rank: f.exception for f in excinfo.value.failures}
        assert set(failures) == {1, 2}
        assert isinstance(failures[1], ValueError)  # the root cause survives
        assert isinstance(failures[2], TimeoutError)
        # Failures arrive sorted by rank for a stable error message.
        assert [f.rank for f in excinfo.value.failures] == [1, 2]

    def test_raiser_not_duplicated_by_hang_accounting(self):
        """A rank that raised *and* whose thread is gone is reported once."""

        def program(comm):
            raise RuntimeError(f"rank {comm.Get_rank()} failed")

        with pytest.raises(SPMDError) as excinfo:
            SimRuntime(3, timeout=2.0).run(program)
        assert [f.rank for f in excinfo.value.failures] == [0, 1, 2]
        assert all(isinstance(f.exception, RuntimeError) for f in excinfo.value.failures)


class TestParallelSort:
    def test_gather_sort_broadcast_matches_sequential(self):
        comm = BSPCommunicator(4)
        rng = np.random.default_rng(3)
        per_rank = []
        bid = 0
        for _ in range(4):
            pairs = []
            for _ in range(5):
                pairs.append((bid, float(rng.integers(0, 10))))
                bid += 1
            per_rank.append(pairs)
        out = parallel_sort_pairs(comm, per_rank)
        flat = [p for pairs in per_rank for p in pairs]
        expected = sorted(flat, key=lambda p: (p[1], p[0]))
        assert out[0] == expected
        # Every rank receives the same sorted list.
        assert all(o == expected for o in out)

    def test_sort_handles_empty_rank(self):
        comm = BSPCommunicator(3)
        per_rank = [[(0, 1.0)], [], [(1, 0.5)]]
        out = parallel_sort_pairs(comm, per_rank)
        assert out[0] == [(1, 0.5), (0, 1.0)]

    def test_sort_wrong_rank_count(self):
        comm = BSPCommunicator(2)
        with pytest.raises(ValueError):
            parallel_sort_pairs(comm, [[(0, 1.0)]])

    def test_sample_sort_concatenation_is_sorted(self):
        comm = BSPCommunicator(4)
        rng = np.random.default_rng(9)
        per_rank = []
        bid = 0
        for _ in range(4):
            pairs = []
            for _ in range(20):
                pairs.append((bid, float(rng.normal())))
                bid += 1
            per_rank.append(pairs)
        out = sample_sort(comm, per_rank)
        merged = [p for part in out for p in part]
        flat = [p for pairs in per_rank for p in pairs]
        assert merged == sorted(flat, key=lambda p: (p[1], p[0]))

    def test_sample_sort_single_rank(self):
        comm = BSPCommunicator(1)
        out = sample_sort(comm, [[(1, 2.0), (0, 1.0)]])
        assert out[0] == [(0, 1.0), (1, 2.0)]

    @settings(deadline=None, max_examples=25)
    @given(
        scores=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=4, max_size=40
        ),
        nranks=st.sampled_from([2, 3, 4]),
    )
    def test_parallel_sort_property(self, scores, nranks):
        """The distributed sort always equals the sequential (score, id) sort."""
        comm = BSPCommunicator(nranks)
        pairs = [(i, float(s)) for i, s in enumerate(scores)]
        per_rank = [pairs[r::nranks] for r in range(nranks)]
        out = parallel_sort_pairs(comm, per_rank)
        assert out[0] == sorted(pairs, key=lambda p: (p[1], p[0]))


class TestParallelSortNumpy:
    """The lexsort path must be indistinguishable from the Python path —
    values, types, comm calls, bytes, and modelled seconds."""

    def _random_pairs(self, nranks, per_rank_count, seed=3):
        rng = np.random.default_rng(seed)
        per_rank = []
        bid = 0
        for _ in range(nranks):
            pairs = []
            for _ in range(per_rank_count):
                pairs.append((bid, float(rng.integers(0, 10))))
                bid += 1
            per_rank.append(pairs)
        return per_rank

    def test_matches_python_path_bitwise(self):
        per_rank = self._random_pairs(4, 5)
        python_comm = BSPCommunicator(4)
        numpy_comm = BSPCommunicator(4)
        python_out = parallel_sort_pairs(python_comm, per_rank)
        numpy_out = parallel_sort_pairs_numpy(numpy_comm, per_rank)
        assert numpy_out[0] == python_out[0]
        assert all(o == python_out[0] for o in numpy_out)
        # Same tuple element types (int ids, float scores), not np scalars.
        for bid, score in numpy_out[0]:
            assert type(bid) is int and type(score) is float
        # Identical communication: same ops, same calls, same bytes, and
        # therefore identical modelled seconds.
        assert numpy_comm.stats == python_comm.stats

    def test_shared_result_list_across_ranks(self):
        """Every rank holds literally the same list, mirroring the broadcast
        buffer — what makes the sorting step's agreement check O(nranks)."""
        comm = BSPCommunicator(3)
        out = parallel_sort_pairs_numpy(comm, self._random_pairs(3, 4))
        assert all(o is out[0] for o in out)

    def test_handles_empty_ranks(self):
        comm = BSPCommunicator(3)
        out = parallel_sort_pairs_numpy(comm, [[(0, 1.0)], [], [(1, 0.5)]])
        assert out[0] == [(1, 0.5), (0, 1.0)]

    def test_all_empty(self):
        comm = BSPCommunicator(2)
        out = parallel_sort_pairs_numpy(comm, [[], []])
        assert out == [[], []]

    def test_wrong_rank_count(self):
        comm = BSPCommunicator(2)
        with pytest.raises(ValueError):
            parallel_sort_pairs_numpy(comm, [[(0, 1.0)]])

    @settings(deadline=None, max_examples=25)
    @given(
        scores=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=4,
            max_size=40,
        ),
        nranks=st.sampled_from([2, 3, 4]),
    )
    def test_numpy_sort_property(self, scores, nranks):
        """The lexsort path always equals the sequential (score, id) sort."""
        comm = BSPCommunicator(nranks)
        pairs = [(i, float(s)) for i, s in enumerate(scores)]
        per_rank = [pairs[r::nranks] for r in range(nranks)]
        out = parallel_sort_pairs_numpy(comm, per_rank)
        assert out[0] == sorted(pairs, key=lambda p: (p[1], p[0]))


# SPMD programs for the process runtime live at module level so they resolve
# by qualified name in the rank processes regardless of start method.


def _prog_allreduce(comm):
    return comm.allreduce(comm.Get_rank() + 1)


def _prog_ring(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    comm.send(rank, dest=(rank + 1) % size, tag=5)
    return comm.recv(source=(rank - 1) % size, tag=5)


def _prog_collectives(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    value = comm.bcast("payload" if rank == 0 else None, root=0)
    part = comm.scatter([i * i for i in range(size)] if rank == 0 else None)
    gathered = comm.gather(part, root=0)
    everyone = comm.alltoall([f"{rank}->{j}" for j in range(size)])
    prefix = comm.scan(rank + 1)
    comm.barrier()
    return (value, part, gathered, everyone, prefix)


def _prog_sendrecv_swap(comm):
    rank = comm.Get_rank()
    partner = 1 - rank
    return comm.sendrecv(f"from {rank}", dest=partner, source=partner)


def _prog_raise_on_rank_one(comm):
    if comm.Get_rank() == 1:
        raise ValueError("rank one exploded")
    return comm.Get_rank()


def _prog_raise_or_hang(comm):
    rank = comm.Get_rank()
    if rank == 1:
        raise ValueError("root cause")
    if rank == 2:
        time.sleep(30.0)  # hung until the runtime terminates the process
    return rank


def _prog_unpicklable_return(comm):
    return threading.Lock()  # cannot cross the process boundary


class TestSimRuntimeProcess:
    """``mode="process"`` must behave like the thread runtime, observably."""

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            SimRuntime(2, mode="fibers")

    def test_allreduce_matches_thread_mode(self):
        expected = SimRuntime(4, mode="thread").run(_prog_allreduce)
        assert SimRuntime(4, mode="process").run(_prog_allreduce) == expected

    def test_point_to_point_ring(self):
        results = SimRuntime(4, mode="process").run(_prog_ring)
        assert results == [3, 0, 1, 2]

    def test_sendrecv(self):
        results = SimRuntime(2, mode="process").run(_prog_sendrecv_swap)
        assert results == ["from 1", "from 0"]

    def test_collectives_match_thread_mode(self):
        expected = SimRuntime(3, mode="thread").run(_prog_collectives)
        assert SimRuntime(3, mode="process").run(_prog_collectives) == expected

    def test_single_rank(self):
        assert SimRuntime(1, mode="process").run(_prog_allreduce) == [1]

    def test_exception_propagates_with_original_type(self):
        with pytest.raises(SPMDError) as excinfo:
            SimRuntime(3, timeout=2.0, join_grace=1.0, mode="process").run(
                _prog_raise_on_rank_one
            )
        failures = {f.rank: f.exception for f in excinfo.value.failures}
        assert set(failures) == {1}
        assert isinstance(failures[1], ValueError)
        assert "rank one exploded" in str(failures[1])

    def test_raiser_and_hung_rank_reported_together(self):
        """Same merge contract as thread mode: the recorded exception and
        the hung rank's synthetic TimeoutError arrive in one SPMDError."""
        runtime = SimRuntime(3, timeout=0.5, join_grace=0.5, mode="process")
        with pytest.raises(SPMDError) as excinfo:
            runtime.run(_prog_raise_or_hang)
        failures = {f.rank: f.exception for f in excinfo.value.failures}
        assert set(failures) == {1, 2}
        assert isinstance(failures[1], ValueError)
        assert isinstance(failures[2], TimeoutError)

    def test_unpicklable_return_reported_as_remote_error(self):
        with pytest.raises(SPMDError) as excinfo:
            SimRuntime(1, timeout=2.0, mode="process").run(_prog_unpicklable_return)
        (failure,) = excinfo.value.failures
        assert isinstance(failure.exception, RemoteRankError)
        assert "unpicklable" in str(failure.exception)
