"""Tests for ``python -m repro serve``: streaming runs + the replay cache.

The CI serve smoke-test step runs exactly this file (with a hard step
timeout): in-process ``ServeApp`` tests cover concurrent streamed runs and
the cache-hit guarantees, and one subprocess test exercises the real
``python -m repro serve`` entry point end to end.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cm1.dataset import StoredCM1Dataset
from repro.grid.shm import live_owned_segments
from repro.io.store import DatasetStore
from repro.scenarios import get_scenario, scenario_names
from repro.serve import ReplayCache, RunRequest, ServeApp, scenario_cache_key

TINY_RUN = {"scenario": "tiny", "snapshots": 2, "percent": 40.0}


def _tiny_config(**overrides):
    return get_scenario("tiny").build(**overrides)


# -- cache key + replay cache -------------------------------------------------


class TestScenarioCacheKey:
    def test_equal_configs_share_a_key(self):
        assert scenario_cache_key(_tiny_config()) == scenario_cache_key(_tiny_config())

    def test_overrides_change_the_key(self):
        base = scenario_cache_key(_tiny_config())
        assert scenario_cache_key(_tiny_config(seed=999)) != base
        assert scenario_cache_key(_tiny_config(nsnapshots=7)) != base

    def test_key_is_filesystem_safe_and_named(self):
        key = scenario_cache_key(_tiny_config())
        assert key.startswith("tiny-")
        assert key.replace("-", "").replace("_", "").isalnum()


class TestReplayCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)
        assert not cache.peek(config)
        _, was_hit = cache.scenario_for(config)
        assert was_hit is False
        assert cache.peek(config)
        scenario, was_hit = cache.scenario_for(config)
        assert was_hit is True
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0 and stats["entries"] == 1
        # The hit replays a raw-layout store through read-only memory maps.
        assert isinstance(scenario.dataset, StoredCM1Dataset)
        store = DatasetStore(cache.store_path(config))
        assert store.layout == "raw"

    def test_hit_serves_mmap_backed_fields(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=1)
        cache.scenario_for(config)  # warm
        scenario, was_hit = cache.scenario_for(config)
        assert was_hit is True
        field = scenario.dataset.snapshot(0).get_field(config.field_name)
        # Domain validation wraps the memmap in an ndarray view; the backing
        # buffer must still be the file mapping (zero-copy, no owndata).
        assert not field.flags.owndata
        assert isinstance(field.base, np.memmap)

    def test_replayed_data_matches_live_simulation(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)
        live, _ = cache.scenario_for(config)
        replay, was_hit = cache.scenario_for(config)
        assert was_hit is True
        for index in range(config.nsnapshots):
            np.testing.assert_array_equal(
                live.dataset.snapshot(index).get_field(config.field_name),
                replay.dataset.snapshot(index).get_field(config.field_name),
            )

    def test_concurrent_identical_requests_simulate_once(self, tmp_path, monkeypatch):
        import repro.cm1.simulation as simulation

        calls = []
        original = simulation.CM1Simulation.snapshot

        def counting(self, snapshot_index):
            calls.append(snapshot_index)
            return original(self, snapshot_index)

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", counting)
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)

        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=4) as pool:
            verdicts = [
                f.result()[1]
                for f in [pool.submit(cache.scenario_for, config) for _ in range(4)]
            ]
        assert sorted(verdicts) == [False, True, True, True]
        # Exactly one simulation of each snapshot: the per-key lock made the
        # other three requests wait, then replay from disk.
        assert sorted(calls) == [0, 1]


class TestReplayCacheEviction:
    """The LRU bounds: entries/bytes accounting, pinning, and counters."""

    @pytest.mark.parametrize("kwargs", [{"max_entries": 0}, {"max_bytes": 0}])
    def test_bounds_validated(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            ReplayCache(tmp_path / "cache", **kwargs)

    def test_lru_order_evicts_least_recently_used(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache", max_entries=2)
        a = _tiny_config(nsnapshots=1)
        b = _tiny_config(nsnapshots=1, seed=101)
        c = _tiny_config(nsnapshots=1, seed=102)
        cache.scenario_for(a)
        cache.scenario_for(b)
        cache.scenario_for(a)  # touch: A becomes most recently used
        cache.scenario_for(c)  # over bound: B (LRU) must go, not A
        assert cache.peek(a) and cache.peek(c)
        assert not cache.peek(b)
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2

    def test_evicted_entry_resimulates_on_return(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache", max_entries=1)
        a = _tiny_config(nsnapshots=1)
        b = _tiny_config(nsnapshots=1, seed=101)
        cache.scenario_for(a)
        cache.scenario_for(b)  # evicts A
        _, was_hit = cache.scenario_for(a)
        assert was_hit is False  # the store really was deleted
        assert cache.stats()["misses"] == 3

    def test_max_bytes_accounting_matches_raw_store(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)
        cache.scenario_for(config)
        store = DatasetStore(cache.store_path(config))
        nbytes = store.nbytes()
        # The charged bytes are exactly the raw-layout store's on-disk size.
        assert cache.stats()["bytes"] == nbytes
        assert nbytes == sum(
            p.stat().st_size for p in store.root.rglob("*") if p.is_file()
        )
        # A bound sized for exactly one such entry holds one and evicts on
        # the second insert.
        bounded = ReplayCache(tmp_path / "bounded", max_bytes=nbytes)
        bounded.scenario_for(config)
        assert bounded.stats()["evictions"] == 0
        bounded.scenario_for(_tiny_config(nsnapshots=2, seed=77))
        stats = bounded.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] <= nbytes

    def test_never_evicts_entry_with_inflight_reader(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache", max_entries=1)
        a = _tiny_config(nsnapshots=1)
        b = _tiny_config(nsnapshots=1, seed=101)
        with cache.acquire_store(a) as (store_a, _):
            # B pushes the cache over its bound while A is pinned: the only
            # evictable entry is B itself; A must survive untouched.
            cache.scenario_for(b)
            assert DatasetStore(store_a).exists()
            assert cache.peek(a)
            assert not cache.peek(b)
            assert cache.stats()["evictions"] == 1
        assert cache.peek(a)  # still present after release (cache fits now)

    def test_concurrent_bounded_replays_all_succeed(self, tmp_path):
        """Hammer a max_entries=1 cache from many threads across two
        configs: every run must stream valid data (pinned entries are never
        deleted under a reader) and the cache must end within its bound."""
        from concurrent.futures import ThreadPoolExecutor

        cache = ReplayCache(tmp_path / "cache", max_entries=1)
        configs = [
            _tiny_config(nsnapshots=1),
            _tiny_config(nsnapshots=1, seed=101),
        ]

        def replay(config):
            with cache.acquire(config) as (scenario, _):
                field = scenario.dataset.snapshot(0).get_field(config.field_name)
                return float(field.sum())

        expected = [replay(c) for c in configs]
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(replay, configs[i % 2]) for i in range(16)
            ]
            results = [f.result() for f in futures]
        for index, value in enumerate(results):
            assert value == expected[index % 2]
        assert cache.stats()["entries"] <= 1


# -- request validation -------------------------------------------------------


class TestRunRequest:
    def test_minimal_payload(self):
        request = RunRequest.from_payload({"scenario": "tiny"})
        assert request.scenario == "tiny"
        assert request.pipelined is True

    def test_full_payload(self):
        request = RunRequest.from_payload(
            {
                "scenario": "tiny", "ranks": 4, "snapshots": 3, "seed": 7,
                "metric": "VAR", "redistribution": "shuffle", "percent": 40.0,
                "render_mode": "mesh", "backend": "serial", "pipelined": False,
            }
        )
        assert request.ranks == 4 and request.backend == "serial"
        assert request.pipelined is False

    def test_timeout_parsed(self):
        request = RunRequest.from_payload({"scenario": "tiny", "timeout_s": 2.5})
        assert request.timeout_s == 2.5
        assert RunRequest.from_payload({"scenario": "tiny"}).timeout_s is None

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # scenario missing
            {"scenario": "  "},
            {"scenario": "tiny", "bogus_field": 1},
            {"scenario": "tiny", "metric": "NOPE"},
            {"scenario": "tiny", "redistribution": "sideways"},
            {"scenario": "tiny", "render_mode": "holo"},
            {"scenario": "tiny", "backend": "quantum"},
            {"scenario": "tiny", "timeout_s": 0},
            {"scenario": "tiny", "timeout_s": -1.5},
            "not an object",
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            RunRequest.from_payload(payload)


# -- in-process HTTP service --------------------------------------------------


@contextlib.asynccontextmanager
async def serve_app(tmp_path, **kwargs):
    app = ServeApp(tmp_path / "cache", **kwargs)
    server = await app.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        yield app, port
    finally:
        server.close()
        await server.wait_closed()
        app.close()


async def _request(port, method, path, payload=None):
    """One raw HTTP exchange; returns (status, body bytes read to EOF)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\nContent-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionResetError, BrokenPipeError):
        await writer.wait_closed()
    head, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split()[1])
    return status, payload_bytes


def _events(body: bytes):
    return [json.loads(line) for line in body.decode("utf-8").splitlines() if line]


def _assert_run_stream(events, iterations):
    """One streamed run: start, then per-iteration rows in order, then summary."""
    assert [e["type"] for e in events] == (
        ["start"] + ["iteration"] * iterations + ["summary"]
    )
    rows = [e for e in events if e["type"] == "iteration"]
    assert [row["iteration"] for row in rows] == list(range(iterations))
    for row in rows:
        assert row["nblocks"] > 0
        assert row["modelled_total"] > 0
        assert set(row["modelled_steps"]) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
    summary = events[-1]
    assert summary["run"]["iterations"] == iterations
    assert summary["config"]["pipelined"] in (True, False)


class TestServeApp:
    def test_health_and_scenarios(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "GET", "/health")
                assert status == 200
                assert json.loads(raw)["status"] == "ok"
                status, raw = await _request(port, "GET", "/scenarios")
                assert status == 200
                assert json.loads(raw)["scenarios"] == list(scenario_names())

        asyncio.run(body())

    def test_unknown_route_404(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, _ = await _request(port, "GET", "/nope")
                assert status == 404

        asyncio.run(body())

    def test_unknown_scenario_404_names_available(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {"scenario": "not_a_scenario"}
                )
                assert status == 404
                payload = json.loads(raw)
                assert payload["available"] == list(scenario_names())
                assert "tiny" in payload["available"]

        asyncio.run(body())

    def test_bad_payload_400(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {"scenario": "tiny", "metric": "NOPE"}
                )
                assert status == 400
                assert "metric" in json.loads(raw)["error"]

        asyncio.run(body())

    def test_single_run_streams_per_iteration_json(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                _assert_run_stream(events, iterations=2)
                assert events[0]["cache"] == "miss"
                assert events[0]["cache_key"].startswith("tiny-")

        asyncio.run(body())

    def test_four_concurrent_runs_and_single_simulation(self, tmp_path, monkeypatch):
        """The acceptance gate: >=4 concurrent tiny runs, all streamed, the
        identical ones resolved by one simulation."""
        import repro.cm1.simulation as simulation

        calls = []
        original = simulation.CM1Simulation.snapshot

        def counting(self, snapshot_index):
            calls.append(snapshot_index)
            return original(self, snapshot_index)

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", counting)

        async def body():
            async with serve_app(tmp_path, max_workers=4) as (app, port):
                results = await asyncio.gather(
                    *[_request(port, "POST", "/run", TINY_RUN) for _ in range(4)]
                )
                for status, raw in results:
                    assert status == 200
                    _assert_run_stream(_events(raw), iterations=2)
                verdicts = sorted(
                    _events(raw)[0]["cache"] for _, raw in results
                )
                assert verdicts == ["hit", "hit", "hit", "miss"]
                stats = app.cache.stats()
                assert stats["hits"] == 3 and stats["misses"] == 1

        asyncio.run(body())
        # The four concurrent identical requests simulated each snapshot once.
        assert sorted(calls) == [0, 1]

    def test_second_identical_request_replays_without_simulation(
        self, tmp_path, monkeypatch
    ):
        """After a warm run, an identical request must never re-simulate:
        the simulation is forbidden outright and the run still succeeds."""
        import repro.cm1.simulation as simulation

        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                assert _events(raw)[0]["cache"] == "miss"

                def forbidden(self, snapshot_index):
                    raise AssertionError("cache hit must not re-simulate CM1")

                monkeypatch.setattr(
                    simulation.CM1Simulation, "snapshot", forbidden
                )
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                assert events[0]["cache"] == "hit"
                _assert_run_stream(events, iterations=2)

        asyncio.run(body())

    def test_cached_replay_matches_live_run_bitwise(self, tmp_path):
        """The mmap replay feeds the pipeline the same numbers as the live
        simulation: identical modelled timings, block counts, and scores."""

        async def body():
            async with serve_app(tmp_path) as (_, port):
                _, first = await _request(port, "POST", "/run", TINY_RUN)
                _, second = await _request(port, "POST", "/run", TINY_RUN)
                rows = lambda raw: [
                    e for e in _events(raw) if e["type"] == "iteration"
                ]
                assert rows(first) == rows(second)

        asyncio.run(body())

    def test_different_overrides_miss_separately(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (app, port):
                await _request(port, "POST", "/run", TINY_RUN)
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "seed": 1234}
                )
                assert status == 200
                assert _events(raw)[0]["cache"] == "miss"
                assert app.cache.stats()["misses"] == 2

        asyncio.run(body())

    def test_run_error_streams_error_event(self, tmp_path, monkeypatch):
        """A failure mid-run surfaces as a streamed error event, not a hang."""
        import repro.cm1.simulation as simulation

        def explode(self, snapshot_index):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", explode)

        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                assert events[-1]["type"] == "error"
                assert events[-1]["reason"] == "exception"
                assert "synthetic failure" in events[-1]["error"]

        asyncio.run(body())

    def test_health_reports_executor_depth(self, tmp_path):
        async def body():
            async with serve_app(tmp_path, max_workers=3) as (_, port):
                _, raw = await _request(port, "GET", "/health")
                executor = json.loads(raw)["executor"]
                assert executor == {
                    "execution": "thread",
                    "workers": 3,
                    "active": 0,
                    "queued": 0,
                    "completed": 0,
                }
                await _request(port, "POST", "/run", TINY_RUN)
                _, raw = await _request(port, "GET", "/health")
                health = json.loads(raw)
                assert health["execution"] == "thread"
                assert health["executor"]["completed"] == 1
                assert health["executor"]["active"] == 0
                assert health["cache"]["misses"] == 1

        asyncio.run(body())

    def test_request_timeout_streams_timeout_error(self, tmp_path):
        """A tiny ``timeout_s`` cancels the run with the distinct reason —
        and the cancelled run leaves no owned shm segments behind."""

        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "timeout_s": 1e-4}
                )
                assert status == 200
                events = _events(raw)
                assert events[-1]["type"] == "error"
                assert events[-1]["reason"] == "timeout"
                assert "deadline" in events[-1]["error"]

        asyncio.run(body())
        assert live_owned_segments() == ()

    def test_server_side_max_run_seconds_caps_requests(self, tmp_path):
        """The server cap applies even when the request asks for longer."""

        async def body():
            async with serve_app(tmp_path, max_run_seconds=1e-4) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "timeout_s": 3600.0}
                )
                assert status == 200
                events = _events(raw)
                assert events[-1]["type"] == "error"
                assert events[-1]["reason"] == "timeout"

        asyncio.run(body())

    def test_generous_timeout_does_not_fire(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "timeout_s": 3600.0}
                )
                assert status == 200
                _assert_run_stream(_events(raw), iterations=2)

        asyncio.run(body())

    def test_close_cancels_inflight_run_within_grace(self, tmp_path, monkeypatch):
        """Shutdown mid-run: the in-flight run aborts at its next iteration
        boundary with a ``shutdown`` error event and ``close`` returns well
        inside its grace period instead of waiting the run out."""
        from repro.metrics.statistics import VarianceMetric

        original = VarianceMetric.score_block

        def slow(self, data):
            time.sleep(0.05)
            return original(self, data)

        monkeypatch.setattr(VarianceMetric, "score_block", slow)

        async def body():
            app = ServeApp(tmp_path / "cache")
            server = await app.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            async with server:
                # 12 snapshots x 64 blocks x 50 ms: minutes of run if not
                # cancelled.  backend=serial routes scoring through the
                # patched scalar path.
                request = asyncio.ensure_future(
                    _request(
                        port,
                        "POST",
                        "/run",
                        {
                            "scenario": "tiny",
                            "snapshots": 12,
                            "backend": "serial",
                            "pipelined": False,
                        },
                    )
                )
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    _, raw = await _request(port, "GET", "/health")
                    if json.loads(raw)["executor"]["active"] > 0:
                        break
                    await asyncio.sleep(0.02)
                start = time.monotonic()
                await loop.run_in_executor(None, app.close, 30.0)
                close_seconds = time.monotonic() - start
                status, raw = await request
                return close_seconds, _events(raw)

        close_seconds, events = asyncio.run(body())
        assert close_seconds < 15.0, (
            f"close() took {close_seconds:.1f}s; the in-flight run was not "
            f"cancelled cooperatively"
        )
        assert events[-1]["type"] == "error"
        assert events[-1]["reason"] == "shutdown"


class TestServeAppProcessTier:
    """The process execution tier, in-process (fork-started pool workers)."""

    def test_streams_identically_to_thread_tier(self, tmp_path):
        """Same request, both tiers: identical iteration rows and summary
        (only the start event's execution/cache fields may differ)."""

        async def run_tier(execution, cache_root):
            async with serve_app(
                cache_root, execution=execution, max_workers=2
            ) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                return _events(raw)

        process_events = asyncio.run(run_tier("process", tmp_path / "p"))
        thread_events = asyncio.run(run_tier("thread", tmp_path / "t"))
        assert process_events[0]["execution"] == "process"
        _assert_run_stream(process_events, iterations=2)

        def comparable(events):
            rows = [dict(e) for e in events[1:]]
            for row in rows:
                row.pop("cache", None)
            return rows

        assert comparable(process_events) == comparable(thread_events)

    def test_cache_hit_and_health_depth(self, tmp_path):
        async def body():
            async with serve_app(
                tmp_path, execution="process", max_workers=2
            ) as (_, port):
                _, first = await _request(port, "POST", "/run", TINY_RUN)
                _, second = await _request(port, "POST", "/run", TINY_RUN)
                assert _events(first)[0]["cache"] == "miss"
                assert _events(second)[0]["cache"] == "hit"
                _, raw = await _request(port, "GET", "/health")
                health = json.loads(raw)
                assert health["execution"] == "process"
                assert health["executor"]["execution"] == "process"
                assert health["executor"]["workers"] >= 1
                assert health["executor"]["completed"] == 2
                assert health["cache"]["hits"] == 1

        asyncio.run(body())

    def test_timeout_cancels_worker_without_leaking_shm(self, tmp_path):
        async def body():
            async with serve_app(tmp_path, execution="process") as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "timeout_s": 1e-4}
                )
                assert status == 200
                events = _events(raw)
                assert events[-1]["type"] == "error"
                assert events[-1]["reason"] == "timeout"

        asyncio.run(body())
        assert live_owned_segments() == ()


# -- the real subprocess entry point ------------------------------------------


def _spawn_serve(env, *extra_args):
    """Start ``python -m repro serve`` and return ``(proc, port)``."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    port = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            pytest.fail(f"serve exited early (rc={proc.returncode})")
        if "repro serve listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port is not None, "server never reported its port"
    return proc, port


def _post_run_events(port, payload, timeout=120):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/run",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.status == 200
        return _events(response.read())


def _get_json(port, path, timeout=30):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        assert response.status == 200
        return json.loads(response.read())


class TestServeSubprocess:
    @pytest.fixture()
    def env(self):
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def test_serve_cli_streams_and_caches(self, env, tmp_path):
        proc, port = _spawn_serve(
            env, "--cache-dir", str(tmp_path / "cache"), "--workers", "2"
        )
        try:
            events = _post_run_events(port, TINY_RUN)
            _assert_run_stream(events, iterations=2)
            assert events[0]["cache"] == "miss"
            events = _post_run_events(port, TINY_RUN)
            _assert_run_stream(events, iterations=2)
            assert events[0]["cache"] == "hit"
            assert events[-1]["cache"]["hits"] == 1
            assert events[-1]["cache"]["misses"] == 1
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_process_tier_with_bounded_cache_evicts(self, env, tmp_path):
        """The CI smoke: ``--execution process --cache-max-entries 1``,
        three requests (two identical), an eviction visible in /health."""
        proc, port = _spawn_serve(
            env,
            "--cache-dir", str(tmp_path / "cache"),
            "--workers", "2",
            "--execution", "process",
            "--cache-max-entries", "1",
        )
        try:
            health = _get_json(port, "/health")
            assert health["execution"] == "process"
            assert health["cache"]["max_entries"] == 1

            first = _post_run_events(port, TINY_RUN)
            _assert_run_stream(first, iterations=2)
            assert first[0]["cache"] == "miss"
            other = {**TINY_RUN, "seed": 4242}
            evicting = _post_run_events(port, other)
            assert evicting[0]["cache"] == "miss"
            repeat = _post_run_events(port, other)
            assert repeat[0]["cache"] == "hit"

            health = _get_json(port, "/health")
            assert health["cache"]["evictions"] >= 1
            assert health["cache"]["entries"] == 1
            assert health["cache"]["hits"] >= 1
            assert health["executor"]["execution"] == "process"
            assert health["executor"]["completed"] == 3
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_sigint_mid_run_exits_promptly(self, env, tmp_path):
        """The shutdown fix: SIGINT while a run is streaming must cancel the
        run at its next iteration boundary and exit inside the grace period,
        not wait out the remaining iterations (or hang in executor teardown).
        """
        import signal
        import socket as socket_module

        proc, port = _spawn_serve(
            env,
            "--cache-dir", str(tmp_path / "cache"),
            "--shutdown-grace", "15",
        )
        try:
            # Warm the cache with the cheap vectorised metric: the cache key
            # is the scenario config, so the slow PYVAR run below replays
            # the same snapshots as a hit and spends its time purely in
            # GIL-bound scoring across many iterations.
            long_run = {"scenario": "tiny", "snapshots": 150}
            warm = _post_run_events(port, long_run, timeout=180)
            assert warm[0]["cache"] == "miss"

            with socket_module.create_connection(
                ("127.0.0.1", port), timeout=60
            ) as sock:
                body = json.dumps({**long_run, "metric": "PYVAR"}).encode()
                sock.sendall(
                    (
                        f"POST /run HTTP/1.1\r\nHost: t\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode()
                    + body
                )
                # Wait until the run is demonstrably streaming iterations.
                seen = b""
                while seen.count(b'"iteration"') < 3:
                    chunk = sock.recv(4096)
                    assert chunk, "stream closed before iterations arrived"
                    seen += chunk
                proc.send_signal(signal.SIGINT)
                start = time.monotonic()
                rest = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    rest += chunk

            rc = proc.wait(timeout=20)
            exit_seconds = time.monotonic() - start
            assert exit_seconds < 15.0, (
                f"serve took {exit_seconds:.1f}s to exit after SIGINT mid-run"
            )
            assert rc == 0
            # The interrupted stream ended early — nowhere near the 150
            # iterations a full run streams.
            total = seen + rest
            assert total.count(b'"iteration"') < 140
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
