"""Tests for ``python -m repro serve``: streaming runs + the replay cache.

The CI serve smoke-test step runs exactly this file (with a hard step
timeout): in-process ``ServeApp`` tests cover concurrent streamed runs and
the cache-hit guarantees, and one subprocess test exercises the real
``python -m repro serve`` entry point end to end.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cm1.dataset import StoredCM1Dataset
from repro.io.store import DatasetStore
from repro.scenarios import get_scenario, scenario_names
from repro.serve import ReplayCache, RunRequest, ServeApp, scenario_cache_key

TINY_RUN = {"scenario": "tiny", "snapshots": 2, "percent": 40.0}


def _tiny_config(**overrides):
    return get_scenario("tiny").build(**overrides)


# -- cache key + replay cache -------------------------------------------------


class TestScenarioCacheKey:
    def test_equal_configs_share_a_key(self):
        assert scenario_cache_key(_tiny_config()) == scenario_cache_key(_tiny_config())

    def test_overrides_change_the_key(self):
        base = scenario_cache_key(_tiny_config())
        assert scenario_cache_key(_tiny_config(seed=999)) != base
        assert scenario_cache_key(_tiny_config(nsnapshots=7)) != base

    def test_key_is_filesystem_safe_and_named(self):
        key = scenario_cache_key(_tiny_config())
        assert key.startswith("tiny-")
        assert key.replace("-", "").replace("_", "").isalnum()


class TestReplayCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)
        assert not cache.peek(config)
        _, was_hit = cache.scenario_for(config)
        assert was_hit is False
        assert cache.peek(config)
        scenario, was_hit = cache.scenario_for(config)
        assert was_hit is True
        assert cache.stats() == {"hits": 1, "misses": 1}
        # The hit replays a raw-layout store through read-only memory maps.
        assert isinstance(scenario.dataset, StoredCM1Dataset)
        store = DatasetStore(cache.store_path(config))
        assert store.layout == "raw"

    def test_hit_serves_mmap_backed_fields(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=1)
        cache.scenario_for(config)  # warm
        scenario, was_hit = cache.scenario_for(config)
        assert was_hit is True
        field = scenario.dataset.snapshot(0).get_field(config.field_name)
        # Domain validation wraps the memmap in an ndarray view; the backing
        # buffer must still be the file mapping (zero-copy, no owndata).
        assert not field.flags.owndata
        assert isinstance(field.base, np.memmap)

    def test_replayed_data_matches_live_simulation(self, tmp_path):
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)
        live, _ = cache.scenario_for(config)
        replay, was_hit = cache.scenario_for(config)
        assert was_hit is True
        for index in range(config.nsnapshots):
            np.testing.assert_array_equal(
                live.dataset.snapshot(index).get_field(config.field_name),
                replay.dataset.snapshot(index).get_field(config.field_name),
            )

    def test_concurrent_identical_requests_simulate_once(self, tmp_path, monkeypatch):
        import repro.cm1.simulation as simulation

        calls = []
        original = simulation.CM1Simulation.snapshot

        def counting(self, snapshot_index):
            calls.append(snapshot_index)
            return original(self, snapshot_index)

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", counting)
        cache = ReplayCache(tmp_path / "cache")
        config = _tiny_config(nsnapshots=2)

        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=4) as pool:
            verdicts = [
                f.result()[1]
                for f in [pool.submit(cache.scenario_for, config) for _ in range(4)]
            ]
        assert sorted(verdicts) == [False, True, True, True]
        # Exactly one simulation of each snapshot: the per-key lock made the
        # other three requests wait, then replay from disk.
        assert sorted(calls) == [0, 1]


# -- request validation -------------------------------------------------------


class TestRunRequest:
    def test_minimal_payload(self):
        request = RunRequest.from_payload({"scenario": "tiny"})
        assert request.scenario == "tiny"
        assert request.pipelined is True

    def test_full_payload(self):
        request = RunRequest.from_payload(
            {
                "scenario": "tiny", "ranks": 4, "snapshots": 3, "seed": 7,
                "metric": "VAR", "redistribution": "shuffle", "percent": 40.0,
                "render_mode": "mesh", "backend": "serial", "pipelined": False,
            }
        )
        assert request.ranks == 4 and request.backend == "serial"
        assert request.pipelined is False

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # scenario missing
            {"scenario": "  "},
            {"scenario": "tiny", "bogus_field": 1},
            {"scenario": "tiny", "metric": "NOPE"},
            {"scenario": "tiny", "redistribution": "sideways"},
            {"scenario": "tiny", "render_mode": "holo"},
            {"scenario": "tiny", "backend": "quantum"},
            "not an object",
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            RunRequest.from_payload(payload)


# -- in-process HTTP service --------------------------------------------------


@contextlib.asynccontextmanager
async def serve_app(tmp_path, **kwargs):
    app = ServeApp(tmp_path / "cache", **kwargs)
    server = await app.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        yield app, port
    finally:
        server.close()
        await server.wait_closed()
        app.close()


async def _request(port, method, path, payload=None):
    """One raw HTTP exchange; returns (status, body bytes read to EOF)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\nContent-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionResetError, BrokenPipeError):
        await writer.wait_closed()
    head, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split()[1])
    return status, payload_bytes


def _events(body: bytes):
    return [json.loads(line) for line in body.decode("utf-8").splitlines() if line]


def _assert_run_stream(events, iterations):
    """One streamed run: start, then per-iteration rows in order, then summary."""
    assert [e["type"] for e in events] == (
        ["start"] + ["iteration"] * iterations + ["summary"]
    )
    rows = [e for e in events if e["type"] == "iteration"]
    assert [row["iteration"] for row in rows] == list(range(iterations))
    for row in rows:
        assert row["nblocks"] > 0
        assert row["modelled_total"] > 0
        assert set(row["modelled_steps"]) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
    summary = events[-1]
    assert summary["run"]["iterations"] == iterations
    assert summary["config"]["pipelined"] in (True, False)


class TestServeApp:
    def test_health_and_scenarios(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "GET", "/health")
                assert status == 200
                assert json.loads(raw)["status"] == "ok"
                status, raw = await _request(port, "GET", "/scenarios")
                assert status == 200
                assert json.loads(raw)["scenarios"] == list(scenario_names())

        asyncio.run(body())

    def test_unknown_route_404(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, _ = await _request(port, "GET", "/nope")
                assert status == 404

        asyncio.run(body())

    def test_unknown_scenario_404_names_available(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {"scenario": "not_a_scenario"}
                )
                assert status == 404
                payload = json.loads(raw)
                assert payload["available"] == list(scenario_names())
                assert "tiny" in payload["available"]

        asyncio.run(body())

    def test_bad_payload_400(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(
                    port, "POST", "/run", {"scenario": "tiny", "metric": "NOPE"}
                )
                assert status == 400
                assert "metric" in json.loads(raw)["error"]

        asyncio.run(body())

    def test_single_run_streams_per_iteration_json(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                _assert_run_stream(events, iterations=2)
                assert events[0]["cache"] == "miss"
                assert events[0]["cache_key"].startswith("tiny-")

        asyncio.run(body())

    def test_four_concurrent_runs_and_single_simulation(self, tmp_path, monkeypatch):
        """The acceptance gate: >=4 concurrent tiny runs, all streamed, the
        identical ones resolved by one simulation."""
        import repro.cm1.simulation as simulation

        calls = []
        original = simulation.CM1Simulation.snapshot

        def counting(self, snapshot_index):
            calls.append(snapshot_index)
            return original(self, snapshot_index)

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", counting)

        async def body():
            async with serve_app(tmp_path, max_workers=4) as (app, port):
                results = await asyncio.gather(
                    *[_request(port, "POST", "/run", TINY_RUN) for _ in range(4)]
                )
                for status, raw in results:
                    assert status == 200
                    _assert_run_stream(_events(raw), iterations=2)
                verdicts = sorted(
                    _events(raw)[0]["cache"] for _, raw in results
                )
                assert verdicts == ["hit", "hit", "hit", "miss"]
                assert app.cache.stats() == {"hits": 3, "misses": 1}

        asyncio.run(body())
        # The four concurrent identical requests simulated each snapshot once.
        assert sorted(calls) == [0, 1]

    def test_second_identical_request_replays_without_simulation(
        self, tmp_path, monkeypatch
    ):
        """After a warm run, an identical request must never re-simulate:
        the simulation is forbidden outright and the run still succeeds."""
        import repro.cm1.simulation as simulation

        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                assert _events(raw)[0]["cache"] == "miss"

                def forbidden(self, snapshot_index):
                    raise AssertionError("cache hit must not re-simulate CM1")

                monkeypatch.setattr(
                    simulation.CM1Simulation, "snapshot", forbidden
                )
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                assert events[0]["cache"] == "hit"
                _assert_run_stream(events, iterations=2)

        asyncio.run(body())

    def test_cached_replay_matches_live_run_bitwise(self, tmp_path):
        """The mmap replay feeds the pipeline the same numbers as the live
        simulation: identical modelled timings, block counts, and scores."""

        async def body():
            async with serve_app(tmp_path) as (_, port):
                _, first = await _request(port, "POST", "/run", TINY_RUN)
                _, second = await _request(port, "POST", "/run", TINY_RUN)
                rows = lambda raw: [
                    e for e in _events(raw) if e["type"] == "iteration"
                ]
                assert rows(first) == rows(second)

        asyncio.run(body())

    def test_different_overrides_miss_separately(self, tmp_path):
        async def body():
            async with serve_app(tmp_path) as (app, port):
                await _request(port, "POST", "/run", TINY_RUN)
                status, raw = await _request(
                    port, "POST", "/run", {**TINY_RUN, "seed": 1234}
                )
                assert status == 200
                assert _events(raw)[0]["cache"] == "miss"
                assert app.cache.stats()["misses"] == 2

        asyncio.run(body())

    def test_run_error_streams_error_event(self, tmp_path, monkeypatch):
        """A failure mid-run surfaces as a streamed error event, not a hang."""
        import repro.cm1.simulation as simulation

        def explode(self, snapshot_index):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(simulation.CM1Simulation, "snapshot", explode)

        async def body():
            async with serve_app(tmp_path) as (_, port):
                status, raw = await _request(port, "POST", "/run", TINY_RUN)
                assert status == 200
                events = _events(raw)
                assert events[-1]["type"] == "error"
                assert "synthetic failure" in events[-1]["error"]

        asyncio.run(body())


# -- the real subprocess entry point ------------------------------------------


class TestServeSubprocess:
    @pytest.fixture()
    def env(self):
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def test_serve_cli_streams_and_caches(self, env, tmp_path):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache-dir", str(tmp_path / "cache"),
                "--workers", "2",
            ],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stderr.readline()
                if not line and proc.poll() is not None:
                    pytest.fail(f"serve exited early (rc={proc.returncode})")
                if "repro serve listening on" in line:
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port is not None, "server never reported its port"

            def post_run(payload):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/run",
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=120) as response:
                    assert response.status == 200
                    return _events(response.read())

            events = post_run(TINY_RUN)
            _assert_run_stream(events, iterations=2)
            assert events[0]["cache"] == "miss"
            events = post_run(TINY_RUN)
            _assert_run_stream(events, iterations=2)
            assert events[0]["cache"] == "hit"
            assert events[-1]["cache"] == {"hits": 1, "misses": 1}
        finally:
            proc.terminate()
            proc.wait(timeout=30)
