"""Tests for the individual pipeline steps (scoring, sorting, reduction, redistribution, rendering)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.redistribution import (
    NoRedistribution,
    RandomShuffle,
    RoundRobin,
    make_strategy,
)
from repro.core.reduction_step import (
    DEFAULT_QUALITY_LADDER,
    ParallelReductionStep,
    ReductionStep,
    VectorizedReductionStep,
    select_blocks_to_reduce,
    select_reduction_levels,
    validate_quality_ladder,
)
from repro.core.rendering_step import RenderingStep
from repro.core.scoring_step import ScoringStep
from repro.core.sorting_step import SortingStep, VectorizedSortingStep


def owners_dict(assignment):
    """Assignment arrays as an id -> destination dict (test convenience)."""
    block_ids, dests = assignment
    return {int(i): int(d) for i, d in zip(block_ids, dests)}
from repro.grid.decomposition import CartesianDecomposition
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator


@pytest.fixture()
def per_rank_blocks(tiny_field):
    decomp = CartesianDecomposition(tiny_field.shape, nranks=4, blocks_per_subdomain=(2, 2, 1))
    return [decomp.extract_blocks(r, tiny_field) for r in range(4)]


@pytest.fixture()
def platform():
    return PlatformModel.blue_waters(4)


class TestScoringStep:
    def test_scores_every_block(self, per_rank_blocks, platform):
        step = ScoringStep(create_metric("VAR"), platform)
        pairs, scored, info = step.run(per_rank_blocks)
        assert len(pairs) == 4
        total = sum(len(p) for p in pairs)
        assert total == sum(len(b) for b in per_rank_blocks)
        for rank_blocks in scored:
            for blk in rank_blocks:
                assert blk.score is not None
        assert info["modelled_max"] > 0

    def test_scores_match_metric(self, per_rank_blocks, platform):
        metric = create_metric("RANGE")
        step = ScoringStep(metric, platform)
        pairs, scored, _ = step.run(per_rank_blocks)
        for (bid, score), blk in zip(pairs[0], per_rank_blocks[0]):
            assert bid == blk.block_id
            assert score == pytest.approx(metric.score_block(blk.data))


class TestSortingStep:
    def test_global_sort(self, per_rank_blocks, platform):
        comm = BSPCommunicator(4, cost_model=platform.network)
        scoring = ScoringStep(create_metric("VAR"), platform)
        pairs, _, _ = scoring.run(per_rank_blocks)
        sorted_pairs, info = SortingStep(comm).run(pairs)
        scores = [s for _, s in sorted_pairs]
        assert scores == sorted(scores)
        assert len(sorted_pairs) == sum(len(p) for p in pairs)
        assert info["modelled"] >= 0

    def test_numpy_backend_bitwise_identical(self, per_rank_blocks, platform):
        """The vectorized (lexsort) sorting step returns the identical list
        and charges the identical modelled communication seconds."""
        scoring = ScoringStep(create_metric("VAR"), platform)
        pairs, _, _ = scoring.run(per_rank_blocks)
        serial_comm = BSPCommunicator(4, cost_model=platform.network)
        numpy_comm = BSPCommunicator(4, cost_model=platform.network)
        serial_sorted, serial_info = SortingStep(serial_comm).run(pairs)
        numpy_sorted, numpy_info = VectorizedSortingStep(numpy_comm).run(pairs)
        assert numpy_sorted == serial_sorted
        assert numpy_info["modelled"] == serial_info["modelled"]
        assert serial_comm.stats == numpy_comm.stats

    def test_diverging_rank_lists_rejected(self, platform):
        """Regression for the blind ``per_rank_sorted[0]``: a sort backend
        that hands ranks different lists must fail loudly, not silently
        corrupt every downstream decision."""

        class BrokenSortingStep(SortingStep):
            def _sort(self, per_rank_pairs):
                good = [(0, 0.5), (1, 1.5)]
                return [list(good) for _ in range(self.comm.nranks - 1)] + [
                    [(1, 1.5), (0, 0.5)]
                ]

        comm = BSPCommunicator(4, cost_model=platform.network)
        with pytest.raises(RuntimeError, match="diverging"):
            BrokenSortingStep(comm).run([[(0, 0.5)], [(1, 1.5)], [], []])


class TestReductionSelection:
    def test_zero_and_full_percent(self):
        pairs = [(i, float(i)) for i in range(10)]
        assert select_blocks_to_reduce(pairs, 0.0) == set()
        assert select_blocks_to_reduce(pairs, 100.0) == set(range(10))

    def test_fifty_percent_takes_lowest_scores(self):
        pairs = [(i, float(i)) for i in range(10)]
        assert select_blocks_to_reduce(pairs, 50.0) == {0, 1, 2, 3, 4}

    def test_percent_out_of_range(self):
        with pytest.raises(ValueError):
            select_blocks_to_reduce([], 150.0)
        with pytest.raises(ValueError):
            select_blocks_to_reduce([], -1.0)

    def test_empty_pairs(self):
        assert select_blocks_to_reduce([], 0.0) == set()
        assert select_blocks_to_reduce([], 50.0) == set()
        assert select_blocks_to_reduce([], 100.0) == set()

    def test_full_percent_selects_everything(self):
        pairs = [(i, float(i % 3)) for i in range(7)]
        pairs = sorted(pairs, key=lambda p: (p[1], p[0]))
        assert select_blocks_to_reduce(pairs, 100.0) == set(range(7))

    @settings(deadline=None, max_examples=50)
    @given(
        nblocks=st.integers(min_value=1, max_value=200),
        percent=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_selection_size_property(self, nblocks, percent):
        pairs = [(i, float(i % 7)) for i in range(nblocks)]
        pairs = sorted(pairs, key=lambda p: (p[1], p[0]))
        selected = select_blocks_to_reduce(pairs, percent)
        expected = min(nblocks, math.floor(nblocks * percent / 100.0 + 0.5))
        assert len(selected) == expected

    def test_round_half_up_boundaries(self):
        """Half-way counts round up for every parity (regression: Python's
        round() does banker's rounding, so 5% of 10 blocks selected 0 blocks
        while 5% of 30 selected 2)."""
        def count(nblocks, percent):
            pairs = [(i, float(i)) for i in range(nblocks)]
            return len(select_blocks_to_reduce(pairs, percent))

        assert count(10, 5.0) == 1   # 0.5 -> 1 (banker's round gave 0)
        assert count(30, 5.0) == 2   # 1.5 -> 2
        assert count(10, 25.0) == 3  # 2.5 -> 3 (banker's round gave 2)
        assert count(10, 35.0) == 4  # 3.5 -> 4
        assert count(10, 45.0) == 5  # 4.5 -> 5 (banker's round gave 4)
        # Non-boundary values are unaffected.
        assert count(10, 24.0) == 2
        assert count(10, 26.0) == 3

    def test_reduction_step_reduces_selected(self, per_rank_blocks):
        all_pairs = sorted(
            [(b.block_id, float(b.block_id)) for blocks in per_rank_blocks for b in blocks],
            key=lambda p: (p[1], p[0]),
        )
        step = ReductionStep()
        out, reduced_ids, info = step.run(per_rank_blocks, all_pairs, percent=50.0)
        assert info["nreduced"] == len(reduced_ids)
        for blocks in out:
            for blk in blocks:
                assert blk.reduced == (blk.block_id in reduced_ids)
                if blk.reduced:
                    assert blk.data.shape == (2, 2, 2)


class TestReductionBackends:
    """Vectorized/parallel reduction must be bitwise identical to serial."""

    def _pairs(self, per_rank_blocks):
        return sorted(
            [
                (b.block_id, float(b.block_id % 5))
                for blocks in per_rank_blocks
                for b in blocks
            ],
            key=lambda p: (p[1], p[0]),
        )

    @pytest.mark.parametrize("percent", [0.0, 35.0, 100.0])
    def test_backends_bitwise_identical(self, per_rank_blocks, platform, percent):
        pairs = self._pairs(per_rank_blocks)
        serial = ReductionStep(platform)
        vector = VectorizedReductionStep(platform)
        parallel = ParallelReductionStep(platform, max_workers=3)
        s_out, s_ids, s_info = serial.run(per_rank_blocks, pairs, percent)
        for step in (vector, parallel):
            out, ids, info = step.run(per_rank_blocks, pairs, percent)
            assert ids == s_ids
            assert info["modelled_per_rank"] == s_info["modelled_per_rank"]
            assert info["nreduced"] == s_info["nreduced"]
            for s_blocks, blocks in zip(s_out, out):
                assert [b.block_id for b in blocks] == [
                    b.block_id for b in s_blocks
                ]
                for s_blk, blk in zip(s_blocks, blocks):
                    assert blk.reduced == s_blk.reduced
                    assert blk.data.dtype == s_blk.data.dtype
                    np.testing.assert_array_equal(blk.data, s_blk.data)

    def test_already_reduced_blocks_left_alone(self, per_rank_blocks, platform):
        from repro.grid.reduction import reduce_block

        pre_reduced = [
            [reduce_block(b) for b in blocks] for blocks in per_rank_blocks
        ]
        pairs = self._pairs(per_rank_blocks)
        for step in (
            ReductionStep(platform),
            VectorizedReductionStep(platform),
            ParallelReductionStep(platform, max_workers=2),
        ):
            out, _, info = step.run(pre_reduced, pairs, 100.0)
            for before, after in zip(pre_reduced, out):
                # Reducing a reduced block is a no-op returning the block.
                assert all(a is b for a, b in zip(after, before))
            # The modelled cost still counts the selected blocks, as serial does.
            assert info["modelled_per_rank"] == [
                platform.reduction_seconds(len(blocks)) for blocks in pre_reduced
            ]

    def test_platform_derived_cost_matches_default(self, per_rank_blocks, platform):
        """The platform's default coefficient reproduces the historical
        hard-coded SECONDS_PER_REDUCED_BLOCK figures exactly."""
        from repro.core.reduction_step import SECONDS_PER_REDUCED_BLOCK

        assert platform.seconds_per_reduced_block == SECONDS_PER_REDUCED_BLOCK
        pairs = self._pairs(per_rank_blocks)
        with_platform = ReductionStep(platform)
        without_platform = ReductionStep()
        _, _, a = with_platform.run(per_rank_blocks, pairs, 50.0)
        _, _, b = without_platform.run(per_rank_blocks, pairs, 50.0)
        assert a["modelled_per_rank"] == b["modelled_per_rank"]

    def test_max_workers_validated(self, platform):
        with pytest.raises(ValueError):
            ParallelReductionStep(platform, max_workers=0)


class TestQualityLadder:
    """The multi-rung quality ladder: validation, selection, step behavior."""

    def test_validate_normalises(self):
        assert validate_quality_ladder([(2, 1.0)]) == ((2, 1.0),)
        assert validate_quality_ladder([[1, 0.5], [2, 0.5]]) == ((1, 0.5), (2, 0.5))

    @pytest.mark.parametrize(
        "bad",
        [
            [],                       # no rungs
            [(0, 1.0)],               # level 0 is not a reduction
            [(3, 1.0)],               # unknown level
            [(2, 0.5), (2, 0.5)],     # repeated level
            [(2, 0.0)],               # zero fraction
            [(1, 0.4), (2, 0.4)],     # fractions don't sum to 1
            [(2, 1.0, 3.0)],          # malformed rung
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_quality_ladder(bad)

    def test_default_ladder_matches_binary_selection(self):
        pairs = [(i, float(i)) for i in range(10)]
        for percent in (0.0, 5.0, 35.0, 50.0, 100.0):
            levels = select_reduction_levels(pairs, percent, DEFAULT_QUALITY_LADDER)
            assert set(levels) == select_blocks_to_reduce(pairs, percent)
            assert all(level == 2 for level in levels.values())

    def test_rungs_applied_over_ascending_prefix(self):
        """The lowest scores take the first rung; the last absorbs remainder."""
        pairs = [(i, float(i)) for i in range(10)]
        levels = select_reduction_levels(pairs, 100.0, ((2, 0.5), (1, 0.5)))
        assert {i for i, l in levels.items() if l == 2} == {0, 1, 2, 3, 4}
        assert {i for i, l in levels.items() if l == 1} == {5, 6, 7, 8, 9}
        # Odd selection count: the last rung takes the rounding remainder.
        levels = select_reduction_levels(pairs, 50.0, ((2, 0.5), (1, 0.5)))
        assert sorted(levels) == [0, 1, 2, 3, 4]
        assert [levels[i] for i in range(5)] == [2, 2, 2, 1, 1]

    def _pairs(self, per_rank_blocks):
        return sorted(
            [
                (b.block_id, float(b.block_id % 5))
                for blocks in per_rank_blocks
                for b in blocks
            ],
            key=lambda p: (p[1], p[0]),
        )

    def test_ladder_backends_bitwise_identical(self, per_rank_blocks, platform):
        ladder = ((2, 0.5), (1, 0.5))
        pairs = self._pairs(per_rank_blocks)
        serial = ReductionStep(platform, quality_ladder=ladder)
        s_out, s_ids, s_info = serial.run(per_rank_blocks, pairs, 60.0)
        for step in (
            VectorizedReductionStep(platform, quality_ladder=ladder),
            ParallelReductionStep(platform, max_workers=3, quality_ladder=ladder),
        ):
            out, ids, info = step.run(per_rank_blocks, pairs, 60.0)
            assert ids == s_ids
            assert info["reduction_levels"] == s_info["reduction_levels"]
            assert info["modelled_per_rank"] == s_info["modelled_per_rank"]
            assert info["points_copied"] == s_info["points_copied"]
            for s_blocks, blocks in zip(s_out, out):
                for s_blk, blk in zip(s_blocks, blocks):
                    assert blk.level == s_blk.level
                    np.testing.assert_array_equal(blk.data, s_blk.data)

    def test_ladder_produces_mixed_levels(self, per_rank_blocks, platform):
        ladder = ((2, 0.5), (1, 0.5))
        pairs = self._pairs(per_rank_blocks)
        step = ReductionStep(platform, quality_ladder=ladder)
        out, reduced_ids, info = step.run(per_rank_blocks, pairs, 100.0)
        by_level = {}
        for blocks in out:
            for blk in blocks:
                by_level.setdefault(blk.level, []).append(blk)
        assert set(by_level) == {1, 2}
        from repro.grid.block import level_shape

        for blk in by_level[1]:
            assert blk.data.shape == level_shape(1, blk.extent.shape)
        # Level-1 blocks copy more points than corner blocks, and the cost
        # model prices that: the mixed ladder costs more than all-corners.
        all_corners = ReductionStep(platform)
        _, _, corner_info = all_corners.run(per_rank_blocks, pairs, 100.0)
        assert info["points_copied"] > corner_info["points_copied"]
        assert max(info["modelled_per_rank"]) > max(corner_info["modelled_per_rank"])

    def test_execute_records_levels_in_context(self, per_rank_blocks, platform):
        from repro.core.step import IterationContext

        pairs = self._pairs(per_rank_blocks)
        context = IterationContext(
            iteration=0,
            percent=50.0,
            nranks=len(per_rank_blocks),
            per_rank_blocks=[list(b) for b in per_rank_blocks],
            sorted_pairs=pairs,
        )
        step = ReductionStep(platform, quality_ladder=((2, 0.5), (1, 0.5)))
        report = step.execute(context)
        assert context.reduction_levels is not None
        assert set(context.reduction_levels) == context.reduced_ids
        assert report.counters["nreduced"] == len(context.reduced_ids)
        assert report.counters["points_copied"] > 0

    def test_invalid_ladder_rejected_at_step_construction(self, platform):
        with pytest.raises(ValueError):
            ReductionStep(platform, quality_ladder=((3, 1.0),))


class TestRedistribution:
    def _pairs(self, per_rank_blocks):
        return sorted(
            [(b.block_id, float(b.block_id % 5)) for blocks in per_rank_blocks for b in blocks],
            key=lambda p: (p[1], p[0]),
        )

    def test_none_strategy_keeps_everything(self, per_rank_blocks, platform):
        comm = BSPCommunicator(4, cost_model=platform.network)
        out, info = NoRedistribution().redistribute(comm, per_rank_blocks, self._pairs(per_rank_blocks), 0)
        assert info["modelled"] == 0.0
        for original, new in zip(per_rank_blocks, out):
            assert [b.block_id for b in original] == [b.block_id for b in new]

    def test_none_strategy_refreshes_owner_metadata(self, per_rank_blocks, platform):
        """NoRedistribution leaves ``block.owner`` equal to the holding rank,
        like the exchanging strategies do (regression: it used to return the
        blocks untouched, so stale owners survived the step)."""
        comm = BSPCommunicator(4, cost_model=platform.network)
        stale = [
            [b.with_owner((rank + 1) % 4) for b in blocks]
            for rank, blocks in enumerate(per_rank_blocks)
        ]
        out, info = NoRedistribution().redistribute(
            comm, stale, self._pairs(per_rank_blocks), 0
        )
        for rank, blocks in enumerate(out):
            assert all(b.owner == rank for b in blocks)
        assert info["modelled"] == 0.0 and info["moved_bytes"] == 0.0
        # No communication happened: the skip really skips the exchange.
        assert comm.stats == {}

    def test_assignment_arrays_form(self):
        pairs = [(i, float(i)) for i in range(8)]
        for strategy in (NoRedistribution(), RandomShuffle(seed=1), RoundRobin()):
            block_ids, dests = strategy.assign_owners(pairs, nranks=4, iteration=0)
            assert block_ids.dtype == np.int64 and dests.dtype == np.int64
            assert block_ids.shape == dests.shape

    def test_round_robin_assignment_order(self):
        pairs = [(i, float(i)) for i in range(8)]  # ascending scores
        owners = owners_dict(RoundRobin().assign_owners(pairs, nranks=4, iteration=0))
        # Highest score (id 7) goes to rank 0, next (id 6) to rank 1, ...
        assert owners[7] == 0 and owners[6] == 1 and owners[5] == 2 and owners[4] == 3
        assert owners[3] == 0

    def test_round_robin_counts_balanced(self):
        pairs = [(i, float(i)) for i in range(16)]
        owners = owners_dict(RoundRobin().assign_owners(pairs, nranks=4, iteration=0))
        counts = np.bincount(list(owners.values()), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_shuffle_same_seed_same_assignment(self):
        pairs = [(i, float(i)) for i in range(20)]
        a = owners_dict(RandomShuffle(seed=5).assign_owners(pairs, 4, iteration=3))
        b = owners_dict(RandomShuffle(seed=5).assign_owners(pairs, 4, iteration=3))
        assert a == b

    def test_shuffle_counts_constant_per_rank(self):
        pairs = [(i, float(i)) for i in range(20)]
        owners = owners_dict(RandomShuffle(seed=1).assign_owners(pairs, 4, iteration=0))
        counts = np.bincount(list(owners.values()), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_shuffle_differs_across_iterations(self):
        pairs = [(i, float(i)) for i in range(40)]
        a = owners_dict(RandomShuffle(seed=5).assign_owners(pairs, 4, iteration=0))
        b = owners_dict(RandomShuffle(seed=5).assign_owners(pairs, 4, iteration=1))
        assert a != b

    def test_redistribute_preserves_blocks(self, per_rank_blocks, platform):
        comm = BSPCommunicator(4, cost_model=platform.network)
        pairs = self._pairs(per_rank_blocks)
        out, info = RoundRobin().redistribute(comm, per_rank_blocks, pairs, 0)
        original_ids = sorted(b.block_id for blocks in per_rank_blocks for b in blocks)
        new_ids = sorted(b.block_id for blocks in out for b in blocks)
        assert new_ids == original_ids
        assert info["modelled"] > 0.0
        assert info["moved_bytes"] > 0
        # Owners updated to the rank actually holding the block.
        for rank, blocks in enumerate(out):
            assert all(b.owner == rank for b in blocks)

    def test_redistribute_block_counts_constant(self, per_rank_blocks, platform):
        comm = BSPCommunicator(4, cost_model=platform.network)
        out, _ = RandomShuffle(seed=2).redistribute(
            comm, per_rank_blocks, self._pairs(per_rank_blocks), 0
        )
        counts = [len(blocks) for blocks in out]
        assert max(counts) - min(counts) <= 1

    def test_make_strategy_factory(self):
        assert isinstance(make_strategy("none"), NoRedistribution)
        assert isinstance(make_strategy("shuffle"), RandomShuffle)
        assert isinstance(make_strategy("round_robin"), RoundRobin)
        assert isinstance(make_strategy("RR"), RoundRobin)
        with pytest.raises(ValueError):
            make_strategy("bogus")

    def test_make_strategy_aliases(self):
        for alias in ("no", "off", "NONE", " none "):
            assert isinstance(make_strategy(alias), NoRedistribution)
        for alias in ("random", "random_shuffle", "Shuffle"):
            assert isinstance(make_strategy(alias), RandomShuffle)
        for alias in ("rr", "roundrobin", "Round_Robin"):
            assert isinstance(make_strategy(alias), RoundRobin)

    def test_make_strategy_unknown_name_message(self):
        with pytest.raises(ValueError, match="unknown redistribution strategy"):
            make_strategy("hilbert")
        with pytest.raises(ValueError, match="'none', 'shuffle' or 'round_robin'"):
            make_strategy("")

    def test_make_strategy_seed_forwarded(self):
        strategy = make_strategy("shuffle", seed=7)
        assert isinstance(strategy, RandomShuffle)
        assert strategy.seed == 7


class TestRenderingStep:
    def test_rendering_counts_and_makespan(self, per_rank_blocks, platform):
        step = RenderingStep(platform, isosurface_level=45.0, render_mode="count")
        results, info = step.run(per_rank_blocks, iteration=0)
        assert len(results) == 4
        assert info["modelled_max"] >= max(info["modelled_per_rank"]) - 1e-12
        assert info["total_triangles"] == sum(info["triangles_per_rank"])

    def test_reduced_workload_is_cheaper(self, per_rank_blocks, platform):
        from repro.grid.reduction import reduce_block

        step = RenderingStep(platform, render_mode="count")
        _, full_info = step.run(per_rank_blocks, iteration=0)
        reduced = [[reduce_block(b) for b in blocks] for blocks in per_rank_blocks]
        _, red_info = step.run(reduced, iteration=0)
        assert red_info["modelled_max"] <= full_info["modelled_max"]
