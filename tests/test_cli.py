"""Smoke tests of the ``python -m repro`` scenario CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.io.store import DatasetStore
from repro.scenarios import scenario_names


def run_cli(capsys, *argv):
    """Run the CLI in-process and return (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_names_all_scenarios(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for name in scenario_names():
            assert name in out

    def test_catalogue_is_large_enough(self, capsys):
        _, out, _ = run_cli(capsys, "list")
        listed = [line.split()[0] for line in out.strip().splitlines()]
        assert len(listed) >= 7

    def test_json_output(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--json")
        assert code == 0
        catalogue = json.loads(out)
        assert {entry["name"] for entry in catalogue} == set(scenario_names())
        for entry in catalogue:
            assert {"name", "description", "tags", "default_ranks"} <= set(entry)

    def test_tag_filter(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tag", "storm-family", "--json")
        assert code == 0
        names = {entry["name"] for entry in json.loads(out)}
        assert "squall_line" in names
        assert "blue_waters_64" not in names

    def test_json_reports_parity_verified_backends(self, capsys):
        """Every entry advertises the backends the parity sweep verifies —
        the same registry ``repro run --backend`` resolves against."""
        _, out, _ = run_cli(capsys, "list", "--json")
        for entry in json.loads(out):
            assert entry["parity_backends"] == [
                "serial", "vectorized", "parallel", "process",
            ]


class TestRun:
    def test_tiny_writes_parseable_summary(self, capsys, tmp_path):
        output = tmp_path / "out" / "tiny.json"
        code, _, _ = run_cli(
            capsys, "run", "tiny", "--snapshots", "1", "--output", str(output)
        )
        assert code == 0
        summary = json.loads(output.read_text())
        assert summary["scenario"]["name"] == "tiny"
        assert summary["run"]["iterations"] == 1
        assert set(summary["steps"]) == {
            "scoring", "sorting", "reduction", "redistribution", "rendering",
        }
        assert len(summary["iterations"]) == 1
        assert summary["iterations"][0]["nblocks"] > 0

    def test_summary_to_stdout_by_default(self, capsys):
        code, out, _ = run_cli(capsys, "run", "tiny", "--snapshots", "1")
        assert code == 0
        assert json.loads(out)["scenario"]["name"] == "tiny"

    def test_percent_and_backend_flags(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "run", "tiny", "--snapshots", "1", "--percent", "50",
            "--backend", "serial", "--redistribution", "round_robin",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["config"]["engine"] == "serial"
        assert summary["iterations"][0]["percent_reduced"] == 50.0
        assert summary["iterations"][0]["nreduced"] > 0

    def test_target_enables_adaptation(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "tiny", "--snapshots", "2", "--target", "20",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["config"]["adaptation_enabled"] is True
        assert summary["config"]["target_seconds"] == 20.0

    def test_save_dataset_writes_manifest(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code, out, err = run_cli(
            capsys,
            "run", "tiny", "--snapshots", "2",
            "--save-dataset", str(store_dir),
        )
        assert code == 0
        # Status lines go to stderr: stdout stays pure, parseable JSON.
        assert json.loads(out)["scenario"]["name"] == "tiny"
        assert "saved dataset" in err
        store = DatasetStore(store_dir)
        assert store.exists()
        assert len(store.iterations()) == 2
        assert store.manifest().metadata["scenario"] == "tiny"

    def test_unknown_scenario_fails_and_names_available(self, capsys):
        code, _, err = run_cli(capsys, "run", "not_a_scenario")
        assert code != 0
        for name in ("blue_waters_64", "tiny", "squall_line"):
            assert name in err

    def test_backend_flag_is_case_insensitive(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "tiny", "--snapshots", "1", "--backend", "SERIAL"
        )
        assert code == 0
        assert json.loads(out)["config"]["engine"] == "serial"

    def test_unknown_metric_and_backend_fail(self, capsys):
        code, _, err = run_cli(capsys, "run", "tiny", "--metric", "NOPE")
        assert code != 0 and "VAR" in err
        code, _, err = run_cli(capsys, "run", "tiny", "--backend", "quantum")
        assert code != 0 and "vectorized" in err

    def test_unknown_backend_error_offers_process(self, capsys):
        code, _, err = run_cli(capsys, "run", "tiny", "--backend", "bogus")
        assert code != 0
        assert "process" in err  # the new backend is advertised

    def test_process_backend_end_to_end(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "tiny", "--snapshots", "1", "--backend", "process"
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["config"]["engine"] == "process"
        assert summary["iterations"][0]["nblocks"] > 0


class TestSweep:
    def test_sweep_json_to_stdout(self, capsys):
        """``--json`` prints the machine-readable record, mirroring ``run``."""
        code, out, _ = run_cli(
            capsys, "sweep", "tiny", "--ranks", "4", "16", "--serial", "--json"
        )
        assert code == 0
        sweep = json.loads(out)
        assert sweep["scenario"] == "tiny"
        assert sweep["mode"] == "weak"
        assert [p["ncores"] for p in sweep["points"]] == [4, 16]
        for point in sweep["points"]:
            assert set(point["modelled_steps"]) == {
                "scoring", "sorting", "reduction", "redistribution", "rendering",
            }

    def test_sweep_human_readable_by_default(self, capsys):
        """Without ``--json`` the output is a table, not a JSON document."""
        code, out, _ = run_cli(
            capsys, "sweep", "tiny", "--ranks", "4", "16", "--serial"
        )
        assert code == 0
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
        lines = out.strip().splitlines()
        assert "weak-scaling sweep" in lines[0]
        assert "ranks" in lines[1] and "dominant step" in lines[1]
        assert len(lines) == 2 + 2  # header rows + one line per rank count

    def test_sweep_writes_output_file(self, capsys, tmp_path):
        output = tmp_path / "sweep" / "tiny.json"
        code, out, err = run_cli(
            capsys,
            "sweep", "tiny", "--ranks", "4", "--serial",
            "--output", str(output),
        )
        assert code == 0
        assert "wrote" in err
        assert json.loads(output.read_text())["ranks"] == [4]
        assert out == ""  # --output alone keeps stdout empty

    def test_sweep_json_and_output_combine(self, capsys, tmp_path):
        """``--json --output`` writes the file AND prints the same record."""
        output = tmp_path / "tiny.json"
        code, out, _ = run_cli(
            capsys,
            "sweep", "tiny", "--ranks", "4", "--serial",
            "--json", "--output", str(output),
        )
        assert code == 0
        assert json.loads(out) == json.loads(output.read_text())

    def test_sweep_strong_mode_flag(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "tiny", "--ranks", "4", "--mode", "strong", "--serial",
            "--json",
        )
        assert code == 0
        assert json.loads(out)["mode"] == "strong"

    def test_sweep_unknown_scenario_exits_2_and_names_available(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "not_a_scenario", "--ranks", "4")
        assert code == 2
        for name in ("tiny", "blue_waters_64"):
            assert name in err  # available scenarios are listed

    def test_sweep_infeasible_ranks_fail_cleanly(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "tiny", "--ranks", "4", "1024", "--mode", "strong",
            "--serial",
        )
        assert code != 0
        assert "1024" in err


class TestModuleEntryPoint:
    """The satellite contract: ``python -m repro`` works as a subprocess."""

    @pytest.fixture(scope="class")
    def env(self):
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def test_list_subprocess(self, env):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        for name in scenario_names():
            assert name in proc.stdout

    def test_run_subprocess(self, env, tmp_path):
        output = tmp_path / "run.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "tiny",
             "--snapshots", "1", "--output", str(output)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(output.read_text())["scenario"]["name"] == "tiny"

    def test_unknown_scenario_subprocess_exit_code(self, env):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "no_such_workload"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode != 0
        assert "tiny" in proc.stderr
