"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cm1.config import CM1Config
from repro.cm1.simulation import CM1Simulation
from repro.experiments.common import ExperimentScenario, ScenarioConfig


@pytest.fixture(scope="session")
def tiny_simulation() -> CM1Simulation:
    """A very small synthetic CM1 simulation shared across tests."""
    return CM1Simulation(CM1Config.tiny())


@pytest.fixture(scope="session")
def tiny_domain(tiny_simulation):
    """The first snapshot of the tiny simulation."""
    return tiny_simulation.snapshot(0)


@pytest.fixture(scope="session")
def tiny_field(tiny_domain) -> np.ndarray:
    """The reflectivity field of the tiny snapshot."""
    return np.asarray(tiny_domain.get_field("dbz"), dtype=np.float64)


@pytest.fixture(scope="session")
def tiny_scenario() -> ExperimentScenario:
    """A 4-rank experiment scenario shared across integration tests."""
    return ExperimentScenario.tiny(nranks=4, nsnapshots=3)


@pytest.fixture(scope="session")
def small_scenario_16() -> ExperimentScenario:
    """A 16-rank scenario with a non-trivial block layout."""
    return ExperimentScenario(
        ScenarioConfig(
            ncores=16,
            shape=(88, 88, 24),
            blocks_per_subdomain=(2, 2, 2),
            nsnapshots=3,
        )
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test random data."""
    return np.random.default_rng(12345)


@pytest.fixture()
def smooth_block(rng) -> np.ndarray:
    """A smooth (highly compressible, low-information) block."""
    x = np.linspace(0.0, 1.0, 12)
    xx, yy, zz = np.meshgrid(x, x, x[:8], indexing="ij")
    return (xx + 2.0 * yy - zz).astype(np.float32)


@pytest.fixture()
def turbulent_block(rng) -> np.ndarray:
    """A turbulent (information-rich) block in the dBZ value range."""
    return (rng.uniform(-60.0, 80.0, size=(12, 12, 8))).astype(np.float32)


@pytest.fixture()
def constant_block() -> np.ndarray:
    """A constant block (zero information)."""
    return np.full((10, 10, 6), -60.0, dtype=np.float32)
