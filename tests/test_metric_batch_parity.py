"""Vectorized-vs-scalar parity: every metric must score identically via
``score_block``, ``score_blocks``, and ``score_batch`` on the same blocks.

This is the invariant the execution engines rely on: the reduction and
redistribution decisions are driven by score *order*, so even a one-ulp
difference between the scalar and the batched path could flip a decision and
make the backends diverge.  The vectorised implementations are written to
share the exact arithmetic of their scalar counterparts; these tests pin that
down with strict (bitwise) equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.registry import default_registry
from repro.utils.histogram import fixed_range_histogram, fixed_range_histogram_batch

#: Metrics expected to provide a true vectorised score_batch (every built-in
#: metric except LOCAL_ENTROPY, including the coder-based scorers whose
#: batched paths compute encoded sizes for the whole stack in one pass).
VECTORIZED = {"RANGE", "VAR", "STD", "ITL", "TRILIN", "LEA", "FPZIP", "ZFP", "LZ"}


def random_blocks(dtype, shape=(7, 6, 5), nblocks=12, seed=99):
    rng = np.random.default_rng(seed)
    return [
        rng.uniform(-60.0, 80.0, size=shape).astype(dtype) for _ in range(nblocks)
    ]


@pytest.mark.parametrize("name", default_registry().names())
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestScorePathParity:
    def test_three_paths_identical(self, name, dtype):
        metric = default_registry().create(name)
        blocks = random_blocks(dtype)
        batch = np.stack(blocks)
        scalar = [metric.score_block(b) for b in blocks]
        listed = metric.score_blocks(blocks)
        batched = metric.score_batch(batch)
        assert listed == scalar
        assert np.asarray(batched, dtype=np.float64).tolist() == scalar

    def test_non_contiguous_blocks_identical(self, name, dtype):
        # Blocks carved out of a larger field are views; the batched path
        # stacks them into contiguous rows.  Scores must still match exactly.
        metric = default_registry().create(name)
        rng = np.random.default_rng(5)
        field = rng.uniform(-60.0, 80.0, size=(16, 14, 12)).astype(dtype)
        views = [
            field[i : i + 6, j : j + 5, k : k + 4]
            for i, j, k in [(0, 0, 0), (5, 4, 3), (10, 9, 8), (3, 7, 1)]
        ]
        scalar = [metric.score_block(v) for v in views]
        batched = metric.score_batch(np.stack(views))
        assert np.asarray(batched, dtype=np.float64).tolist() == scalar


class TestSupportsBatchFlags:
    def test_vectorized_metrics_flagged(self):
        registry = default_registry()
        for name in registry.names():
            metric = registry.create(name)
            assert metric.supports_batch == (name in VECTORIZED)

    def test_batch_rejects_wrong_ndim(self):
        metric = default_registry().create("VAR")
        with pytest.raises(ValueError):
            metric.score_batch(np.zeros((4, 4, 4)))


class TestCustomMetricOverrides:
    def test_score_blocks_override_reaches_score_batch(self):
        """A user metric overriding only score_blocks must behave identically
        under the vectorized engine (whose fallback goes through score_blocks)."""
        from repro.metrics.base import ScoreMetric

        class RankNormalized(ScoreMetric):
            name = "RANKNORM"

            def score_block(self, data):
                return float(np.ptp(np.asarray(data)))

            def score_blocks(self, blocks):
                raw = [self.score_block(b) for b in blocks]
                peak = max(raw) or 1.0
                return [r / peak for r in raw]  # cross-block normalisation

        metric = RankNormalized()
        blocks = random_blocks(np.float64, nblocks=5)
        listed = metric.score_blocks(blocks)
        batched = metric.score_batch(np.stack(blocks))
        assert np.asarray(batched).tolist() == listed
        assert max(listed) == 1.0  # the override actually ran

    def test_array_like_batch_accepted(self):
        # _prepare_batch accepts anything np.asarray can make 4-D, including
        # nested lists; the vectorised implementations must not assume .shape.
        for name in sorted(VECTORIZED):
            metric = default_registry().create(name)
            blocks = random_blocks(np.float64, shape=(3, 3, 2), nblocks=2)
            nested = [b.tolist() for b in blocks]
            expected = [metric.score_block(b) for b in blocks]
            assert np.asarray(metric.score_batch(nested)).tolist() == expected


class TestFloat16Parity:
    def test_coder_metrics_score_float16_identically(self):
        """The compressors promote float16 to float64 before encoding; the
        batched path must divide by the same promoted size as the scalar
        path (regression: it used to divide by the un-promoted nbytes)."""
        for name in ("FPZIP", "ZFP", "LZ", "LEA"):
            metric = default_registry().create(name)
            blocks = random_blocks(np.float16, nblocks=4)
            scalar = [metric.score_block(b) for b in blocks]
            batched = metric.score_batch(np.stack(blocks))
            assert np.asarray(batched, dtype=np.float64).tolist() == scalar, name


class TestNanHandling:
    def test_histogram_drops_nan(self):
        values = np.array([1.0, np.nan, 5.0])
        counts = fixed_range_histogram(values, 4, (0.0, 8.0))
        assert counts.tolist() == [1, 0, 1, 0]
        counts = fixed_range_histogram(values, 4, (0.0, 8.0), clip=False)
        assert counts.sum() == 2

    def test_histogram_batch_drops_nan(self):
        values = np.array([[1.0, np.nan, 5.0], [np.nan, np.nan, np.nan]])
        for clip in (True, False):
            batch = fixed_range_histogram_batch(values, 4, (0.0, 8.0), clip=clip)
            for row, counts in zip(values, batch):
                expected = fixed_range_histogram(row, 4, (0.0, 8.0), clip=clip)
                np.testing.assert_array_equal(counts, expected)
        assert fixed_range_histogram_batch(values, 4, (0.0, 8.0))[1].sum() == 0

    def test_itl_scores_nan_blocks_identically(self):
        metric = default_registry().create("ITL")
        blocks = random_blocks(np.float64, nblocks=3)
        blocks[1][0, 0, 0] = np.nan
        scalar = [metric.score_block(b) for b in blocks]
        batched = metric.score_batch(np.stack(blocks))
        assert np.asarray(batched).tolist() == scalar
        assert all(np.isfinite(scalar))


class TestHistogramBatchParity:
    @pytest.mark.parametrize("clip", [True, False])
    def test_batch_rows_match_scalar(self, clip):
        rng = np.random.default_rng(3)
        values = rng.uniform(-100.0, 120.0, size=(9, 240))
        batch = fixed_range_histogram_batch(values, 64, (-60.0, 80.0), clip=clip)
        for row, counts in zip(values, batch):
            expected = fixed_range_histogram(row, 64, (-60.0, 80.0), clip=clip)
            np.testing.assert_array_equal(counts, expected)

    def test_empty_batch(self):
        counts = fixed_range_histogram_batch(np.zeros((0, 10)), 8, (0.0, 1.0))
        assert counts.shape == (0, 8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fixed_range_histogram_batch(np.zeros((2, 3)), 0, (0.0, 1.0))
        with pytest.raises(ValueError):
            fixed_range_histogram_batch(np.zeros((2, 3)), 4, (1.0, 1.0))
        with pytest.raises(ValueError):
            fixed_range_histogram_batch(np.zeros(3), 4, (0.0, 1.0))
