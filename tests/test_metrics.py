"""Tests for the block-scoring metrics, registry, scoremaps and comparisons."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.decomposition import CartesianDecomposition
from repro.metrics.base import MetricCost
from repro.metrics.bytewise import BytewiseEntropyMetric, bytewise_entropies
from repro.metrics.comparison import (
    compare_metrics,
    rank_blocks,
    score_blocks_with_metrics,
    spearman_rank_correlation,
)
from repro.metrics.compression import CompressionRatioMetric
from repro.metrics.entropy import HistogramEntropyMetric, LocalEntropyMetric
from repro.metrics.interpolation import TrilinearErrorMetric
from repro.metrics.multifield import MultiFieldScorer
from repro.metrics.registry import PAPER_METRICS, MetricRegistry, create_metric, default_registry
from repro.metrics.scoremap import compute_scoremap
from repro.metrics.statistics import RangeMetric, StdDevMetric, VarianceMetric


class TestMetricCost:
    def test_seconds_linear(self):
        cost = MetricCost(per_point=1e-6, per_block=1e-3)
        assert cost.seconds(1000) == pytest.approx(2e-3)

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            MetricCost(per_point=1e-6).seconds(-1)


class TestBasicMetrics:
    def test_range_metric(self):
        data = np.zeros((4, 4, 4))
        data[0, 0, 0] = -10.0
        data[3, 3, 3] = 30.0
        assert RangeMetric().score_block(data) == pytest.approx(40.0)

    def test_variance_metric_constant_zero(self, constant_block):
        assert VarianceMetric().score_block(constant_block) == pytest.approx(0.0)

    def test_variance_higher_for_turbulent(self, smooth_block, turbulent_block):
        metric = VarianceMetric()
        assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_std_is_sqrt_var(self, turbulent_block):
        var = VarianceMetric().score_block(turbulent_block)
        std = StdDevMetric().score_block(turbulent_block)
        assert std == pytest.approx(np.sqrt(var), rel=1e-6)

    def test_histogram_entropy_constant_zero(self, constant_block):
        assert HistogramEntropyMetric().score_block(constant_block) == pytest.approx(0.0)

    def test_histogram_entropy_uniform_high(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(-60, 80, size=(16, 16, 8))
        score = HistogramEntropyMetric(bins=256).score_block(data)
        assert score > 7.0  # close to log2(256) = 8 bits

    def test_histogram_entropy_bins_matter(self, turbulent_block):
        few = HistogramEntropyMetric(bins=32).score_block(turbulent_block)
        many = HistogramEntropyMetric(bins=1024).score_block(turbulent_block)
        assert many >= few

    def test_histogram_entropy_validation(self):
        with pytest.raises(ValueError):
            HistogramEntropyMetric(bins=1)
        with pytest.raises(ValueError):
            HistogramEntropyMetric(value_range=(5.0, 5.0))

    def test_local_entropy_runs_and_orders(self, smooth_block, turbulent_block):
        metric = LocalEntropyMetric(bins=16, stride=3)
        assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_lea_constant_zero(self, constant_block):
        assert BytewiseEntropyMetric().score_block(constant_block) == pytest.approx(0.0)

    def test_lea_orders_blocks(self, smooth_block, turbulent_block):
        metric = BytewiseEntropyMetric()
        assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_bytewise_entropies_shape(self, turbulent_block):
        ent = bytewise_entropies(turbulent_block)
        assert ent.shape == (4,)  # float32 -> 4 byte positions
        assert np.all(ent >= 0) and np.all(ent <= 8.0 + 1e-9)

    def test_bytewise_entropies_float64(self):
        data = np.random.default_rng(0).normal(size=(4, 4, 4))
        assert bytewise_entropies(data).shape == (8,)

    def test_trilinear_zero_for_linear_field(self):
        x = np.linspace(0, 1, 6)
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        assert TrilinearErrorMetric().score_block(xx + yy - zz) == pytest.approx(0.0, abs=1e-18)

    def test_trilinear_orders_blocks(self, smooth_block, turbulent_block):
        metric = TrilinearErrorMetric()
        assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_metrics_reject_non_3d(self):
        with pytest.raises(ValueError):
            VarianceMetric().score_block(np.zeros((4, 4)))

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=10_000), scale=st.floats(min_value=0.1, max_value=100))
    def test_all_scores_non_negative_property(self, seed, scale):
        """Every paper metric returns a finite, non-negative score."""
        data = (np.random.default_rng(seed).normal(size=(6, 6, 4)) * scale).astype(np.float32)
        for name in ("RANGE", "VAR", "ITL", "LEA", "TRILIN"):
            score = create_metric(name).score_block(data)
            assert np.isfinite(score) and score >= 0.0


class TestCompressionMetric:
    def test_fpzip_orders_blocks(self, smooth_block, turbulent_block):
        metric = CompressionRatioMetric.fpzip()
        assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_score_is_inverse_ratio_in_unit_range(self, turbulent_block):
        metric = CompressionRatioMetric.fpzip()
        score = metric.score_block(turbulent_block)
        assert 0.0 < score <= 1.5

    def test_zfp_and_lz_variants(self, smooth_block, turbulent_block):
        for metric in (CompressionRatioMetric.zfp(), CompressionRatioMetric.lz()):
            assert metric.score_block(turbulent_block) > metric.score_block(smooth_block)

    def test_subsample(self, turbulent_block):
        metric = CompressionRatioMetric.fpzip(subsample=2)
        assert metric.score_block(turbulent_block) > 0

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            CompressionRatioMetric(subsample=0)


class TestRegistry:
    def test_paper_metrics_all_available(self):
        registry = default_registry()
        for name in PAPER_METRICS:
            assert name in registry
            assert registry.create(name).name == name

    def test_case_insensitive(self):
        assert create_metric("var").name == "VAR"

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            create_metric("NOPE")

    def test_register_custom_and_overwrite(self):
        registry = MetricRegistry()
        registry.register("CUSTOM", RangeMetric)
        assert registry.create("CUSTOM").name == "RANGE"
        with pytest.raises(ValueError):
            registry.register("CUSTOM", VarianceMetric)
        registry.register("CUSTOM", VarianceMetric, overwrite=True)
        assert isinstance(registry.create("CUSTOM"), VarianceMetric)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().register("  ", RangeMetric)

    def test_create_many(self):
        metrics = default_registry().create_many(["VAR", "LEA"])
        assert [m.name for m in metrics] == ["VAR", "LEA"]


class TestMultiField:
    def test_combined_scores(self, smooth_block, turbulent_block):
        scorer = MultiFieldScorer({"dbz": VarianceMetric(), "w": RangeMetric()})
        scores = scorer.score_blocks(
            {"dbz": [smooth_block, turbulent_block], "w": [smooth_block, turbulent_block]}
        )
        assert len(scores) == 2
        assert scores[1] > scores[0]

    def test_max_mode(self, smooth_block, turbulent_block):
        scorer = MultiFieldScorer({"dbz": VarianceMetric()}, mode="max")
        scores = scorer.score_blocks({"dbz": [smooth_block, turbulent_block]})
        assert scores[1] == pytest.approx(1.0)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            MultiFieldScorer({"dbz": VarianceMetric()}, weights={"other": 1.0})

    def test_missing_field_data(self):
        scorer = MultiFieldScorer({"dbz": VarianceMetric(), "w": RangeMetric()})
        with pytest.raises(ValueError):
            scorer.score_blocks({"dbz": [np.zeros((2, 2, 2))]})

    def test_inconsistent_lengths(self):
        scorer = MultiFieldScorer({"a": VarianceMetric(), "b": RangeMetric()})
        with pytest.raises(ValueError):
            scorer.score_blocks({"a": [np.zeros((2, 2, 2))], "b": []})

    def test_empty_input(self):
        scorer = MultiFieldScorer({"a": VarianceMetric()})
        assert scorer.score_blocks({"a": []}) == []


class TestComparisonAndScoremap:
    def test_rank_blocks_tie_break_by_id(self):
        ranks = rank_blocks({3: 1.0, 1: 1.0, 2: 0.5})
        assert ranks[2] == 0 and ranks[1] == 1 and ranks[3] == 2

    def test_spearman_perfect_and_inverse(self):
        assert spearman_rank_correlation([0, 1, 2, 3], [0, 1, 2, 3]) == pytest.approx(1.0)
        assert spearman_rank_correlation([0, 1, 2, 3], [3, 2, 1, 0]) == pytest.approx(-1.0)

    def test_spearman_validation(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_compare_metrics_pairs_count(self, tiny_field):
        decomp = CartesianDecomposition(tiny_field.shape, nranks=4, blocks_per_subdomain=(2, 2, 1))
        blocks = [b for r in range(4) for b in decomp.extract_blocks(r, tiny_field)]
        metrics = [VarianceMetric(), RangeMetric(), BytewiseEntropyMetric()]
        scores = score_blocks_with_metrics(metrics, blocks)
        comparisons = compare_metrics(scores)
        assert len(comparisons) == 3  # C(3, 2)
        for comp in comparisons:
            assert comp.nblocks == len(blocks)
            assert -1.0 <= comp.spearman <= 1.0
            assert 0.0 <= comp.agreement_fraction(0.2) <= 1.0

    def test_compare_metrics_requires_same_blocks(self):
        with pytest.raises(ValueError):
            compare_metrics({"A": {0: 1.0}, "B": {1: 1.0}})

    def test_compare_metrics_requires_two(self):
        with pytest.raises(ValueError):
            compare_metrics({"A": {0: 1.0}})

    def test_scoremap_highlights_storm(self, tiny_field):
        decomp = CartesianDecomposition(tiny_field.shape, nranks=4, blocks_per_subdomain=(2, 2, 1))
        smap = compute_scoremap(VarianceMetric(), decomp, tiny_field)
        assert smap.image.shape == tiny_field.shape[:2]
        assert len(smap.block_scores) == decomp.nblocks
        norm = smap.normalised()
        assert norm.min() == 0.0 and norm.max() == pytest.approx(1.0)
        # Scores are higher, on average, over the storm's footprint than over
        # the quiet background (the variance is concentrated at the storm).
        storm_cols = tiny_field.max(axis=2) > 0.0
        assert storm_cols.any() and (~storm_cols).any()
        assert norm[storm_cols].mean() > norm[~storm_cols].mean()

    def test_scoremap_shape_mismatch(self, tiny_field):
        decomp = CartesianDecomposition((10, 10, 10), nranks=1)
        with pytest.raises(ValueError):
            compute_scoremap(VarianceMetric(), decomp, tiny_field)

    def test_scoremap_high_score_fraction(self, tiny_field):
        decomp = CartesianDecomposition(tiny_field.shape, nranks=2, blocks_per_subdomain=(2, 2, 1))
        smap = compute_scoremap(RangeMetric(), decomp, tiny_field)
        frac = smap.high_score_fraction(0.8)
        assert 0.0 <= frac <= 1.0
