"""Tests for the platform performance model and its calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.registry import PAPER_METRICS, create_metric
from repro.perfmodel.calibration import (
    PAPER_BASELINES,
    TABLE1_SECONDS,
    calibrate_render_model,
    metric_cost_from_table1,
    paper_points_per_core,
)
from repro.perfmodel.platform import PlatformModel
from repro.perfmodel.render_model import RenderCostModel


class TestRenderCostModel:
    def test_rank_seconds_monotone_in_triangles(self):
        model = RenderCostModel()
        assert model.rank_seconds(10_000, 0, 0) > model.rank_seconds(100, 0, 0)

    def test_rank_seconds_includes_overhead(self):
        model = RenderCostModel(per_rank_overhead=0.9)
        assert model.rank_seconds(0, 0, 0) == pytest.approx(0.9)

    def test_block_seconds_excludes_rank_overhead(self):
        model = RenderCostModel(per_rank_overhead=5.0)
        assert model.block_seconds(0, 0) < 5.0

    def test_makespan_is_max(self):
        model = RenderCostModel()
        work = [
            {"triangles": 100, "points": 10, "blocks": 1},
            {"triangles": 10_000, "points": 10, "blocks": 1},
        ]
        assert model.makespan(work) == pytest.approx(
            model.rank_seconds(10_000, 10, 1)
        )

    def test_makespan_empty_rejected(self):
        with pytest.raises(ValueError):
            RenderCostModel().makespan([])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RenderCostModel().rank_seconds(-1, 0, 0)

    def test_invalid_coefficients(self):
        with pytest.raises(ValueError):
            RenderCostModel(per_triangle=0.0)

    def test_scaled(self):
        model = RenderCostModel()
        double = model.scaled(2.0)
        assert double.per_triangle == pytest.approx(2 * model.per_triangle)
        assert double.per_rank_overhead == model.per_rank_overhead


class TestCalibration:
    def test_table1_coefficients_consistent_across_scales(self):
        """The 64- and 400-core columns of Table I imply the same per-point cost."""
        for name in PAPER_METRICS:
            c64 = metric_cost_from_table1(name, 64).per_point
            c400 = metric_cost_from_table1(name, 400).per_point
            assert c64 == pytest.approx(c400, rel=0.15)

    def test_table1_ordering_var_cheapest_trilin_most_expensive(self):
        costs = {name: metric_cost_from_table1(name, 64).per_point for name in PAPER_METRICS}
        assert costs["VAR"] < costs["LEA"] < costs["RANGE"]
        assert costs["TRILIN"] >= max(costs[n] for n in PAPER_METRICS if n != "TRILIN")

    def test_class_level_costs_match_table1(self):
        """The hard-coded metric costs agree with the Table I derivation."""
        for name in PAPER_METRICS:
            derived = metric_cost_from_table1(name, 64).per_point
            hardcoded = create_metric(name).cost.per_point
            assert hardcoded == pytest.approx(derived, rel=0.15)

    def test_unknown_metric_or_cores(self):
        with pytest.raises(KeyError):
            metric_cost_from_table1("NOPE")
        with pytest.raises(KeyError):
            metric_cost_from_table1("VAR", 128)

    def test_paper_points_per_core(self):
        assert paper_points_per_core(64) == pytest.approx(16_000 * 55 * 55 * 38 / 64)
        with pytest.raises(ValueError):
            paper_points_per_core(0)

    def test_calibrate_render_model_hits_target(self):
        model = calibrate_render_model(5000, 100_000, 8, target_seconds=160.0)
        assert model.rank_seconds(5000, 100_000, 8) == pytest.approx(160.0)

    def test_calibrate_requires_feasible_target(self):
        with pytest.raises(ValueError):
            calibrate_render_model(100, 0, 0, target_seconds=0.1)
        with pytest.raises(ValueError):
            calibrate_render_model(0, 0, 0, target_seconds=10.0)

    def test_paper_baselines_present(self):
        assert PAPER_BASELINES["render_none"][64] == 160.0
        assert PAPER_BASELINES["render_none"][400] == 50.0
        assert PAPER_BASELINES["redistribution_speedup"][400] == 5.0


class TestPlatformModel:
    def test_blue_waters_has_table1_costs(self):
        platform = PlatformModel.blue_waters(64)
        assert set(TABLE1_SECONDS) <= set(platform.metric_costs)
        assert platform.ncores == 64

    def test_scoring_seconds_uses_override(self):
        platform = PlatformModel.blue_waters(64)
        metric = create_metric("VAR")
        points = int(paper_points_per_core(64))
        seconds = platform.scoring_seconds(metric, points, 250)
        assert seconds == pytest.approx(TABLE1_SECONDS["VAR"][64], rel=0.05)

    def test_scoring_seconds_falls_back_to_metric_cost(self):
        platform = PlatformModel(name="bare", ncores=4)
        metric = create_metric("VAR")
        assert platform.scoring_seconds(metric, 1000, 1) == pytest.approx(
            metric.cost.per_point * 1000
        )

    def test_with_render_replaces_model(self):
        platform = PlatformModel.blue_waters(64)
        new_render = RenderCostModel(per_triangle=1.0)
        updated = platform.with_render(new_render)
        assert updated.render.per_triangle == 1.0
        assert updated.metric_costs == platform.metric_costs

    def test_slow_cluster_network_slower(self):
        slow = PlatformModel.slow_cluster(64)
        fast = PlatformModel.blue_waters(64)
        assert slow.network.p2p(1 << 20) > fast.network.p2p(1 << 20)

    def test_invalid_ncores(self):
        with pytest.raises(ValueError):
            PlatformModel(name="x", ncores=0)

    def test_negative_work_rejected(self):
        platform = PlatformModel.blue_waters(64)
        with pytest.raises(ValueError):
            platform.scoring_seconds(create_metric("VAR"), -1, 0)
