"""Tests for the synthetic CM1 model (storm, microphysics, reflectivity, winds)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cm1.config import CM1Config, StormConfig
from repro.cm1.dynamics import WindField
from repro.cm1.microphysics import Microphysics, correlated_noise
from repro.cm1.reflectivity import DBZ_MAX, DBZ_MIN, equivalent_reflectivity, reflectivity_dbz
from repro.cm1.simulation import CM1Simulation
from repro.cm1.state import ModelState
from repro.cm1.storm import SupercellStorm


class TestConfigs:
    def test_tiny_config_valid(self):
        cfg = CM1Config.tiny()
        assert cfg.shape == (44, 44, 12)
        assert "dbz" in cfg.fields

    def test_dbz_always_in_fields(self):
        cfg = CM1Config(shape=(8, 8, 8), fields=("qr",))
        assert "dbz" in cfg.fields and "qr" in cfg.fields

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            CM1Config(shape=(2, 8, 8))

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            CM1Config(shape=(8, 8, 8), iteration_stride=0)

    def test_storm_config_validation(self):
        with pytest.raises(ValueError):
            StormConfig(initial_radius=-0.1)
        with pytest.raises(ValueError):
            StormConfig(core_height=1.5)
        with pytest.raises(ValueError):
            StormConfig(radius_growth_per_iteration=-0.1)

    def test_paper_scale_shape(self):
        assert CM1Config.paper_scale().shape == (2200, 2200, 380)


class TestStorm:
    def setup_method(self):
        self.storm = SupercellStorm(StormConfig())
        n = 32
        x = np.linspace(0, 1, n)
        self.mesh = np.meshgrid(x, x, np.linspace(0, 1, 8), indexing="ij")

    def test_geometry_grows_and_moves(self):
        g0 = self.storm.geometry(0)
        g20 = self.storm.geometry(20)
        assert g20.radius >= g0.radius
        assert g20.center != g0.center
        assert 0.0 < g0.intensity <= 1.0

    def test_geometry_radius_saturates(self):
        g = self.storm.geometry(10_000)
        assert g.radius == pytest.approx(self.storm.config.max_radius)

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            self.storm.geometry(-1)

    def test_envelopes_in_unit_range(self):
        env = self.storm.envelopes(*self.mesh, iteration=5)
        for name in ("core", "hook", "weak_echo", "anvil", "updraft"):
            assert env[name].min() >= 0.0
            assert env[name].max() <= 1.5  # intensity-scaled envelopes stay bounded

    def test_core_peaks_near_center(self):
        env = self.storm.envelopes(*self.mesh, iteration=5)
        geo = self.storm.geometry(5)
        idx = np.unravel_index(np.argmax(env["core"]), env["core"].shape)
        xn = self.mesh[0][idx]
        yn = self.mesh[1][idx]
        assert abs(xn - geo.center[0]) < 0.15
        assert abs(yn - geo.center[1]) < 0.15

    def test_interest_mask_is_localized(self):
        mask = self.storm.interest_mask(*self.mesh, iteration=5)
        fraction = mask.mean()
        assert 0.0 < fraction < 0.5


class TestMicrophysics:
    def test_mixing_ratios_nonnegative_and_localized(self):
        storm = SupercellStorm(StormConfig())
        micro = Microphysics(storm, seed=1)
        n = 24
        x = np.linspace(0, 1, n)
        mesh = np.meshgrid(x, x, np.linspace(0, 1, 8), indexing="ij")
        ratios = micro.mixing_ratios(*mesh, iteration=3)
        for name in ("qr", "qs", "qg"):
            q = ratios[name]
            assert q.min() >= 0.0
            assert q.max() > 0.0
            # Most of the domain is quiet.
            assert (q > 0.1 * q.max()).mean() < 0.5

    def test_deterministic_given_seed(self):
        storm = SupercellStorm(StormConfig())
        n = 16
        x = np.linspace(0, 1, n)
        mesh = np.meshgrid(x, x, x[:6], indexing="ij")
        a = Microphysics(storm, seed=7).mixing_ratios(*mesh, iteration=2)
        b = Microphysics(storm, seed=7).mixing_ratios(*mesh, iteration=2)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_different_seed_differs(self):
        storm = SupercellStorm(StormConfig())
        n = 16
        x = np.linspace(0, 1, n)
        mesh = np.meshgrid(x, x, x[:6], indexing="ij")
        a = Microphysics(storm, seed=7).mixing_ratios(*mesh, iteration=2)
        b = Microphysics(storm, seed=8).mixing_ratios(*mesh, iteration=2)
        assert not np.allclose(a["qr"], b["qr"])

    def test_correlated_noise_unit_variance(self):
        noise = correlated_noise((32, 32, 8), sigma_points=2.0, seed=3)
        assert noise.std() == pytest.approx(1.0, rel=1e-6)
        assert noise.shape == (32, 32, 8)


class TestReflectivity:
    def test_range_clipped(self):
        q = {"qr": np.array([[[0.0, 1e-2, 10.0]]])}
        dbz = reflectivity_dbz(q)
        assert dbz.min() >= DBZ_MIN and dbz.max() <= DBZ_MAX

    def test_zero_mixing_ratio_is_floor(self):
        dbz = reflectivity_dbz({"qr": np.zeros((2, 2, 2))})
        np.testing.assert_allclose(dbz, DBZ_MIN)

    def test_monotone_in_rain_content(self):
        small = reflectivity_dbz({"qr": np.full((1, 1, 1), 1e-4)})
        big = reflectivity_dbz({"qr": np.full((1, 1, 1), 5e-3)})
        assert big > small

    def test_species_sum(self):
        q = {"qr": np.full((1, 1, 1), 1e-3), "qg": np.full((1, 1, 1), 1e-3)}
        z_both = equivalent_reflectivity(q)
        z_rain = equivalent_reflectivity({"qr": q["qr"]})
        assert z_both > z_rain

    def test_unknown_species_only_rejected(self):
        with pytest.raises(ValueError):
            reflectivity_dbz({"qx": np.ones((1, 1, 1))})

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            reflectivity_dbz({"qr": np.ones((1, 1, 1))}, rho_air=0.0)

    @settings(deadline=None, max_examples=30)
    @given(q=st.floats(min_value=0.0, max_value=0.05, allow_nan=False))
    def test_dbz_always_in_physical_range_property(self, q):
        dbz = reflectivity_dbz({"qr": np.full((1, 1, 1), q)})
        assert DBZ_MIN <= float(dbz.item()) <= DBZ_MAX


class TestWindField:
    def test_wind_components_present_and_bounded(self):
        storm = SupercellStorm(StormConfig())
        wind = WindField(storm)
        n = 20
        x = np.linspace(0, 1, n)
        mesh = np.meshgrid(x, x, np.linspace(0, 1, 8), indexing="ij")
        fields = wind.winds(*mesh, iteration=4)
        assert set(fields) == {"u", "v", "w", "theta"}
        assert np.abs(fields["w"]).max() <= WindField.W_MAX + 1e-6
        assert fields["w"].max() > 1.0  # there is an updraft
        assert np.all(np.isfinite(fields["u"]))

    def test_rotation_produces_opposite_winds_across_center(self):
        storm = SupercellStorm(StormConfig(initial_center=(0.5, 0.5)))
        wind = WindField(storm)
        n = 41
        x = np.linspace(0, 1, n)
        mesh = np.meshgrid(x, x, np.array([0.2]), indexing="ij")
        fields = wind.winds(*mesh, iteration=5)
        v = fields["v"][:, n // 2, 0]
        # Meridional wind has opposite rotational contributions east/west of the core.
        assert (v[n // 4] - v[3 * n // 4]) != pytest.approx(0.0, abs=1e-9)


class TestModelStateAndSimulation:
    def test_state_add_and_get(self):
        state = ModelState(iteration=0, shape=(4, 4, 4))
        state.add("dbz", np.zeros((4, 4, 4)))
        assert "dbz" in state
        assert state.get("dbz").dtype == np.float32
        assert state.nbytes() > 0

    def test_state_shape_validated(self):
        state = ModelState(iteration=0, shape=(4, 4, 4))
        with pytest.raises(ValueError):
            state.add("dbz", np.zeros((4, 4, 5)))

    def test_snapshot_fields_and_iteration(self, tiny_simulation):
        domain = tiny_simulation.snapshot(2)
        assert domain.iteration == tiny_simulation.config.start_iteration + 2
        assert domain.get_field("dbz").shape == tiny_simulation.config.shape

    def test_snapshot_dbz_range_and_locality(self, tiny_field):
        assert tiny_field.min() >= DBZ_MIN
        assert tiny_field.max() <= DBZ_MAX
        assert tiny_field.max() > 30.0  # there is a storm
        # The interesting region is a minority of the domain.
        assert (tiny_field > 20.0).mean() < 0.5

    def test_storm_evolves_between_snapshots(self, tiny_simulation):
        a = tiny_simulation.snapshot(0).get_field("dbz")
        b = tiny_simulation.snapshot(5).get_field("dbz")
        assert not np.allclose(a, b)

    def test_extra_fields_generated_on_request(self):
        cfg = CM1Config(shape=(24, 24, 8), fields=("dbz", "qr", "w"))
        sim = CM1Simulation(cfg)
        domain = sim.snapshot(0)
        assert set(domain.field_names()) == {"dbz", "qr", "w"}

    def test_iterate_yields_requested_count(self, tiny_simulation):
        domains = list(tiny_simulation.iterate(3))
        assert len(domains) == 3
        assert domains[0].iteration < domains[2].iteration

    def test_snapshot_deterministic(self):
        a = CM1Simulation(CM1Config.tiny(seed=5)).snapshot(1).get_field("dbz")
        b = CM1Simulation(CM1Config.tiny(seed=5)).snapshot(1).get_field("dbz")
        np.testing.assert_array_equal(a, b)
