"""Tests for Algorithm 1 and the adaptation controller."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptation import AdaptationController, adapt_percent
from repro.core.config import AdaptationConfig


class TestAdaptPercentAlgorithm1:
    def test_linear_model_inversion(self):
        # t = -1.6 p + 160; target 20 -> p = 87.5 (the paper's first jump).
        assert adapt_percent(20.0, t_prev=0.0, p_prev=100.0, t_curr=160.0, p_curr=0.0) == pytest.approx(87.5)

    def test_vertical_slope_increases_when_too_slow(self):
        assert adapt_percent(10.0, 50.0, 40.0, 50.0, 40.0) == 41.0

    def test_vertical_slope_decreases_when_too_fast(self):
        assert adapt_percent(100.0, 50.0, 40.0, 50.0, 40.0) == 39.0

    def test_vertical_slope_at_bounds(self):
        # Already at 100 and still too slow: stays at 100.
        assert adapt_percent(10.0, 50.0, 100.0, 50.0, 100.0) == 100.0
        # Already at 0 and still too fast: stays at 0.
        assert adapt_percent(100.0, 5.0, 0.0, 5.0, 0.0) == 0.0

    def test_non_negative_slope_bumps_percent(self):
        # Rendering randomness: higher percentage took longer -> a >= 0.
        result = adapt_percent(20.0, t_prev=50.0, p_prev=40.0, t_curr=60.0, p_curr=50.0)
        assert result == 51.0

    def test_non_negative_slope_clamped_at_100(self):
        assert adapt_percent(20.0, 50.0, 90.0, 60.0, 100.0) == 100.0

    def test_result_clamped_to_bounds(self):
        # Extremely fast: the line would ask for a negative percentage.
        result = adapt_percent(1000.0, 0.0, 100.0, 10.0, 50.0)
        assert 0.0 <= result <= 100.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            adapt_percent(0.0, 0.0, 100.0, 10.0, 50.0)

    @settings(deadline=None, max_examples=200)
    @given(
        target=st.floats(min_value=0.1, max_value=500, allow_nan=False),
        t_prev=st.floats(min_value=0.0, max_value=500, allow_nan=False),
        p_prev=st.floats(min_value=0.0, max_value=100, allow_nan=False),
        t_curr=st.floats(min_value=0.0, max_value=500, allow_nan=False),
        p_curr=st.floats(min_value=0.0, max_value=100, allow_nan=False),
    )
    def test_output_always_in_bounds_property(self, target, t_prev, p_prev, t_curr, p_curr):
        """Algorithm 1 always returns a percentage in [0, 100]."""
        result = adapt_percent(target, t_prev, p_prev, t_curr, p_curr)
        assert 0.0 <= result <= 100.0

    @settings(deadline=None, max_examples=100)
    @given(
        target=st.floats(min_value=1.0, max_value=200.0),
        p_curr=st.floats(min_value=0.0, max_value=99.0),
        t_curr=st.floats(min_value=0.0, max_value=400.0),
    )
    def test_too_slow_never_decreases_percent_property(self, target, p_curr, t_curr):
        """When the last iteration exceeded the target, the algorithm never lowers the percentage
        (rendering is monotone in the number of non-reduced blocks)."""
        if t_curr <= target:
            return
        # Previous virtual observation: everything reduced, zero time.
        result = adapt_percent(target, 0.0, 100.0, t_curr, p_curr)
        assert result >= p_curr - 1e-9


class TestAdaptationController:
    def test_first_iteration_uses_initial_percent(self):
        controller = AdaptationController(AdaptationConfig(target_seconds=20.0, initial_percent=0.0))
        assert controller.next_percent == 0.0

    def test_first_observation_uses_seeded_t0(self):
        controller = AdaptationController(AdaptationConfig(target_seconds=20.0))
        nxt = controller.observe(percent=0.0, seconds=160.0)
        assert nxt == pytest.approx(87.5)

    def test_disabled_controller_keeps_percent(self):
        controller = AdaptationController(AdaptationConfig(enabled=False, target_seconds=20.0))
        assert controller.observe(30.0, 100.0) == 30.0
        assert controller.observe(30.0, 5.0) == 30.0

    def test_max_percent_bound(self):
        controller = AdaptationController(
            AdaptationConfig(target_seconds=1.0, initial_percent=0.0, max_percent=50.0)
        )
        nxt = controller.observe(0.0, 200.0)
        assert nxt <= 50.0

    def test_convergence_on_synthetic_linear_system(self):
        """Closed loop against a noiseless linear plant converges to the target."""
        target = 30.0
        controller = AdaptationController(AdaptationConfig(target_seconds=target))

        def plant(percent):
            return 160.0 * (1.0 - percent / 100.0) + 1.0

        percent = controller.next_percent
        times = []
        for _ in range(12):
            t = plant(percent)
            times.append(t)
            percent = controller.observe(percent, t)
        assert abs(times[-1] - target) / target < 0.1
        assert controller.converged(tolerance=0.2)

    def test_convergence_with_noisy_plant(self):
        target = 40.0
        rng = np.random.default_rng(0)
        controller = AdaptationController(AdaptationConfig(target_seconds=target))

        def plant(percent):
            return max(1.0, 160.0 * (1.0 - percent / 100.0) * rng.uniform(0.85, 1.15) + 1.0)

        percent = controller.next_percent
        times = []
        for _ in range(30):
            t = plant(percent)
            times.append(t)
            percent = controller.observe(percent, t)
        tail = np.asarray(times[-10:])
        assert np.abs(tail - target).mean() / target < 0.5

    def test_history_recorded(self):
        controller = AdaptationController(AdaptationConfig(target_seconds=10.0))
        controller.observe(0.0, 100.0)
        controller.observe(50.0, 60.0)
        assert controller.history == [(0.0, 100.0), (50.0, 60.0)]

    def test_invalid_observations(self):
        controller = AdaptationController(AdaptationConfig(target_seconds=10.0))
        with pytest.raises(ValueError):
            controller.observe(-1.0, 10.0)
        with pytest.raises(ValueError):
            controller.observe(10.0, -1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptationConfig(target_seconds=-5.0)
        with pytest.raises(ValueError):
            AdaptationConfig(initial_percent=150.0)
        with pytest.raises(ValueError):
            AdaptationConfig(initial_percent=80.0, max_percent=50.0)
