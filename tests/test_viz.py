"""Tests for the visualization substrate (marching cubes, rasterizer, catalyst API)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.block import Block, BlockExtent
from repro.grid.reduction import reduce_block
from repro.viz.camera import Camera
from repro.viz.catalyst import CatalystPipeline, ColormapScript, IsosurfaceScript
from repro.viz.colormap import apply_colormap, grayscale, viridis_like
from repro.viz.framebuffer import Framebuffer
from repro.viz.marching_cubes import (
    count_active_cells,
    count_active_cells_batch,
    extract_isosurface,
    marching_cubes,
)
from repro.viz.mesh import TriangleMesh
from repro.viz.rasterizer import rasterize_mesh
from repro.viz.slice_render import extract_slice, render_colormap_slice
from repro.viz.volume import composite_volume, volume_max_projection


def sphere_field(n=24, radius=0.6):
    x = np.linspace(-1, 1, n)
    xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
    return np.sqrt(xx**2 + yy**2 + zz**2) - radius, x


class TestTriangleMesh:
    def test_from_soup_and_counts(self):
        soup = np.zeros((3, 3, 3))
        soup[:, 1, 0] = 1.0
        soup[:, 2, 1] = 1.0
        mesh = TriangleMesh.from_triangle_soup(soup)
        assert mesh.ntriangles == 3
        assert mesh.nvertices == 9
        assert mesh.area() == pytest.approx(1.5)

    def test_merge(self):
        soup = np.random.default_rng(0).normal(size=(2, 3, 3))
        a = TriangleMesh.from_triangle_soup(soup)
        b = TriangleMesh.from_triangle_soup(soup)
        merged = TriangleMesh.merge([a, b, TriangleMesh()])
        assert merged.ntriangles == 4

    def test_empty_mesh(self):
        mesh = TriangleMesh()
        assert mesh.is_empty
        assert mesh.area() == 0.0
        lo, hi = mesh.bounds()
        np.testing.assert_array_equal(lo, hi)

    def test_invalid_indices(self):
        with pytest.raises(ValueError):
            TriangleMesh(vertices=np.zeros((2, 3)), triangles=np.array([[0, 1, 5]]))

    def test_normals_unit_length(self):
        soup = np.random.default_rng(1).normal(size=(5, 3, 3))
        mesh = TriangleMesh.from_triangle_soup(soup)
        norms = np.linalg.norm(mesh.triangle_normals(), axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_translated(self):
        soup = np.zeros((1, 3, 3))
        mesh = TriangleMesh.from_triangle_soup(soup).translated([1.0, 2.0, 3.0])
        np.testing.assert_allclose(mesh.vertices[0], [1.0, 2.0, 3.0])


class TestMarchingCubes:
    def test_empty_when_level_outside_range(self):
        field = np.zeros((5, 5, 5))
        assert marching_cubes(field, 1.0).is_empty
        assert count_active_cells(field, 1.0) == 0

    def test_sphere_surface_area(self):
        field, x = sphere_field(n=40, radius=0.6)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        expected = 4.0 * np.pi * 0.6**2
        assert mesh.ntriangles > 100
        assert mesh.area() == pytest.approx(expected, rel=0.08)

    def test_vertices_lie_on_isosurface(self):
        field, x = sphere_field(n=24, radius=0.5)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        radii = np.linalg.norm(mesh.vertices, axis=1)
        # Vertices interpolated along edges are close to the sphere of radius 0.5.
        assert np.abs(radii - 0.5).max() < 0.05

    def test_triangle_count_scales_with_active_cells(self):
        field, x = sphere_field(n=24, radius=0.5)
        cells = count_active_cells(field, 0.0)
        mesh = marching_cubes(field, 0.0)
        # The tetrahedral triangulation emits a handful of triangles per crossed cell.
        assert 1.0 <= mesh.ntriangles / cells <= 8.0

    def test_planar_isosurface_area(self):
        # f(x, y, z) = z, level 0.55 -> a unit-square plane (the level is chosen
        # strictly between grid values; an isovalue exactly on a grid plane is
        # the usual marching-cubes degenerate case).
        n = 11
        x = np.linspace(0, 1, n)
        field = np.tile(x[None, None, :], (n, n, 1))
        mesh = marching_cubes(field, 0.55, coords=(x, x, x))
        assert mesh.area() == pytest.approx(1.0, rel=1e-6)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            marching_cubes(np.zeros((4, 4)), 0.5)
        with pytest.raises(ValueError):
            marching_cubes(np.zeros((4, 4, 4)), 0.5, coords=(np.arange(3), np.arange(4), np.arange(4)))

    def test_degenerate_axis(self):
        assert marching_cubes(np.zeros((1, 4, 4)), 0.5).is_empty

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=500), level=st.floats(min_value=-0.5, max_value=0.5))
    def test_mesh_inside_domain_bounds_property(self, seed, level):
        """All isosurface vertices stay inside the grid's bounding box."""
        field = np.random.default_rng(seed).normal(size=(7, 7, 7))
        mesh = marching_cubes(field, level)
        if mesh.is_empty:
            return
        assert mesh.vertices.min() >= -1e-9
        assert mesh.vertices.max() <= 6.0 + 1e-9

    def test_extract_isosurface_single_pass_consistency(self):
        """extract_isosurface returns the same mesh and count as the two-pass API."""
        field, x = sphere_field(n=24, radius=0.5)
        mesh, cells = extract_isosurface(field, 0.0, coords=(x, x, x))
        assert cells == count_active_cells(field, 0.0)
        assert mesh.ntriangles == marching_cubes(field, 0.0, coords=(x, x, x)).ntriangles
        empty_mesh, empty_cells = extract_isosurface(np.zeros((5, 5, 5)), 1.0)
        assert empty_mesh.is_empty and empty_cells == 0

    def test_count_batch_matches_scalar(self):
        """Batched counts are bitwise identical to per-block counts."""
        rng = np.random.default_rng(7)
        batch = rng.normal(size=(9, 5, 6, 4))
        for level in (-0.3, 0.0, 0.1):
            got = count_active_cells_batch(batch, level)
            want = [count_active_cells(batch[i], level) for i in range(9)]
            assert got.tolist() == want

    def test_count_batch_matches_scalar_float32(self):
        """float32 batches match the scalar float64 path, including levels
        that are not exactly representable in float32."""
        rng = np.random.default_rng(11)
        batch = rng.normal(size=(7, 4, 5, 6)).astype(np.float32)
        for level in (0.1, float(np.nextafter(0.25, 1.0)), -0.30000000000000004):
            got = count_active_cells_batch(batch, level)
            want = [
                count_active_cells(np.asarray(batch[i], dtype=np.float64), level)
                for i in range(batch.shape[0])
            ]
            assert got.tolist() == want

    def test_count_batch_degenerate_and_validation(self):
        assert count_active_cells_batch(np.zeros((0, 4, 4, 4)), 0.5).tolist() == []
        assert count_active_cells_batch(np.zeros((3, 1, 4, 4)), 0.5).tolist() == [0, 0, 0]
        with pytest.raises(ValueError):
            count_active_cells_batch(np.zeros((4, 4, 4)), 0.5)


class TestCameraAndRasterizer:
    def test_camera_projects_center_to_screen_middle(self):
        cam = Camera(position=[0, 0, -5], target=[0, 0, 0], up=[0, 1, 0])
        pixels, depth = cam.project(np.array([[0.0, 0.0, 0.0]]), 100, 80)
        assert pixels[0, 0] == pytest.approx(50.0)
        assert pixels[0, 1] == pytest.approx(40.0)
        assert depth[0] == pytest.approx(5.0)

    def test_camera_behind_points_infinite_depth(self):
        cam = Camera(position=[0, 0, 0], target=[0, 0, 1])
        _, depth = cam.project(np.array([[0.0, 0.0, -1.0]]), 10, 10)
        assert np.isinf(depth[0])

    def test_camera_validation(self):
        with pytest.raises(ValueError):
            Camera(position=[0, 0, 0], target=[0, 0, 0])
        with pytest.raises(ValueError):
            Camera(position=[0, 0, 0], target=[0, 0, 1], fov_degrees=200)

    def test_fit_bounds_sees_object(self):
        cam = Camera.fit_bounds(np.zeros(3), np.ones(3))
        pixels, depth = cam.project(np.array([[0.5, 0.5, 0.5]]), 200, 200)
        assert np.isfinite(depth[0])
        assert 0 <= pixels[0, 0] <= 200 and 0 <= pixels[0, 1] <= 200

    def test_rasterize_sphere_covers_pixels(self):
        field, x = sphere_field(n=20, radius=0.5)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        cam = Camera.fit_bounds(*mesh.bounds())
        fb = Framebuffer(120, 100)
        rasterize_mesh(mesh, cam, fb)
        assert fb.coverage() > 0.05
        assert fb.color.max() > 0.1

    def test_rasterize_empty_mesh_noop(self):
        fb = Framebuffer(10, 10)
        rasterize_mesh(TriangleMesh(), Camera(position=[0, 0, -1], target=[0, 0, 0]), fb)
        assert fb.coverage() == 0.0

    def test_framebuffer_save_pgm(self, tmp_path):
        fb = Framebuffer(8, 6, background=0.5)
        path = fb.save_pgm(tmp_path / "img.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n8 6\n255\n")
        assert len(data) == len(b"P5\n8 6\n255\n") + 48

    def test_framebuffer_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)
        with pytest.raises(ValueError):
            Framebuffer(5, 5, background=2.0)

    def test_save_array_pgm(self, tmp_path):
        img = np.random.default_rng(0).random((5, 7))
        path = Framebuffer.save_array_pgm(img, tmp_path / "a.pgm")
        assert path.exists()


class TestColormapSliceVolume:
    def test_grayscale_range(self):
        img = grayscale(np.array([[0.0, 5.0], [10.0, 2.5]]))
        assert img.min() == 0.0 and img.max() == 1.0

    def test_viridis_shape(self):
        img = viridis_like(np.zeros((4, 5)))
        assert img.shape == (4, 5, 3)

    def test_apply_colormap_unknown(self):
        with pytest.raises(ValueError):
            apply_colormap(np.zeros((2, 2)), cmap="jet")

    def test_extract_slice_default_middle(self, tiny_field):
        slab = extract_slice(tiny_field)
        assert slab.shape == tiny_field.shape[:2]

    def test_extract_slice_bounds(self, tiny_field):
        with pytest.raises(ValueError):
            extract_slice(tiny_field, level_index=10_000)

    def test_render_colormap_slice(self, tiny_field):
        img = render_colormap_slice(tiny_field, vmin=-60, vmax=80)
        assert img.shape == tiny_field.shape[:2]
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_volume_max_projection_highlights_storm(self, tiny_field):
        mip = volume_max_projection(tiny_field, vmin=-60, vmax=80)
        assert mip.shape == tiny_field.shape[:2]
        assert mip.max() > 0.5

    def test_composite_volume(self, tiny_field):
        img = composite_volume(tiny_field, vmin=-60, vmax=80)
        assert img.shape == tiny_field.shape[:2]
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            volume_max_projection(np.zeros((3, 3)), axis=0)
        with pytest.raises(ValueError):
            composite_volume(np.zeros((3, 3, 3)), opacity_scale=0.0)


class TestCatalyst:
    def _blocks(self, tiny_field):
        from repro.grid.decomposition import CartesianDecomposition

        decomp = CartesianDecomposition(tiny_field.shape, nranks=2, blocks_per_subdomain=(2, 2, 1))
        return decomp.extract_blocks(0, tiny_field), decomp

    def test_isosurface_count_vs_mesh_consistency(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        count_result = IsosurfaceScript(level=45.0, mode="count").process(blocks, 0)
        mesh_result = IsosurfaceScript(level=45.0, mode="mesh").process(blocks, 0)
        assert count_result.active_cells == mesh_result.active_cells
        # The counting estimate tracks the real triangle count within a small factor.
        if mesh_result.ntriangles > 0:
            ratio = count_result.ntriangles / mesh_result.ntriangles
            assert 0.4 <= ratio <= 2.5

    def test_reduced_blocks_produce_fewer_triangles(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = IsosurfaceScript(level=45.0, mode="count")
        full = script.process(blocks, 0)
        reduced = script.process([reduce_block(b) for b in blocks], 0)
        assert reduced.ntriangles <= full.ntriangles
        assert reduced.npoints < full.npoints

    def test_isosurface_render_image(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = IsosurfaceScript(level=45.0, mode="mesh", render_image=True, image_size=(64, 48))
        result = script.process(blocks, 0)
        if result.ntriangles > 0:
            assert result.image is not None
            assert result.image.shape == (48, 64)

    def test_isosurface_validation(self):
        with pytest.raises(ValueError):
            IsosurfaceScript(mode="bad")
        with pytest.raises(ValueError):
            IsosurfaceScript(mode="count", render_image=True)

    def test_process_batch_matches_process(self, tiny_field):
        """The batched count path is indistinguishable from the per-block loop,
        on a mixed list of full and reduced (2×2×2) blocks."""
        blocks, _ = self._blocks(tiny_field)
        mixed = [
            reduce_block(block) if i % 2 else block for i, block in enumerate(blocks)
        ]
        script = IsosurfaceScript(level=45.0, mode="count")
        reference = script.process(mixed, 1)
        batched = script.process_batch(mixed, 1)
        assert batched.per_block_active_cells == reference.per_block_active_cells
        assert batched.per_block_triangles == reference.per_block_triangles
        assert batched.npoints == reference.npoints
        assert batched.iteration == reference.iteration

    def test_process_batch_mesh_mode_delegates(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = IsosurfaceScript(level=45.0, mode="mesh")
        reference = script.process(blocks, 0)
        batched = script.process_batch(blocks, 0)
        assert batched.per_block_triangles == reference.per_block_triangles
        assert batched.per_block_active_cells == reference.per_block_active_cells
        assert batched.mesh.ntriangles == reference.mesh.ntriangles

    def test_process_batch_empty_rank(self):
        script = IsosurfaceScript(level=45.0, mode="count")
        result = script.process_batch([], 2)
        assert result.npoints == 0
        assert result.per_block_triangles == {}

    def test_reduced_block_geometry_stays_in_extent(self):
        """Reduced-block isosurface vertices never leave the block's extent."""
        extent = BlockExtent(start=(4, 6, 3), stop=(10, 12, 8))
        x = np.linspace(0.0, 100.0, 6)
        data = np.broadcast_to(x[:, None, None], (6, 6, 5)).copy()
        reduced = reduce_block(Block(block_id=0, extent=extent, data=data))
        result = IsosurfaceScript(level=45.0, mode="mesh").process([reduced], 0)
        assert not result.mesh.is_empty
        lo, hi = result.mesh.bounds()
        for axis in range(3):
            assert lo[axis] >= extent.start[axis] - 1e-9
            assert hi[axis] <= extent.stop[axis] - 1 + 1e-9

    def test_reduced_block_degenerate_axis_regression(self):
        """A reduced block with a length-1 axis must not emit geometry outside
        its extent (the high corner used to be placed at start + 1, one past
        the only covered plane)."""
        extent = BlockExtent(start=(4, 6, 5), stop=(10, 12, 6))  # length-1 z
        x = np.linspace(0.0, 100.0, 6)
        data = np.broadcast_to(x[:, None, None], (6, 6, 1)).copy()
        reduced = reduce_block(Block(block_id=0, extent=extent, data=data))
        result = IsosurfaceScript(level=45.0, mode="mesh").process([reduced], 0)
        if not result.mesh.is_empty:
            lo, hi = result.mesh.bounds()
            assert lo[2] >= 5.0 - 1e-9
            assert hi[2] <= 5.0 + 1e-9  # never reaches z = 6 (outside extent)

    def test_colormap_script(self, tiny_field):
        blocks, decomp = self._blocks(tiny_field)
        script = ColormapScript(level_index=2, global_shape=tiny_field.shape)
        script.fit_bounds([blocks])
        result = script.process(blocks, 0)
        assert result.image is not None
        assert result.image.shape == tiny_field.shape[:2]
        assert result.coverage is not None
        assert result.coverage.shape == tiny_field.shape[:2]

    def test_colormap_script_validation(self, tiny_field):
        with pytest.raises(ValueError):
            ColormapScript(level_index=100, global_shape=tiny_field.shape)

    def test_colormap_requires_global_bounds(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = ColormapScript(level_index=2, global_shape=tiny_field.shape)
        with pytest.raises(RuntimeError):
            script.process(blocks, 0)

    def test_colormap_fit_bounds_keeps_explicit_bounds(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = ColormapScript(
            level_index=2, global_shape=tiny_field.shape, vmin=-10.0, vmax=90.0
        )
        assert script.fit_bounds([blocks]) == (-10.0, 90.0)
        partial = ColormapScript(
            level_index=2, global_shape=tiny_field.shape, vmin=-10.0
        )
        vmin, vmax = partial.fit_bounds([blocks])
        assert vmin == -10.0  # explicit bound kept
        assert np.isfinite(vmax) and vmax > vmin  # fitted from the data

    def test_colormap_fit_bounds_requires_coverage(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        covered = [
            b for b in blocks if not (b.extent.start[2] <= 2 < b.extent.stop[2])
        ]
        script = ColormapScript(level_index=2, global_shape=tiny_field.shape)
        with pytest.raises(ValueError):
            script.fit_bounds([covered])

    def test_colormap_compositing_consistent_across_ranks(self, tiny_field):
        """Regression: per-rank partial images composited with shared global
        bounds reproduce the full-domain colormap exactly (no seams at rank
        boundaries, which per-rank min/max normalisation used to create)."""
        from repro.grid.decomposition import CartesianDecomposition

        nranks = 2
        decomp = CartesianDecomposition(
            tiny_field.shape, nranks=nranks, blocks_per_subdomain=(2, 2, 1)
        )
        per_rank = [decomp.extract_blocks(r, tiny_field) for r in range(nranks)]
        script = ColormapScript(level_index=2, global_shape=tiny_field.shape)
        vmin, vmax = script.fit_bounds(per_rank)
        composite = np.zeros(tiny_field.shape[:2], dtype=np.float64)
        covered = np.zeros(tiny_field.shape[:2], dtype=bool)
        for rank in range(nranks):
            result = script.process(per_rank[rank], 0)
            assert result.coverage is not None
            composite[result.coverage] = result.image[result.coverage]
            covered |= result.coverage
        assert covered.all()  # the ranks tile the whole domain
        expected = apply_colormap(
            np.asarray(tiny_field[:, :, 2], dtype=np.float64),
            cmap="gray",
            vmin=vmin,
            vmax=vmax,
        )
        np.testing.assert_array_equal(composite, expected)

    def test_pipeline_requires_scripts(self):
        with pytest.raises(RuntimeError):
            CatalystPipeline().coprocess([], 0)

    def test_pipeline_add_script_type_checked(self):
        pipeline = CatalystPipeline()
        with pytest.raises(TypeError):
            pipeline.add_script(object())

    def test_pipeline_runs_all_scripts(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        pipeline = CatalystPipeline(
            [
                IsosurfaceScript(level=45.0, mode="count"),
                ColormapScript(2, tiny_field.shape, vmin=-60.0, vmax=80.0),
            ]
        )
        results = pipeline.coprocess(blocks, 3)
        assert len(results) == 2
        assert all(r.iteration == 3 for r in results)
