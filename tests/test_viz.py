"""Tests for the visualization substrate (marching cubes, rasterizer, catalyst API)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.block import Block, BlockExtent
from repro.grid.reduction import reduce_block
from repro.viz.camera import Camera
from repro.viz.catalyst import CatalystPipeline, ColormapScript, IsosurfaceScript
from repro.viz.colormap import apply_colormap, grayscale, viridis_like
from repro.viz.framebuffer import Framebuffer
from repro.viz.marching_cubes import count_active_cells, marching_cubes
from repro.viz.mesh import TriangleMesh
from repro.viz.rasterizer import rasterize_mesh
from repro.viz.slice_render import extract_slice, render_colormap_slice
from repro.viz.volume import composite_volume, volume_max_projection


def sphere_field(n=24, radius=0.6):
    x = np.linspace(-1, 1, n)
    xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
    return np.sqrt(xx**2 + yy**2 + zz**2) - radius, x


class TestTriangleMesh:
    def test_from_soup_and_counts(self):
        soup = np.zeros((3, 3, 3))
        soup[:, 1, 0] = 1.0
        soup[:, 2, 1] = 1.0
        mesh = TriangleMesh.from_triangle_soup(soup)
        assert mesh.ntriangles == 3
        assert mesh.nvertices == 9
        assert mesh.area() == pytest.approx(1.5)

    def test_merge(self):
        soup = np.random.default_rng(0).normal(size=(2, 3, 3))
        a = TriangleMesh.from_triangle_soup(soup)
        b = TriangleMesh.from_triangle_soup(soup)
        merged = TriangleMesh.merge([a, b, TriangleMesh()])
        assert merged.ntriangles == 4

    def test_empty_mesh(self):
        mesh = TriangleMesh()
        assert mesh.is_empty
        assert mesh.area() == 0.0
        lo, hi = mesh.bounds()
        np.testing.assert_array_equal(lo, hi)

    def test_invalid_indices(self):
        with pytest.raises(ValueError):
            TriangleMesh(vertices=np.zeros((2, 3)), triangles=np.array([[0, 1, 5]]))

    def test_normals_unit_length(self):
        soup = np.random.default_rng(1).normal(size=(5, 3, 3))
        mesh = TriangleMesh.from_triangle_soup(soup)
        norms = np.linalg.norm(mesh.triangle_normals(), axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_translated(self):
        soup = np.zeros((1, 3, 3))
        mesh = TriangleMesh.from_triangle_soup(soup).translated([1.0, 2.0, 3.0])
        np.testing.assert_allclose(mesh.vertices[0], [1.0, 2.0, 3.0])


class TestMarchingCubes:
    def test_empty_when_level_outside_range(self):
        field = np.zeros((5, 5, 5))
        assert marching_cubes(field, 1.0).is_empty
        assert count_active_cells(field, 1.0) == 0

    def test_sphere_surface_area(self):
        field, x = sphere_field(n=40, radius=0.6)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        expected = 4.0 * np.pi * 0.6**2
        assert mesh.ntriangles > 100
        assert mesh.area() == pytest.approx(expected, rel=0.08)

    def test_vertices_lie_on_isosurface(self):
        field, x = sphere_field(n=24, radius=0.5)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        radii = np.linalg.norm(mesh.vertices, axis=1)
        # Vertices interpolated along edges are close to the sphere of radius 0.5.
        assert np.abs(radii - 0.5).max() < 0.05

    def test_triangle_count_scales_with_active_cells(self):
        field, x = sphere_field(n=24, radius=0.5)
        cells = count_active_cells(field, 0.0)
        mesh = marching_cubes(field, 0.0)
        # The tetrahedral triangulation emits a handful of triangles per crossed cell.
        assert 1.0 <= mesh.ntriangles / cells <= 8.0

    def test_planar_isosurface_area(self):
        # f(x, y, z) = z, level 0.55 -> a unit-square plane (the level is chosen
        # strictly between grid values; an isovalue exactly on a grid plane is
        # the usual marching-cubes degenerate case).
        n = 11
        x = np.linspace(0, 1, n)
        field = np.tile(x[None, None, :], (n, n, 1))
        mesh = marching_cubes(field, 0.55, coords=(x, x, x))
        assert mesh.area() == pytest.approx(1.0, rel=1e-6)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            marching_cubes(np.zeros((4, 4)), 0.5)
        with pytest.raises(ValueError):
            marching_cubes(np.zeros((4, 4, 4)), 0.5, coords=(np.arange(3), np.arange(4), np.arange(4)))

    def test_degenerate_axis(self):
        assert marching_cubes(np.zeros((1, 4, 4)), 0.5).is_empty

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=500), level=st.floats(min_value=-0.5, max_value=0.5))
    def test_mesh_inside_domain_bounds_property(self, seed, level):
        """All isosurface vertices stay inside the grid's bounding box."""
        field = np.random.default_rng(seed).normal(size=(7, 7, 7))
        mesh = marching_cubes(field, level)
        if mesh.is_empty:
            return
        assert mesh.vertices.min() >= -1e-9
        assert mesh.vertices.max() <= 6.0 + 1e-9


class TestCameraAndRasterizer:
    def test_camera_projects_center_to_screen_middle(self):
        cam = Camera(position=[0, 0, -5], target=[0, 0, 0], up=[0, 1, 0])
        pixels, depth = cam.project(np.array([[0.0, 0.0, 0.0]]), 100, 80)
        assert pixels[0, 0] == pytest.approx(50.0)
        assert pixels[0, 1] == pytest.approx(40.0)
        assert depth[0] == pytest.approx(5.0)

    def test_camera_behind_points_infinite_depth(self):
        cam = Camera(position=[0, 0, 0], target=[0, 0, 1])
        _, depth = cam.project(np.array([[0.0, 0.0, -1.0]]), 10, 10)
        assert np.isinf(depth[0])

    def test_camera_validation(self):
        with pytest.raises(ValueError):
            Camera(position=[0, 0, 0], target=[0, 0, 0])
        with pytest.raises(ValueError):
            Camera(position=[0, 0, 0], target=[0, 0, 1], fov_degrees=200)

    def test_fit_bounds_sees_object(self):
        cam = Camera.fit_bounds(np.zeros(3), np.ones(3))
        pixels, depth = cam.project(np.array([[0.5, 0.5, 0.5]]), 200, 200)
        assert np.isfinite(depth[0])
        assert 0 <= pixels[0, 0] <= 200 and 0 <= pixels[0, 1] <= 200

    def test_rasterize_sphere_covers_pixels(self):
        field, x = sphere_field(n=20, radius=0.5)
        mesh = marching_cubes(field, 0.0, coords=(x, x, x))
        cam = Camera.fit_bounds(*mesh.bounds())
        fb = Framebuffer(120, 100)
        rasterize_mesh(mesh, cam, fb)
        assert fb.coverage() > 0.05
        assert fb.color.max() > 0.1

    def test_rasterize_empty_mesh_noop(self):
        fb = Framebuffer(10, 10)
        rasterize_mesh(TriangleMesh(), Camera(position=[0, 0, -1], target=[0, 0, 0]), fb)
        assert fb.coverage() == 0.0

    def test_framebuffer_save_pgm(self, tmp_path):
        fb = Framebuffer(8, 6, background=0.5)
        path = fb.save_pgm(tmp_path / "img.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n8 6\n255\n")
        assert len(data) == len(b"P5\n8 6\n255\n") + 48

    def test_framebuffer_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)
        with pytest.raises(ValueError):
            Framebuffer(5, 5, background=2.0)

    def test_save_array_pgm(self, tmp_path):
        img = np.random.default_rng(0).random((5, 7))
        path = Framebuffer.save_array_pgm(img, tmp_path / "a.pgm")
        assert path.exists()


class TestColormapSliceVolume:
    def test_grayscale_range(self):
        img = grayscale(np.array([[0.0, 5.0], [10.0, 2.5]]))
        assert img.min() == 0.0 and img.max() == 1.0

    def test_viridis_shape(self):
        img = viridis_like(np.zeros((4, 5)))
        assert img.shape == (4, 5, 3)

    def test_apply_colormap_unknown(self):
        with pytest.raises(ValueError):
            apply_colormap(np.zeros((2, 2)), cmap="jet")

    def test_extract_slice_default_middle(self, tiny_field):
        slab = extract_slice(tiny_field)
        assert slab.shape == tiny_field.shape[:2]

    def test_extract_slice_bounds(self, tiny_field):
        with pytest.raises(ValueError):
            extract_slice(tiny_field, level_index=10_000)

    def test_render_colormap_slice(self, tiny_field):
        img = render_colormap_slice(tiny_field, vmin=-60, vmax=80)
        assert img.shape == tiny_field.shape[:2]
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_volume_max_projection_highlights_storm(self, tiny_field):
        mip = volume_max_projection(tiny_field, vmin=-60, vmax=80)
        assert mip.shape == tiny_field.shape[:2]
        assert mip.max() > 0.5

    def test_composite_volume(self, tiny_field):
        img = composite_volume(tiny_field, vmin=-60, vmax=80)
        assert img.shape == tiny_field.shape[:2]
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            volume_max_projection(np.zeros((3, 3)), axis=0)
        with pytest.raises(ValueError):
            composite_volume(np.zeros((3, 3, 3)), opacity_scale=0.0)


class TestCatalyst:
    def _blocks(self, tiny_field):
        from repro.grid.decomposition import CartesianDecomposition

        decomp = CartesianDecomposition(tiny_field.shape, nranks=2, blocks_per_subdomain=(2, 2, 1))
        return decomp.extract_blocks(0, tiny_field), decomp

    def test_isosurface_count_vs_mesh_consistency(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        count_result = IsosurfaceScript(level=45.0, mode="count").process(blocks, 0)
        mesh_result = IsosurfaceScript(level=45.0, mode="mesh").process(blocks, 0)
        assert count_result.active_cells == mesh_result.active_cells
        # The counting estimate tracks the real triangle count within a small factor.
        if mesh_result.ntriangles > 0:
            ratio = count_result.ntriangles / mesh_result.ntriangles
            assert 0.4 <= ratio <= 2.5

    def test_reduced_blocks_produce_fewer_triangles(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = IsosurfaceScript(level=45.0, mode="count")
        full = script.process(blocks, 0)
        reduced = script.process([reduce_block(b) for b in blocks], 0)
        assert reduced.ntriangles <= full.ntriangles
        assert reduced.npoints < full.npoints

    def test_isosurface_render_image(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        script = IsosurfaceScript(level=45.0, mode="mesh", render_image=True, image_size=(64, 48))
        result = script.process(blocks, 0)
        if result.ntriangles > 0:
            assert result.image is not None
            assert result.image.shape == (48, 64)

    def test_isosurface_validation(self):
        with pytest.raises(ValueError):
            IsosurfaceScript(mode="bad")
        with pytest.raises(ValueError):
            IsosurfaceScript(mode="count", render_image=True)

    def test_colormap_script(self, tiny_field):
        blocks, decomp = self._blocks(tiny_field)
        script = ColormapScript(level_index=2, global_shape=tiny_field.shape)
        result = script.process(blocks, 0)
        assert result.image is not None
        assert result.image.shape == tiny_field.shape[:2]

    def test_colormap_script_validation(self, tiny_field):
        with pytest.raises(ValueError):
            ColormapScript(level_index=100, global_shape=tiny_field.shape)

    def test_pipeline_requires_scripts(self):
        with pytest.raises(RuntimeError):
            CatalystPipeline().coprocess([], 0)

    def test_pipeline_add_script_type_checked(self):
        pipeline = CatalystPipeline()
        with pytest.raises(TypeError):
            pipeline.add_script(object())

    def test_pipeline_runs_all_scripts(self, tiny_field):
        blocks, _ = self._blocks(tiny_field)
        pipeline = CatalystPipeline(
            [IsosurfaceScript(level=45.0, mode="count"), ColormapScript(2, tiny_field.shape)]
        )
        results = pipeline.coprocess(blocks, 3)
        assert len(results) == 2
        assert all(r.iteration == 3 for r in results)
