"""Tests for repro.io and the CM1 dataset replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cm1.config import CM1Config
from repro.cm1.dataset import CM1Dataset, StoredCM1Dataset
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid
from repro.io.manifest import DatasetManifest, IterationRecord
from repro.io.replay import DatasetReplayer, equally_spaced
from repro.io.store import DatasetStore


class TestManifest:
    def test_json_roundtrip(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(5, "iter_5.npz", ["dbz"], 100))
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.shape == (4, 4, 2)
        assert restored.iterations[0].iteration == 5

    def test_iterations_must_increase(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(5, "a.npz", ["dbz"]))
        with pytest.raises(ValueError):
            manifest.add_iteration(IterationRecord(5, "b.npz", ["dbz"]))

    def test_record_validation(self):
        with pytest.raises(ValueError):
            IterationRecord(-1, "a.npz", ["dbz"]).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "", ["dbz"]).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "a.npz", []).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "a.npz", ["dbz"], dtypes={"ghost": "<f4"}).validate()

    def test_record_dtypes_roundtrip(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(
            IterationRecord(1, "a.npz", ["dbz"], dtypes={"dbz": "<f8"})
        )
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.iterations[0].dtypes == {"dbz": "<f8"}

    def test_record_without_dtypes_accepted(self):
        """Manifests written before dtypes were tracked still load."""
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(1, "a.npz", ["dbz"]))
        text = manifest.to_json().replace('"dtypes": {},', "")
        restored = DatasetManifest.from_json(text)
        assert restored.iterations[0].dtypes == {}

    def test_find(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(3, "a.npz", ["dbz"]))
        assert manifest.find(3) is not None
        assert manifest.find(4) is None

    def test_unsupported_version(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        text = manifest.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            DatasetManifest.from_json(text)

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetManifest.load(tmp_path)


class TestDatasetStore:
    def _domain(self, iteration=0, value=1.0):
        grid = RectilinearGrid.uniform((6, 6, 4))
        field = np.full((6, 6, 4), value, dtype=np.float32)
        return Domain(grid=grid, fields={"dbz": field}, iteration=iteration)

    def test_create_append_load(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)), metadata={"seed": 1})
        store.append(self._domain(0, 1.0))
        store.append(self._domain(2, 2.0))
        assert store.iterations() == [0, 2]
        loaded = store.load_iteration(2)
        np.testing.assert_allclose(loaded.get_field("dbz"), 2.0)
        assert loaded.iteration == 2

    def test_nbytes_sums_on_disk_files(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        store.append(self._domain(0, 1.0))
        expected = sum(
            p.stat().st_size for p in (tmp_path / "ds").rglob("*") if p.is_file()
        )
        assert store.nbytes() == expected > 0
        store.append(self._domain(1, 2.0))
        assert store.nbytes() > expected  # grows with the data

    def test_nbytes_of_missing_store_is_zero(self, tmp_path):
        assert DatasetStore(tmp_path / "absent").nbytes() == 0

    def test_delete_removes_store_and_is_idempotent(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        store.append(self._domain(0, 1.0))
        assert store.exists()
        store.delete()
        assert not (tmp_path / "ds").exists()
        assert not store.exists()
        store.delete()  # deleting a deleted store must not raise
        # The root is free for a fresh store of a different shape.
        fresh = DatasetStore(tmp_path / "ds")
        fresh.create(RectilinearGrid.uniform((5, 5, 4)))
        assert fresh.exists()

    def test_delete_leaves_open_mmap_readable(self, tmp_path):
        """POSIX semantics the bounded replay cache relies on: deleting a
        store under a reader only unlinks names; the open mapping stays
        valid until the reader drops it."""
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)), layout="raw")
        store.append(self._domain(0, 3.0))
        loaded = store.load_iteration(0, mmap=True)
        field = loaded.get_field("dbz")
        store.delete()
        assert not (tmp_path / "ds").exists()
        np.testing.assert_allclose(np.asarray(field), 3.0)

    def test_create_twice_rejected(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        with pytest.raises(FileExistsError):
            store.create(RectilinearGrid.uniform((6, 6, 4)))

    def test_shape_mismatch_rejected(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        grid = RectilinearGrid.uniform((5, 5, 4))
        bad = Domain(grid=grid, fields={"dbz": np.zeros((5, 5, 4))}, iteration=0)
        with pytest.raises(ValueError):
            store.append(bad)

    def test_missing_iteration(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        with pytest.raises(KeyError):
            store.load_iteration(7)

    def test_missing_field(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        store.append(self._domain(0))
        with pytest.raises(KeyError):
            store.load_iteration(0, fields=["nonexistent"])

    def test_grid_roundtrip(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        grid = RectilinearGrid.cm1_like((8, 8, 6))
        store.create(grid)
        loaded = store.grid()
        np.testing.assert_allclose(loaded.x, grid.x)

    def test_dtype_preserved_roundtrip(self, tmp_path):
        """float64 fields must round-trip bit-exactly (no silent float32 cast),
        and float32 fields must stay float32."""
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid)
        rng = np.random.default_rng(42)
        f64 = rng.normal(size=(6, 6, 4))  # float64, not float32-representable
        f32 = rng.normal(size=(6, 6, 4)).astype(np.float32)
        store.append(Domain(grid=grid, fields={"a": f64, "b": f32}, iteration=0))
        loaded = store.load_iteration(0)
        assert loaded.get_field("a").dtype == np.float64
        assert loaded.get_field("b").dtype == np.float32
        np.testing.assert_array_equal(loaded.get_field("a"), f64)
        np.testing.assert_array_equal(loaded.get_field("b"), f32)
        record = store.manifest().find(0)
        assert np.dtype(record.dtypes["a"]) == np.float64
        assert np.dtype(record.dtypes["b"]) == np.float32

    def test_dtype_survives_manifest_reload(self, tmp_path):
        """The recorded dtypes survive a manifest reload from disk."""
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid)
        f64 = np.full((6, 6, 4), 1.0 + 1e-12)  # lost under a float32 cast
        store.append(Domain(grid=grid, fields={"dbz": f64}, iteration=0))
        fresh = DatasetStore(tmp_path / "ds")
        loaded = fresh.load_iteration(0)
        assert loaded.get_field("dbz").dtype == np.float64
        np.testing.assert_array_equal(loaded.get_field("dbz"), f64)


class TestRawLayout:
    def _domain(self, grid, iteration=0, seed=0):
        rng = np.random.default_rng(seed)
        return Domain(
            grid=grid,
            fields={
                "dbz": rng.normal(size=grid.shape).astype(np.float32),
                "aux": rng.normal(size=grid.shape),  # float64
            },
            iteration=iteration,
        )

    def test_raw_roundtrip_bitwise(self, tmp_path):
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout="raw")
        domain = self._domain(grid)
        store.append(domain)
        assert store.layout == "raw"
        loaded = store.load_iteration(0)
        for name in ("dbz", "aux"):
            np.testing.assert_array_equal(
                loaded.get_field(name), domain.get_field(name)
            )
            assert loaded.get_field(name).dtype == domain.get_field(name).dtype

    def test_raw_offsets_recorded_and_aligned(self, tmp_path):
        from repro.io.store import RAW_ALIGNMENT

        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout="raw")
        store.append(self._domain(grid))
        record = store.manifest().find(0)
        assert set(record.offsets) == {"dbz", "aux"}
        for offset in record.offsets.values():
            assert offset % RAW_ALIGNMENT == 0
        assert record.filename.endswith(".bin")

    def test_raw_mmap_load_is_zero_copy(self, tmp_path):
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout="raw")
        domain = self._domain(grid)
        store.append(domain)
        loaded = store.load_iteration(0, mmap=True)
        for name in ("dbz", "aux"):
            field = loaded.get_field(name)
            # Domain validation wraps the memmap in a plain ndarray view; the
            # backing buffer must still be the read-only file mapping.
            assert not field.flags.owndata
            assert isinstance(field.base, np.memmap)
            np.testing.assert_array_equal(field, domain.get_field(name))

    def test_mmap_on_npz_store_rejected(self, tmp_path):
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid)  # default npz layout
        store.append(self._domain(grid))
        with pytest.raises(ValueError):
            store.load_iteration(0, mmap=True)

    def test_unknown_layout_rejected(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        with pytest.raises(ValueError):
            store.create(RectilinearGrid.uniform((6, 6, 4)), layout="parquet")

    def test_layout_survives_manifest_reload(self, tmp_path):
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout="raw")
        store.append(self._domain(grid))
        fresh = DatasetStore(tmp_path / "ds")
        assert fresh.layout == "raw"
        loaded = fresh.load_iteration(0, mmap=True)
        assert isinstance(loaded.get_field("dbz").base, np.memmap)

    def test_manifest_without_layout_defaults_to_npz(self, tmp_path):
        """Manifests written before the raw layout existed still load."""
        manifest = DatasetManifest(shape=(4, 4, 2))
        text = manifest.to_json().replace('"layout": "npz",', "")
        restored = DatasetManifest.from_json(text)
        assert restored.layout == "npz"


class TestCornerBlockReplay:
    """Round-trips of *reduced* data: 2x2x2 corner blocks, mixed dtypes.

    The reduction step replaces a block's payload with its 8 corner values;
    a store holding reduced snapshots therefore persists 2x2x2 fields.  They
    must survive both layouts bit-exactly — in every per-field dtype — and
    reconstruct identically through trilinear expansion.
    """

    def _corner_fields(self):
        from repro.grid.reduction import reduce_to_corners

        rng = np.random.default_rng(7)
        full_f64 = rng.normal(size=(8, 8, 6))
        full_f32 = rng.normal(size=(8, 8, 6)).astype(np.float32)
        return {
            "corners_f64": reduce_to_corners(full_f64),
            "corners_f32": reduce_to_corners(full_f32).astype(np.float32),
        }

    @pytest.mark.parametrize("layout", ["npz", "raw"])
    def test_corner_blocks_roundtrip_both_layouts(self, tmp_path, layout):
        grid = RectilinearGrid.uniform((2, 2, 2))
        fields = self._corner_fields()
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout=layout)
        store.append(Domain(grid=grid, fields=fields, iteration=0))
        loaded = store.load_iteration(0)
        assert loaded.get_field("corners_f64").dtype == np.float64
        assert loaded.get_field("corners_f32").dtype == np.float32
        for name, original in fields.items():
            np.testing.assert_array_equal(loaded.get_field(name), original)

    def test_corner_blocks_mmap_expand_matches_original(self, tmp_path):
        from repro.grid.reduction import expand_from_corners

        grid = RectilinearGrid.uniform((2, 2, 2))
        fields = self._corner_fields()
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout="raw")
        store.append(Domain(grid=grid, fields=fields, iteration=0))
        loaded = store.load_iteration(0, mmap=True)
        for name, original in fields.items():
            replayed = loaded.get_field(name)
            assert isinstance(replayed.base, np.memmap)
            # Rendering a replayed reduced block must reconstruct exactly
            # what rendering the live reduced block would have.
            np.testing.assert_array_equal(
                expand_from_corners(np.asarray(replayed, dtype=np.float64), (8, 8, 6)),
                expand_from_corners(np.asarray(original, dtype=np.float64), (8, 8, 6)),
            )

    @pytest.mark.parametrize("layout", ["npz", "raw"])
    def test_level1_payload_roundtrip_both_layouts(self, tmp_path, layout):
        """Intermediate (level-1) reduction payloads persist bit-exactly.

        The mipmap ladder's middle rung produces odd shapes like 4x4x3; both
        store layouts must round-trip them and reconstruct identically
        through the level-1 expansion.
        """
        from repro.grid.reduction import expand_from_level, reduce_to_level

        rng = np.random.default_rng(9)
        full_shape = (7, 6, 5)
        full = rng.normal(size=full_shape)
        payload = reduce_to_level(full, 1)
        grid = RectilinearGrid.uniform(payload.shape)
        store = DatasetStore(tmp_path / "ds")
        store.create(grid, layout=layout)
        store.append(Domain(grid=grid, fields={"lvl1": payload}, iteration=0))
        loaded = store.load_iteration(0, mmap=(layout == "raw"))
        replayed = loaded.get_field("lvl1")
        np.testing.assert_array_equal(replayed, payload)
        np.testing.assert_array_equal(
            expand_from_level(np.asarray(replayed, dtype=np.float64), 1, full_shape),
            expand_from_level(payload, 1, full_shape),
        )


class TestReplay:
    def test_equally_spaced_selection(self):
        available = list(range(100))
        picks = equally_spaced(available, 10)
        assert len(picks) == 10
        assert picks[0] == 0 and picks[-1] == 99

    def test_equally_spaced_more_than_available(self):
        assert equally_spaced([1, 2, 3], 10) == [1, 2, 3]

    def test_equally_spaced_errors(self):
        with pytest.raises(ValueError):
            equally_spaced([], 3)
        with pytest.raises(ValueError):
            equally_spaced([1], 0)

    def test_replayer_per_rank_blocks(self, tmp_path):
        config = CM1Config.tiny()
        dataset = CM1Dataset(config, nsnapshots=3)
        store = dataset.save(tmp_path / "cm1")
        replayer = DatasetReplayer(store)
        decomp = CartesianDecomposition(config.shape, nranks=2, blocks_per_subdomain=(2, 1, 1))
        iterations = list(replayer.per_rank_blocks(decomp, count=2))
        assert len(iterations) == 2
        assert len(iterations[0]) == 2  # per rank
        total_blocks = sum(len(blocks) for blocks in iterations[0])
        assert total_blocks == decomp.nblocks

    def test_mmap_replayer_matches_npz_replayer(self, tmp_path):
        """A raw-layout mmap replay hands out the same blocks as an npz one."""
        config = CM1Config.tiny()
        dataset = CM1Dataset(config, nsnapshots=2)
        npz_store = dataset.save(tmp_path / "npz")
        raw_store = dataset.save(tmp_path / "raw", layout="raw")
        decomp = CartesianDecomposition(
            config.shape, nranks=2, blocks_per_subdomain=(2, 1, 1)
        )
        npz_iters = list(DatasetReplayer(npz_store).per_rank_blocks(decomp, count=2))
        raw_iters = list(
            DatasetReplayer(raw_store, mmap=True).per_rank_blocks(decomp, count=2)
        )
        for npz_ranks, raw_ranks in zip(npz_iters, raw_iters):
            for npz_blocks, raw_blocks in zip(npz_ranks, raw_ranks):
                assert len(npz_blocks) == len(raw_blocks)
                for a, b in zip(npz_blocks, raw_blocks):
                    assert a.extent == b.extent
                    np.testing.assert_array_equal(a.data, b.data)


class TestCM1Dataset:
    def test_len_iter_and_cache(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=3)
        assert len(dataset) == 3
        snapshots = list(dataset)
        assert len(snapshots) == 3
        assert dataset.snapshot(1) is snapshots[1]  # cached object identity

    def test_index_bounds(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=2)
        with pytest.raises(IndexError):
            dataset.snapshot(2)

    def test_select_equally_spaced(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=10)
        assert dataset.select(3) == [0, 4, 9] or len(dataset.select(3)) == 3

    def test_save_and_load_roundtrip(self, tmp_path):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=2)
        dataset.save(tmp_path / "saved")
        stored = CM1Dataset.load(tmp_path / "saved")
        assert len(stored) == 2
        original = dataset.snapshot(0).get_field("dbz")
        loaded = stored.snapshot(0).get_field("dbz")
        np.testing.assert_allclose(original, loaded, rtol=1e-6)

    def test_load_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CM1Dataset.load(tmp_path / "nope")

    def test_per_rank_blocks_cover_domain(self):
        config = CM1Config.tiny()
        dataset = CM1Dataset(config, nsnapshots=1)
        decomp = CartesianDecomposition(config.shape, nranks=4, blocks_per_subdomain=(2, 2, 1))
        per_rank = dataset.per_rank_blocks(decomp, 0)
        assert len(per_rank) == 4
        total_points = sum(b.extent.npoints for blocks in per_rank for b in blocks)
        assert total_points == int(np.prod(config.shape))
