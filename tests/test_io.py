"""Tests for repro.io and the CM1 dataset replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cm1.config import CM1Config
from repro.cm1.dataset import CM1Dataset, StoredCM1Dataset
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid
from repro.io.manifest import DatasetManifest, IterationRecord
from repro.io.replay import DatasetReplayer, equally_spaced
from repro.io.store import DatasetStore


class TestManifest:
    def test_json_roundtrip(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(5, "iter_5.npz", ["dbz"], 100))
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.shape == (4, 4, 2)
        assert restored.iterations[0].iteration == 5

    def test_iterations_must_increase(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(5, "a.npz", ["dbz"]))
        with pytest.raises(ValueError):
            manifest.add_iteration(IterationRecord(5, "b.npz", ["dbz"]))

    def test_record_validation(self):
        with pytest.raises(ValueError):
            IterationRecord(-1, "a.npz", ["dbz"]).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "", ["dbz"]).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "a.npz", []).validate()
        with pytest.raises(ValueError):
            IterationRecord(1, "a.npz", ["dbz"], dtypes={"ghost": "<f4"}).validate()

    def test_record_dtypes_roundtrip(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(
            IterationRecord(1, "a.npz", ["dbz"], dtypes={"dbz": "<f8"})
        )
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.iterations[0].dtypes == {"dbz": "<f8"}

    def test_record_without_dtypes_accepted(self):
        """Manifests written before dtypes were tracked still load."""
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(1, "a.npz", ["dbz"]))
        text = manifest.to_json().replace('"dtypes": {},', "")
        restored = DatasetManifest.from_json(text)
        assert restored.iterations[0].dtypes == {}

    def test_find(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        manifest.add_iteration(IterationRecord(3, "a.npz", ["dbz"]))
        assert manifest.find(3) is not None
        assert manifest.find(4) is None

    def test_unsupported_version(self):
        manifest = DatasetManifest(shape=(4, 4, 2))
        text = manifest.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            DatasetManifest.from_json(text)

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetManifest.load(tmp_path)


class TestDatasetStore:
    def _domain(self, iteration=0, value=1.0):
        grid = RectilinearGrid.uniform((6, 6, 4))
        field = np.full((6, 6, 4), value, dtype=np.float32)
        return Domain(grid=grid, fields={"dbz": field}, iteration=iteration)

    def test_create_append_load(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)), metadata={"seed": 1})
        store.append(self._domain(0, 1.0))
        store.append(self._domain(2, 2.0))
        assert store.iterations() == [0, 2]
        loaded = store.load_iteration(2)
        np.testing.assert_allclose(loaded.get_field("dbz"), 2.0)
        assert loaded.iteration == 2

    def test_create_twice_rejected(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        with pytest.raises(FileExistsError):
            store.create(RectilinearGrid.uniform((6, 6, 4)))

    def test_shape_mismatch_rejected(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        grid = RectilinearGrid.uniform((5, 5, 4))
        bad = Domain(grid=grid, fields={"dbz": np.zeros((5, 5, 4))}, iteration=0)
        with pytest.raises(ValueError):
            store.append(bad)

    def test_missing_iteration(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        with pytest.raises(KeyError):
            store.load_iteration(7)

    def test_missing_field(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        store.create(RectilinearGrid.uniform((6, 6, 4)))
        store.append(self._domain(0))
        with pytest.raises(KeyError):
            store.load_iteration(0, fields=["nonexistent"])

    def test_grid_roundtrip(self, tmp_path):
        store = DatasetStore(tmp_path / "ds")
        grid = RectilinearGrid.cm1_like((8, 8, 6))
        store.create(grid)
        loaded = store.grid()
        np.testing.assert_allclose(loaded.x, grid.x)

    def test_dtype_preserved_roundtrip(self, tmp_path):
        """float64 fields must round-trip bit-exactly (no silent float32 cast),
        and float32 fields must stay float32."""
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid)
        rng = np.random.default_rng(42)
        f64 = rng.normal(size=(6, 6, 4))  # float64, not float32-representable
        f32 = rng.normal(size=(6, 6, 4)).astype(np.float32)
        store.append(Domain(grid=grid, fields={"a": f64, "b": f32}, iteration=0))
        loaded = store.load_iteration(0)
        assert loaded.get_field("a").dtype == np.float64
        assert loaded.get_field("b").dtype == np.float32
        np.testing.assert_array_equal(loaded.get_field("a"), f64)
        np.testing.assert_array_equal(loaded.get_field("b"), f32)
        record = store.manifest().find(0)
        assert np.dtype(record.dtypes["a"]) == np.float64
        assert np.dtype(record.dtypes["b"]) == np.float32

    def test_dtype_survives_manifest_reload(self, tmp_path):
        """The recorded dtypes survive a manifest reload from disk."""
        grid = RectilinearGrid.uniform((6, 6, 4))
        store = DatasetStore(tmp_path / "ds")
        store.create(grid)
        f64 = np.full((6, 6, 4), 1.0 + 1e-12)  # lost under a float32 cast
        store.append(Domain(grid=grid, fields={"dbz": f64}, iteration=0))
        fresh = DatasetStore(tmp_path / "ds")
        loaded = fresh.load_iteration(0)
        assert loaded.get_field("dbz").dtype == np.float64
        np.testing.assert_array_equal(loaded.get_field("dbz"), f64)


class TestReplay:
    def test_equally_spaced_selection(self):
        available = list(range(100))
        picks = equally_spaced(available, 10)
        assert len(picks) == 10
        assert picks[0] == 0 and picks[-1] == 99

    def test_equally_spaced_more_than_available(self):
        assert equally_spaced([1, 2, 3], 10) == [1, 2, 3]

    def test_equally_spaced_errors(self):
        with pytest.raises(ValueError):
            equally_spaced([], 3)
        with pytest.raises(ValueError):
            equally_spaced([1], 0)

    def test_replayer_per_rank_blocks(self, tmp_path):
        config = CM1Config.tiny()
        dataset = CM1Dataset(config, nsnapshots=3)
        store = dataset.save(tmp_path / "cm1")
        replayer = DatasetReplayer(store)
        decomp = CartesianDecomposition(config.shape, nranks=2, blocks_per_subdomain=(2, 1, 1))
        iterations = list(replayer.per_rank_blocks(decomp, count=2))
        assert len(iterations) == 2
        assert len(iterations[0]) == 2  # per rank
        total_blocks = sum(len(blocks) for blocks in iterations[0])
        assert total_blocks == decomp.nblocks


class TestCM1Dataset:
    def test_len_iter_and_cache(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=3)
        assert len(dataset) == 3
        snapshots = list(dataset)
        assert len(snapshots) == 3
        assert dataset.snapshot(1) is snapshots[1]  # cached object identity

    def test_index_bounds(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=2)
        with pytest.raises(IndexError):
            dataset.snapshot(2)

    def test_select_equally_spaced(self):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=10)
        assert dataset.select(3) == [0, 4, 9] or len(dataset.select(3)) == 3

    def test_save_and_load_roundtrip(self, tmp_path):
        dataset = CM1Dataset(CM1Config.tiny(), nsnapshots=2)
        dataset.save(tmp_path / "saved")
        stored = CM1Dataset.load(tmp_path / "saved")
        assert len(stored) == 2
        original = dataset.snapshot(0).get_field("dbz")
        loaded = stored.snapshot(0).get_field("dbz")
        np.testing.assert_allclose(original, loaded, rtol=1e-6)

    def test_load_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CM1Dataset.load(tmp_path / "nope")

    def test_per_rank_blocks_cover_domain(self):
        config = CM1Config.tiny()
        dataset = CM1Dataset(config, nsnapshots=1)
        decomp = CartesianDecomposition(config.shape, nranks=4, blocks_per_subdomain=(2, 2, 1))
        per_rank = dataset.per_rank_blocks(decomp, 0)
        assert len(per_rank) == 4
        total_points = sum(b.extent.npoints for blocks in per_rank for b in blocks)
        assert total_points == int(np.prod(config.shape))
