"""Tests of the experiment drivers at unit-test scale.

The benchmarks regenerate the paper's tables and figures at their full
(laptop) scale; these tests exercise the same drivers on tiny scenarios so
the shapes and invariants are checked quickly on every test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentScenario,
    ScenarioConfig,
    bench_scale,
    render_baseline_seconds,
)
from repro.experiments.fig1_renderings import run_fig1
from repro.experiments.fig3_metric_agreement import format_fig3, run_fig3
from repro.experiments.fig4_scoremaps import format_fig4, run_fig4
from repro.experiments.fig5_redistribution import format_fig5, run_fig5
from repro.experiments.fig6_7_reduction import format_fig6, format_fig7, run_reduction_sweep
from repro.experiments.fig8_comm import format_fig8, run_comm_sweep
from repro.experiments.fig9_combined import format_fig9, run_combined_sweep
from repro.experiments.fig10_adaptation import format_fig10, run_adaptation
from repro.experiments.fig11_full_pipeline import run_full_pipeline_adaptation
from repro.experiments.table1_metric_cost import format_table, run_table1


@pytest.fixture(scope="module")
def scenario():
    """A 16-rank scenario small enough for driver tests."""
    return ExperimentScenario(
        ScenarioConfig(ncores=16, shape=(88, 88, 24), blocks_per_subdomain=(2, 2, 2), nsnapshots=4)
    )


class TestScenario:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "small"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale() == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()

    def test_render_baseline(self):
        assert render_baseline_seconds(64) == 160.0
        assert render_baseline_seconds(400) == 50.0
        assert render_baseline_seconds(32) == pytest.approx(320.0)

    def test_calibration_anchors_baseline(self, scenario):
        pipeline = scenario.build_pipeline(metric="VAR", redistribution="none")
        result, _ = pipeline.process_iteration(scenario.blocks_for(0), percent_override=0.0)
        target = render_baseline_seconds(scenario.nranks)
        assert result.modelled_rendering == pytest.approx(target, rel=0.01)

    def test_blocks_cached(self, scenario):
        a = scenario.blocks_for(0)
        b = scenario.blocks_for(0)
        assert a is b

    def test_iteration_blocks_count(self, scenario):
        assert len(scenario.iteration_blocks(2)) == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ScenarioConfig(ncores=0)
        with pytest.raises(ValueError):
            ScenarioConfig(nsnapshots=0)


class TestTable1:
    def test_rows_and_format(self, scenario):
        rows = run_table1(scenario, metrics=("VAR", "LEA", "RANGE"), max_blocks=16)
        assert [r.metric for r in rows] == ["VAR", "LEA", "RANGE"]
        for row in rows:
            assert row.measured_seconds >= 0
            assert row.modelled_seconds_64 > 0
            assert row.modelled_seconds_400 < row.modelled_seconds_64
        text = format_table(rows)
        assert "VAR" in text and "Table I" in text

    def test_modelled_matches_paper_within_tolerance(self, scenario):
        rows = run_table1(scenario, metrics=("VAR", "LEA", "ITL", "TRILIN"), max_blocks=4)
        for row in rows:
            assert row.modelled_seconds_64 == pytest.approx(row.paper_seconds_64, rel=0.2)
            assert row.modelled_seconds_400 == pytest.approx(row.paper_seconds_400, rel=0.2)


class TestFig1:
    def test_images_and_cost_gap(self, scenario, tmp_path):
        result = run_fig1(scenario)
        assert result.volume_original.shape == result.volume_filtered.shape
        assert result.colormap_original.shape == scenario.config.shape[:2]
        # Filtering (reducing every block) must slash the rendering cost.
        assert result.render_seconds_filtered < 0.2 * result.render_seconds_original
        # The filtered image still shows the storm (non-trivial content).
        assert result.volume_filtered.max() > 0.2
        paths = result.save(tmp_path)
        assert len(paths) == 4 and all(p.exists() for p in paths.values())


class TestFig3:
    def test_pairs_and_quiet_prefix(self, scenario):
        result = run_fig3(scenario, metrics=("VAR", "RANGE", "LEA", "TRILIN"), max_blocks=96)
        assert len(result.comparisons) == 6  # C(4,2)
        for comp in result.comparisons:
            assert -1.0 <= comp.spearman <= 1.0
        # Metrics broadly agree on ordering (positive rank correlation).
        var_range = result.pair("VAR", "RANGE")
        assert var_range.spearman > 0.3
        assert "Figure 3" in format_fig3(result)

    def test_quiet_blocks_exist(self, scenario):
        result = run_fig3(scenario, metrics=("VAR", "RANGE"), max_blocks=96)
        assert all(q >= 1 for q in result.quiet_prefix_size.values())


class TestFig4:
    def test_scoremaps_overlap_storm(self, scenario):
        result = run_fig4(scenario, metrics=("VAR", "TRILIN", "LEA"))
        assert set(result.scoremaps) == {"VAR", "TRILIN", "LEA"}
        for name, overlap in result.storm_overlap.items():
            assert 0.0 <= overlap <= 1.0
        # Every metric scores the storm's footprint higher, on average, than
        # the quiet background (the paper's scoremaps show the same contrast).
        field = np.asarray(scenario.dataset.snapshot(0).get_field("dbz"))
        storm_cols = field.max(axis=2) > 0.0
        for name in ("VAR", "TRILIN", "LEA"):
            norm = result.scoremaps[name].normalised()
            assert norm[storm_cols].mean() > norm[~storm_cols].mean()
        assert "Figure 4" in format_fig4(result)


class TestFig5:
    def test_redistribution_speedup(self, scenario):
        result = run_fig5(scenario, niterations=2, fast_metric_only=True)
        assert result.row("NONE").mean_seconds == pytest.approx(
            render_baseline_seconds(scenario.nranks), rel=0.3
        )
        assert result.speedup("SHUFFLE") > 1.2
        assert result.speedup("VAR") > 1.2
        assert "Figure 5" in format_fig5(result)

    def test_rows_accessible(self, scenario):
        result = run_fig5(scenario, niterations=1, fast_metric_only=True)
        with pytest.raises(KeyError):
            result.row("MISSING")


class TestReductionSweeps:
    def test_fig7_monotone_decrease(self, scenario):
        result = run_reduction_sweep(scenario, percentages=(0, 50, 90, 100), niterations=2)
        means = result.means()
        assert means[0] == max(means)
        assert means[-1] == min(means)
        assert means[-1] < 0.1 * means[0]
        assert "Figure 7" in format_fig7(result)
        assert "Figure 6" in format_fig6(result)

    def test_fig7_flat_then_steep(self, scenario):
        """The paper: most of the benefit only appears at high percentages."""
        result = run_reduction_sweep(scenario, percentages=(0, 50, 100), niterations=2)
        drop_first_half = result.mean(0) - result.mean(50)
        drop_second_half = result.mean(50) - result.mean(100)
        assert drop_second_half > drop_first_half

    def test_fig8_comm_decreases_with_percent(self, scenario):
        result = run_comm_sweep(
            scenario, percentages=(0, 50, 100), niterations=2, strategies=("round_robin", "shuffle")
        )
        for strategy in ("round_robin", "shuffle"):
            means = result.means(strategy)
            assert means[0] > means[-1]
        assert "Figure 8" in format_fig8(result)

    def test_fig9_redistribution_helps_at_every_percent(self, scenario):
        result = run_combined_sweep(
            scenario, percentages=(0, 90, 100), niterations=2, strategies=("none", "round_robin")
        )
        for percent in (0, 90):
            assert result.mean("round_robin", percent) <= result.mean("none", percent) * 1.05
        assert "Figure 9" in format_fig9(result)


class TestAdaptationFigures:
    def test_fig10_converges(self, scenario):
        baseline = render_baseline_seconds(scenario.nranks)
        targets = (baseline / 4.0,)
        result = run_adaptation(scenario, targets=targets, niterations=12)
        trace = result.traces[targets[0]]
        assert len(trace.times) == 12
        assert trace.converged(warmup=5, tolerance=0.6)
        # Percentages respond (some data is sacrificed to meet the budget).
        assert max(trace.percents) > 10.0
        assert "target" in format_fig10(result)

    def test_fig11_tighter_target_with_redistribution(self, scenario):
        baseline = render_baseline_seconds(scenario.nranks)
        targets = (baseline / 10.0,)
        result = run_full_pipeline_adaptation(scenario, targets=targets, niterations=12)
        trace = result.traces[targets[0]]
        assert result.redistribution == "round_robin"
        tail = np.asarray(trace.times[6:])
        assert np.median(tail) <= 2.5 * targets[0]
