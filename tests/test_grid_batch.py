"""Tests for the BlockBatch structure-of-arrays container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.batch import BlockBatch, partition_by_shape
from repro.grid.block import Block, BlockExtent


def make_block(block_id, shape=(4, 3, 2), offset=0, dtype=np.float32, **kwargs):
    rng = np.random.default_rng(block_id + 7)
    extent = BlockExtent(
        start=(offset, 0, 0),
        stop=(offset + shape[0], shape[1], shape[2]),
    )
    data = rng.normal(size=shape).astype(dtype)
    return Block(block_id=block_id, extent=extent, data=data, **kwargs)


class TestBlockBatchRoundTrip:
    def test_lossless_round_trip(self):
        blocks = [
            make_block(0, owner=1, home=2, field_name="qv"),
            make_block(1, offset=4).with_score(3.25),
            make_block(2, offset=8),
        ]
        batch = BlockBatch.from_blocks(blocks)
        rebuilt = batch.to_blocks()
        assert len(rebuilt) == len(blocks)
        for original, copy in zip(blocks, rebuilt):
            assert copy.block_id == original.block_id
            assert copy.extent == original.extent
            assert copy.owner == original.owner
            assert copy.home == original.home
            assert copy.reduced == original.reduced
            assert copy.score == original.score
            assert copy.field_name == original.field_name
            assert copy.data.dtype == original.data.dtype
            np.testing.assert_array_equal(copy.data, original.data)

    def test_round_trip_preserves_nan_score(self):
        blocks = [make_block(0).with_score(float("nan")), make_block(1, offset=4)]
        rebuilt = BlockBatch.from_blocks(blocks).to_blocks()
        assert np.isnan(rebuilt[0].score)
        assert rebuilt[1].score is None

    def test_round_trip_reduced_blocks(self):
        block = make_block(0, shape=(4, 4, 4))
        from repro.grid.reduction import reduce_block

        reduced = reduce_block(block)
        rebuilt = BlockBatch.from_blocks([reduced]).to_blocks()[0]
        assert rebuilt.reduced
        np.testing.assert_array_equal(rebuilt.data, reduced.data)

    def test_payloads_are_copies(self):
        blocks = [make_block(0)]
        batch = BlockBatch.from_blocks(blocks)
        rebuilt = batch.to_blocks()[0]
        batch.data[0, 0, 0, 0] = 1e9
        assert rebuilt.data[0, 0, 0] != 1e9


class TestBlockBatchProperties:
    def test_shape_and_counts(self):
        blocks = [make_block(i, offset=4 * i) for i in range(3)]
        batch = BlockBatch.from_blocks(blocks)
        assert batch.nblocks == 3
        assert batch.block_shape == (4, 3, 2)
        assert batch.npoints == 3 * 4 * 3 * 2
        assert batch.nbytes == sum(b.nbytes for b in blocks)
        assert batch.flat_data.shape == (3, 24)

    def test_with_scores(self):
        blocks = [make_block(i, offset=4 * i) for i in range(2)]
        batch = BlockBatch.from_blocks(blocks).with_scores(np.array([1.0, 2.0]))
        assert batch.score_mask.all()
        assert [b.score for b in batch.to_blocks()] == [1.0, 2.0]

    def test_with_scores_wrong_shape(self):
        batch = BlockBatch.from_blocks([make_block(0)])
        with pytest.raises(ValueError):
            batch.with_scores(np.array([1.0, 2.0]))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            BlockBatch.from_blocks([])

    def test_mixed_shapes_rejected(self):
        blocks = [make_block(0), make_block(1, shape=(5, 3, 2), offset=4)]
        with pytest.raises(ValueError):
            BlockBatch.from_blocks(blocks)


class TestPartitionByShape:
    def test_groups_cover_all_positions(self):
        blocks = [
            make_block(0),
            make_block(1, shape=(5, 3, 2), offset=4),
            make_block(2, offset=9),
            make_block(3, shape=(5, 3, 2), offset=13),
        ]
        groups = partition_by_shape(blocks)
        assert len(groups) == 2
        covered = sorted(i for indices, _ in groups for i in indices)
        assert covered == [0, 1, 2, 3]
        for indices, batch in groups:
            assert batch.nblocks == len(indices)
            for row, position in enumerate(indices):
                np.testing.assert_array_equal(batch.data[row], blocks[position].data)

    def test_groups_split_by_dtype(self):
        blocks = [make_block(0), make_block(1, offset=4, dtype=np.float64)]
        groups = partition_by_shape(blocks)
        assert len(groups) == 2

    def test_empty_input(self):
        assert partition_by_shape([]) == []
