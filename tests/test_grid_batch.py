"""Tests for the BlockBatch structure-of-arrays container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.batch import BlockBatch, partition_by_shape
from repro.grid.block import Block, BlockExtent


def make_block(block_id, shape=(4, 3, 2), offset=0, dtype=np.float32, **kwargs):
    rng = np.random.default_rng(block_id + 7)
    extent = BlockExtent(
        start=(offset, 0, 0),
        stop=(offset + shape[0], shape[1], shape[2]),
    )
    data = rng.normal(size=shape).astype(dtype)
    return Block(block_id=block_id, extent=extent, data=data, **kwargs)


class TestBlockBatchRoundTrip:
    def test_lossless_round_trip(self):
        blocks = [
            make_block(0, owner=1, home=2, field_name="qv"),
            make_block(1, offset=4).with_score(3.25),
            make_block(2, offset=8),
        ]
        batch = BlockBatch.from_blocks(blocks)
        rebuilt = batch.to_blocks()
        assert len(rebuilt) == len(blocks)
        for original, copy in zip(blocks, rebuilt):
            assert copy.block_id == original.block_id
            assert copy.extent == original.extent
            assert copy.owner == original.owner
            assert copy.home == original.home
            assert copy.reduced == original.reduced
            assert copy.score == original.score
            assert copy.field_name == original.field_name
            assert copy.data.dtype == original.data.dtype
            np.testing.assert_array_equal(copy.data, original.data)

    def test_round_trip_preserves_nan_score(self):
        blocks = [make_block(0).with_score(float("nan")), make_block(1, offset=4)]
        rebuilt = BlockBatch.from_blocks(blocks).to_blocks()
        assert np.isnan(rebuilt[0].score)
        assert rebuilt[1].score is None

    def test_round_trip_reduced_blocks(self):
        block = make_block(0, shape=(4, 4, 4))
        from repro.grid.reduction import reduce_block

        reduced = reduce_block(block)
        rebuilt = BlockBatch.from_blocks([reduced]).to_blocks()[0]
        assert rebuilt.reduced
        np.testing.assert_array_equal(rebuilt.data, reduced.data)

    def test_payloads_are_copies(self):
        blocks = [make_block(0)]
        batch = BlockBatch.from_blocks(blocks)
        rebuilt = batch.to_blocks()[0]
        batch.data[0, 0, 0, 0] = 1e9
        assert rebuilt.data[0, 0, 0] != 1e9


class TestBlockBatchProperties:
    def test_shape_and_counts(self):
        blocks = [make_block(i, offset=4 * i) for i in range(3)]
        batch = BlockBatch.from_blocks(blocks)
        assert batch.nblocks == 3
        assert batch.block_shape == (4, 3, 2)
        assert batch.npoints == 3 * 4 * 3 * 2
        assert batch.nbytes == sum(b.nbytes for b in blocks)
        assert batch.flat_data.shape == (3, 24)

    def test_with_scores(self):
        blocks = [make_block(i, offset=4 * i) for i in range(2)]
        batch = BlockBatch.from_blocks(blocks).with_scores(np.array([1.0, 2.0]))
        assert batch.score_mask.all()
        assert [b.score for b in batch.to_blocks()] == [1.0, 2.0]

    def test_with_scores_wrong_shape(self):
        batch = BlockBatch.from_blocks([make_block(0)])
        with pytest.raises(ValueError):
            batch.with_scores(np.array([1.0, 2.0]))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            BlockBatch.from_blocks([])

    def test_mixed_shapes_rejected(self):
        blocks = [make_block(0), make_block(1, shape=(5, 3, 2), offset=4)]
        with pytest.raises(ValueError):
            BlockBatch.from_blocks(blocks)


class TestBatchReductionLadder:
    """Batched ladder kernels and level metadata through BlockBatch."""

    def test_levels_round_trip(self):
        from repro.grid.reduction import reduce_block

        # A full 3x3x3 block and the level-1 payload of a 4x4x4 block share
        # the payload shape (3, 3, 3), so they stack into one batch.
        full = make_block(0, shape=(3, 3, 3), dtype=np.float64)
        lvl1 = reduce_block(make_block(1, shape=(4, 4, 4), offset=4, dtype=np.float64), level=1)
        rebuilt = BlockBatch.from_blocks([full, lvl1]).to_blocks()
        assert [b.level for b in rebuilt] == [0, 1]
        assert [b.reduced for b in rebuilt] == [False, True]
        np.testing.assert_array_equal(rebuilt[1].data, lvl1.data)

    def test_mixed_levels_in_one_shape_group(self):
        """Blocks of different ladder levels can share one batch group.

        A level-2 payload is always 2x2x2, and a level-1 payload of a 3x3x3
        block is *also* 2x2x2 — the batch groups by payload shape, so both
        land in the same group and the ``levels`` array must keep them apart.
        """
        from repro.grid.reduction import reduce_block

        lvl2 = reduce_block(make_block(0, shape=(4, 4, 4), dtype=np.float64), level=2)
        lvl1 = reduce_block(make_block(1, shape=(3, 3, 3), offset=4, dtype=np.float64), level=1)
        assert lvl2.data.shape == lvl1.data.shape == (2, 2, 2)
        batch = BlockBatch.from_blocks([lvl2, lvl1])
        assert list(batch.levels) == [2, 1]
        rebuilt = batch.to_blocks()
        assert [b.level for b in rebuilt] == [2, 1]
        assert all(b.reduced for b in rebuilt)

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_batched_reduce_matches_scalar(self, level):
        from repro.grid.reduction import reduce_to_level, reduce_to_level_batch

        rng = np.random.default_rng(11)
        stack = rng.normal(size=(5, 6, 5, 4))
        batched = reduce_to_level_batch(stack, level)
        for i in range(stack.shape[0]):
            np.testing.assert_array_equal(batched[i], reduce_to_level(stack[i], level))

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_batched_expand_matches_scalar(self, level):
        from repro.grid.reduction import (
            expand_from_level,
            expand_from_level_batch,
            reduce_to_level_batch,
        )

        rng = np.random.default_rng(12)
        shape = (6, 5, 4)
        stack = rng.normal(size=(4,) + shape)
        payload = reduce_to_level_batch(stack, level)
        batched = expand_from_level_batch(payload, level, shape)
        for i in range(stack.shape[0]):
            np.testing.assert_array_equal(
                batched[i], expand_from_level(payload[i], level, shape)
            )

    @pytest.mark.parametrize("shape", [(1, 4, 3), (4, 1, 3), (1, 1, 1)])
    def test_batched_degenerate_axis_roundtrip(self, shape):
        """Length-1 axes survive the batched level-1 round-trip exactly."""
        from repro.grid.block import axis_sample_indices
        from repro.grid.reduction import expand_from_level_batch, reduce_to_level_batch

        rng = np.random.default_rng(13)
        stack = rng.normal(size=(3,) + shape)
        payload = reduce_to_level_batch(stack, 1)
        rebuilt = expand_from_level_batch(payload, 1, shape)
        ix, iy, iz = (np.asarray(axis_sample_indices(n)) for n in shape)
        np.testing.assert_array_equal(
            rebuilt[:, ix[:, None, None], iy[None, :, None], iz[None, None, :]],
            stack[:, ix[:, None, None], iy[None, :, None], iz[None, None, :]],
        )


class TestPartitionByShape:
    def test_groups_cover_all_positions(self):
        blocks = [
            make_block(0),
            make_block(1, shape=(5, 3, 2), offset=4),
            make_block(2, offset=9),
            make_block(3, shape=(5, 3, 2), offset=13),
        ]
        groups = partition_by_shape(blocks)
        assert len(groups) == 2
        covered = sorted(i for indices, _ in groups for i in indices)
        assert covered == [0, 1, 2, 3]
        for indices, batch in groups:
            assert batch.nblocks == len(indices)
            for row, position in enumerate(indices):
                np.testing.assert_array_equal(batch.data[row], blocks[position].data)

    def test_groups_split_by_dtype(self):
        blocks = [make_block(0), make_block(1, offset=4, dtype=np.float64)]
        groups = partition_by_shape(blocks)
        assert len(groups) == 2

    def test_empty_input(self):
        assert partition_by_shape([]) == []
