"""Tests for the ExecutionEngine, the step contract, and backend parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import backends as backends_module
from repro.core.backends import (
    STEP_NAMES,
    StepBuildContext,
    build_step,
    engine_backends,
    register_step_backend,
    registered_steps,
    resolve_step_factory,
)
from repro.core.config import AdaptationConfig, PipelineConfig
from repro.core.engine import ENGINE_BACKENDS, ExecutionEngine, PipelinedEngine
from repro.core.reduction_step import (
    ParallelReductionStep,
    ReductionStep,
    VectorizedReductionStep,
)
from repro.core.rendering_step import (
    ParallelRenderingStep,
    RenderingStep,
    VectorizedRenderingStep,
)
from repro.core.scoring_step import (
    ParallelScoringStep,
    ScoringStep,
    VectorizedScoringStep,
)
from repro.core.sorting_step import SortingStep, VectorizedSortingStep
from repro.core.step import (
    STAGE_GRAPH,
    IterationContext,
    PipelineStep,
    StepReport,
    stage_spec,
)
from repro.perfmodel.platform import PlatformModel


class TestStepReport:
    def test_maxima(self):
        report = StepReport(
            step="scoring",
            measured_per_rank=[0.1, 0.3, 0.2],
            modelled_per_rank=[1.0, 4.0, 2.0],
        )
        assert report.measured_max == pytest.approx(0.3)
        assert report.modelled_max == pytest.approx(4.0)

    def test_empty_maxima(self):
        report = StepReport(step="x")
        assert report.measured_max == 0.0
        assert report.modelled_max == 0.0

    def test_collective(self):
        report = StepReport.collective(
            "sorting", measured=0.5, modelled=2.5, payload_bytes=128.0
        )
        assert report.measured_per_rank == [0.5]
        assert report.modelled_max == pytest.approx(2.5)
        assert report.payload_bytes == pytest.approx(128.0)


class TestIterationContext:
    def test_requires_raise_before_steps(self):
        context = IterationContext(
            iteration=0, percent=0.0, nranks=1, per_rank_blocks=[[]]
        )
        with pytest.raises(RuntimeError):
            context.require_pairs()
        with pytest.raises(RuntimeError):
            context.require_sorted()


class TestEngineConstruction:
    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ExecutionEngine(
                PipelineConfig(), PlatformModel.blue_waters(4), backend="gpu"
            )

    def test_invalid_engine_in_config(self):
        with pytest.raises(ValueError):
            PipelineConfig(engine="banana")

    def test_backend_selects_scoring_step(self):
        platform = PlatformModel.blue_waters(4)
        serial = ExecutionEngine(PipelineConfig(engine="serial"), platform)
        vector = ExecutionEngine(PipelineConfig(engine="vectorized"), platform)
        par = ExecutionEngine(PipelineConfig(engine="parallel"), platform)
        assert type(serial.scoring) is ScoringStep
        assert type(vector.scoring) is VectorizedScoringStep
        assert type(par.scoring) is ParallelScoringStep
        assert serial.backend == "serial"
        assert vector.backend == "vectorized"
        assert par.backend == "parallel"

    def test_backend_selects_rendering_step(self):
        platform = PlatformModel.blue_waters(4)
        serial = ExecutionEngine(PipelineConfig(engine="serial"), platform)
        vector = ExecutionEngine(PipelineConfig(engine="vectorized"), platform)
        par = ExecutionEngine(PipelineConfig(engine="parallel"), platform)
        assert type(serial.rendering) is RenderingStep
        assert type(vector.rendering) is VectorizedRenderingStep
        assert type(par.rendering) is ParallelRenderingStep

    def test_backend_selects_sorting_step(self):
        platform = PlatformModel.blue_waters(4)
        serial = ExecutionEngine(PipelineConfig(engine="serial"), platform)
        vector = ExecutionEngine(PipelineConfig(engine="vectorized"), platform)
        par = ExecutionEngine(PipelineConfig(engine="parallel"), platform)
        assert type(serial.sorting) is SortingStep
        # The sort is a rooted collective: vectorized and parallel share the
        # NumPy lexsort path.
        assert type(vector.sorting) is VectorizedSortingStep
        assert type(par.sorting) is VectorizedSortingStep

    def test_backend_selects_reduction_step(self):
        platform = PlatformModel.blue_waters(4)
        serial = ExecutionEngine(PipelineConfig(engine="serial"), platform)
        vector = ExecutionEngine(PipelineConfig(engine="vectorized"), platform)
        par = ExecutionEngine(PipelineConfig(engine="parallel"), platform)
        assert type(serial.reduction) is ReductionStep
        assert type(vector.reduction) is VectorizedReductionStep
        assert type(par.reduction) is ParallelReductionStep
        # The step derives its modelled cost from the engine's platform.
        assert vector.reduction.platform is platform

    def test_steps_satisfy_protocol(self):
        engine = ExecutionEngine(PipelineConfig(), PlatformModel.blue_waters(4))
        assert [step.name for step in engine.steps] == list(STEP_NAMES)
        for step in engine.steps:
            assert isinstance(step, PipelineStep)

    def test_backends_constant(self):
        assert ENGINE_BACKENDS == ("serial", "vectorized", "parallel", "process")


class TestBackendRegistry:
    """The registry is the single source of step implementations."""

    @pytest.fixture(autouse=True)
    def _cleanup_custom_backend(self):
        """Remove any test-registered backend so registrations don't leak."""
        yield
        for key in [k for k in backends_module._REGISTRY if k[1] == "warp10"]:
            del backends_module._REGISTRY[key]
        if "warp10" in backends_module._BACKEND_ORDER:
            backends_module._BACKEND_ORDER.remove("warp10")

    def test_engine_backends_derived_from_registry(self):
        assert engine_backends() == ("serial", "vectorized", "parallel", "process")
        register_step_backend(
            "scoring", "warp10", lambda ctx: ScoringStep(ctx.metric, ctx.platform)
        )
        assert engine_backends() == (
            "serial", "vectorized", "parallel", "process", "warp10",
        )
        # The config/engine re-exports see the registration too.
        from repro.core import config as config_module
        from repro.core import engine as engine_module

        assert config_module.ENGINE_BACKENDS == engine_backends()
        assert engine_module.ENGINE_BACKENDS == engine_backends()

    def test_every_builtin_step_registered_per_backend(self):
        for backend in ("serial", "vectorized", "parallel", "process"):
            assert set(registered_steps(backend)) == set(STEP_NAMES)

    def test_resolve_unknown_step_raises(self):
        with pytest.raises(KeyError):
            resolve_step_factory("composition", "serial")

    def test_third_party_backend_with_serial_fallback(self, tiny_scenario):
        """A backend registering only one step is selectable; the other steps
        fall back to the serial reference implementations."""

        class TracingScoringStep(ScoringStep):
            pass

        register_step_backend(
            "scoring",
            "warp10",
            lambda ctx: TracingScoringStep(ctx.metric, ctx.platform),
        )
        config = PipelineConfig(engine="warp10", redistribution="round_robin")
        engine = ExecutionEngine(
            config, tiny_scenario.platform, nranks=tiny_scenario.nranks
        )
        assert type(engine.scoring) is TracingScoringStep
        assert type(engine.sorting) is SortingStep
        assert type(engine.reduction) is ReductionStep
        assert type(engine.rendering) is RenderingStep
        # And the engine actually runs with the hybrid step set.
        context = engine.run_iteration(tiny_scenario.blocks_for(0), 25.0, 0)
        assert set(context.reports) == set(STEP_NAMES)

    def test_decorator_registration(self):
        @register_step_backend("scoring", "warp10")
        def make_scoring(ctx):
            return ScoringStep(ctx.metric, ctx.platform)

        assert resolve_step_factory("scoring", "warp10") is make_scoring
        assert "warp10" in engine_backends()

    def test_registration_validates_names(self):
        with pytest.raises(ValueError):
            register_step_backend("", "gpu", lambda ctx: None)
        with pytest.raises(ValueError):
            register_step_backend("scoring", "  ", lambda ctx: None)

    def test_build_step_uses_context(self, tiny_scenario):
        from repro.core.redistribution import make_strategy
        from repro.metrics.registry import create_metric
        from repro.simmpi.communicator import BSPCommunicator

        config = PipelineConfig()
        comm = BSPCommunicator(
            tiny_scenario.nranks, cost_model=tiny_scenario.platform.network
        )
        context = StepBuildContext(
            config=config,
            platform=tiny_scenario.platform,
            comm=comm,
            metric=create_metric("VAR"),
            strategy=make_strategy("none"),
            nranks=tiny_scenario.nranks,
            backend="serial",
        )
        step = build_step("sorting", "serial", context)
        assert type(step) is SortingStep
        assert step.comm is comm


class TestEngineExecution:
    def test_run_iteration_reports(self, tiny_scenario):
        engine = ExecutionEngine(
            PipelineConfig(redistribution="round_robin"),
            tiny_scenario.platform,
            nranks=tiny_scenario.nranks,
        )
        context = engine.run_iteration(tiny_scenario.blocks_for(0), 50.0, 0)
        assert set(context.reports) == {
            "scoring",
            "sorting",
            "reduction",
            "redistribution",
            "rendering",
        }
        scoring = context.reports["scoring"]
        assert scoring.counters["nblocks"] == tiny_scenario.nblocks
        assert context.reports["reduction"].counters["nreduced"] > 0
        assert context.reports["redistribution"].payload_bytes > 0
        assert context.reports["sorting"].payload_bytes > 0
        assert len(context.reports["rendering"].per_rank_counters["triangles"]) == (
            tiny_scenario.nranks
        )
        result = engine.iteration_result(context)
        assert result.step_reports is context.reports or result.step_reports == context.reports
        assert result.moved_bytes == context.reports["redistribution"].payload_bytes

    def test_rank_count_validated(self, tiny_scenario):
        engine = ExecutionEngine(PipelineConfig(), tiny_scenario.platform, nranks=4)
        with pytest.raises(ValueError):
            engine.run_iteration([[]], 0.0, 0)

    def test_percent_validated(self, tiny_scenario):
        engine = ExecutionEngine(
            PipelineConfig(), tiny_scenario.platform, nranks=tiny_scenario.nranks
        )
        with pytest.raises(ValueError):
            engine.run_iteration(tiny_scenario.blocks_for(0), 120.0, 0)


@pytest.mark.parametrize("metric", ["VAR", "ITL", "TRILIN", "LEA", "FPZIP"])
@pytest.mark.parametrize("redistribution", ["none", "round_robin"])
class TestBackendParity:
    """All three backends must be indistinguishable downstream."""

    def _trace(self, scenario, metric, redistribution, engine):
        pipeline = scenario.build_pipeline(
            metric=metric,
            redistribution=redistribution,
            adaptation=AdaptationConfig(enabled=True, target_seconds=5.0),
            engine=engine,
        )
        trace = []
        for i in range(4):
            result, _ = pipeline.process_iteration(scenario.blocks_for(i % 3))
            scoring = result.step_reports["scoring"]
            trace.append(
                (
                    result.percent_reduced,
                    result.nreduced,
                    result.moved_bytes,
                    tuple(result.triangles_per_rank),
                    result.modelled_total,
                    scoring.modelled_per_rank,
                )
            )
        return trace

    def test_identical_trajectories(self, tiny_scenario, metric, redistribution):
        serial = self._trace(tiny_scenario, metric, redistribution, "serial")
        vector = self._trace(tiny_scenario, metric, redistribution, "vectorized")
        par = self._trace(tiny_scenario, metric, redistribution, "parallel")
        assert serial == vector
        assert serial == par

    def test_identical_scores_and_ids(self, tiny_scenario, metric, redistribution):
        blocks = tiny_scenario.blocks_for(0)
        traces = {}
        for engine in ("serial", "vectorized", "parallel"):
            pipeline = tiny_scenario.build_pipeline(
                metric=metric, redistribution=redistribution, engine=engine
            )
            context = pipeline.engine.run_iteration(blocks, 25.0, 0)
            traces[engine] = (
                context.sorted_pairs,
                sorted(context.reduced_ids),
                [
                    [(b.block_id, b.score) for b in rank]
                    for rank in context.per_rank_blocks
                ],
            )
        assert traces["serial"] == traces["vectorized"]
        assert traces["serial"] == traces["parallel"]


class TestParallelScoringStep:
    """The parallel backend's chunking must never perturb scores."""

    def test_scalar_metric_chunked_identically(self, tiny_scenario):
        from repro.metrics.base import ScoreMetric

        class Spiky(ScoreMetric):
            """A user-style scalar metric with no batch implementation."""

            name = "SPIKY"

            def score_block(self, data):
                return float(np.abs(np.asarray(data)).max())

        blocks = tiny_scenario.blocks_for(0)
        serial = ScoringStep(Spiky(), tiny_scenario.platform)
        par = ParallelScoringStep(Spiky(), tiny_scenario.platform, max_workers=3)
        assert serial.run(blocks)[0] == par.run(blocks)[0]

    def test_score_blocks_override_not_chunked(self, tiny_scenario):
        from repro.metrics.base import ScoreMetric

        class RankNormalized(ScoreMetric):
            """Cross-block semantics: chunking would change the peak."""

            name = "RANKNORM"

            def score_block(self, data):
                return float(np.ptp(np.asarray(data)))

            def score_blocks(self, blocks):
                raw = [self.score_block(b) for b in blocks]
                peak = max(raw) or 1.0
                return [r / peak for r in raw]

        blocks = tiny_scenario.blocks_for(0)
        serial = ScoringStep(RankNormalized(), tiny_scenario.platform)
        par = ParallelScoringStep(
            RankNormalized(), tiny_scenario.platform, max_workers=3
        )
        assert serial.run(blocks)[0] == par.run(blocks)[0]

    def test_batch_metric_chunked_identically(self, tiny_scenario):
        from repro.metrics.registry import create_metric

        blocks = tiny_scenario.blocks_for(0)
        # max_workers=2 forces several chunks per shape group.
        serial = ScoringStep(create_metric("FPZIP"), tiny_scenario.platform)
        par = ParallelScoringStep(
            create_metric("FPZIP"), tiny_scenario.platform, max_workers=2
        )
        assert serial.run(blocks)[0] == par.run(blocks)[0]

    def test_max_workers_validated(self, tiny_scenario):
        from repro.metrics.registry import create_metric

        with pytest.raises(ValueError):
            ParallelScoringStep(
                create_metric("VAR"), tiny_scenario.platform, max_workers=0
            )


class TestRenderingBackends:
    """All rendering backends must be indistinguishable downstream."""

    @staticmethod
    def _observable(step, blocks, iteration=0):
        results, info = step.run(blocks, iteration)
        return (
            [r.per_block_active_cells for r in results],
            [r.per_block_triangles for r in results],
            [r.npoints for r in results],
            info["triangles_per_rank"],
            info["modelled_per_rank"],
            info["total_triangles"],
        )

    @pytest.mark.parametrize("render_mode", ["count", "mesh"])
    def test_backend_parity(self, tiny_scenario, render_mode):
        blocks = tiny_scenario.blocks_for(0)
        platform = tiny_scenario.platform
        serial = RenderingStep(platform, render_mode=render_mode)
        vector = VectorizedRenderingStep(platform, render_mode=render_mode)
        # max_workers=3 forces several chunks across the 4 ranks.
        parallel = ParallelRenderingStep(
            platform, render_mode=render_mode, max_workers=3
        )
        reference = self._observable(serial, blocks)
        assert self._observable(vector, blocks) == reference
        assert self._observable(parallel, blocks) == reference

    def test_parity_with_reduced_blocks(self, tiny_scenario):
        from repro.grid.reduction import reduce_block

        blocks = [
            [reduce_block(b) if i % 2 else b for i, b in enumerate(rank_blocks)]
            for rank_blocks in tiny_scenario.blocks_for(0)
        ]
        platform = tiny_scenario.platform
        serial = RenderingStep(platform, render_mode="count")
        vector = VectorizedRenderingStep(platform, render_mode="count")
        parallel = ParallelRenderingStep(platform, render_mode="count", max_workers=3)
        reference = self._observable(serial, blocks)
        assert self._observable(vector, blocks) == reference
        assert self._observable(parallel, blocks) == reference

    def test_parallel_mesh_preserves_merged_mesh(self, tiny_scenario):
        """Mesh-mode chunking must reassemble per-block meshes in block order,
        so the merged per-rank mesh is identical to the serial backend's."""
        blocks = tiny_scenario.blocks_for(0)
        platform = tiny_scenario.platform
        serial_results, _ = RenderingStep(platform, render_mode="mesh").run(blocks, 0)
        parallel_results, _ = ParallelRenderingStep(
            platform, render_mode="mesh", max_workers=3
        ).run(blocks, 0)
        for serial_result, parallel_result in zip(serial_results, parallel_results):
            np.testing.assert_array_equal(
                parallel_result.mesh.vertices, serial_result.mesh.vertices
            )
            np.testing.assert_array_equal(
                parallel_result.mesh.triangles, serial_result.mesh.triangles
            )

    def test_parallel_handles_empty_ranks(self, tiny_scenario):
        platform = tiny_scenario.platform
        blocks = [list(tiny_scenario.blocks_for(0)[0]), [], []]
        for mode in ("count", "mesh"):
            serial = RenderingStep(platform, render_mode=mode)
            parallel = ParallelRenderingStep(platform, render_mode=mode, max_workers=2)
            assert self._observable(parallel, blocks) == self._observable(serial, blocks)

    def test_max_workers_validated(self, tiny_scenario):
        with pytest.raises(ValueError):
            ParallelRenderingStep(tiny_scenario.platform, max_workers=0)


def test_backends_identical_in_mesh_mode(tiny_scenario):
    """The backends also agree when rendering real marching-cubes geometry."""

    def trace(engine):
        pipeline = tiny_scenario.build_pipeline(
            metric="VAR",
            redistribution="round_robin",
            render_mode="mesh",
            engine=engine,
        )
        result, renders = pipeline.process_iteration(
            tiny_scenario.blocks_for(0), percent_override=50.0
        )
        return (
            tuple(result.triangles_per_rank),
            result.modelled_total,
            tuple(r.active_cells for r in renders),
        )

    serial = trace("serial")
    assert trace("vectorized") == serial
    assert trace("parallel") == serial


class TestStageGraph:
    """The explicit dependency graph behind the pipelined scheduler."""

    def test_graph_matches_step_sequence(self):
        assert tuple(spec.name for spec in STAGE_GRAPH) == STEP_NAMES

    def test_linear_chain(self):
        """Each stage depends exactly on its predecessor (Figure 2 order)."""
        assert STAGE_GRAPH[0].after == ()
        for prev, spec in zip(STAGE_GRAPH, STAGE_GRAPH[1:]):
            assert spec.after == (prev.name,)

    def test_dependencies_are_data_driven(self):
        """Every declared dependency is justified by a read of state the
        dependency (or an earlier stage) writes."""
        written = set()
        for spec in STAGE_GRAPH:
            assert spec.reads, spec.name
            assert spec.writes, spec.name
            if spec.after:
                assert set(spec.reads) & written, spec.name
            written |= set(spec.writes)

    def test_all_stages_serial_across_iterations(self):
        for spec in STAGE_GRAPH:
            assert spec.serial_across_iterations

    def test_stage_spec_lookup(self):
        assert stage_spec("scoring") is STAGE_GRAPH[0]
        assert stage_spec("rendering").after == ("redistribution",)

    def test_unknown_stage_gets_conservative_spec(self):
        spec = stage_spec("composition")
        assert spec.after == STEP_NAMES
        assert spec.serial_across_iterations


class TestPipelinedEngine:
    def _inputs(self, scenario, percents=(50.0, 25.0, 75.0)):
        return [
            (scenario.blocks_for(i % 3), percent, i)
            for i, percent in enumerate(percents)
        ]

    def _engine(self, scenario, cls=PipelinedEngine):
        return cls(
            PipelineConfig(redistribution="round_robin"),
            scenario.platform,
            nranks=scenario.nranks,
        )

    @staticmethod
    def _observable(context):
        return (
            context.iteration,
            context.percent,
            context.per_rank_pairs,
            context.sorted_pairs,
            sorted(context.reduced_ids),
            {
                name: (
                    report.modelled_per_rank,
                    report.payload_bytes,
                    report.counters,
                    report.per_rank_counters,
                )
                for name, report in context.reports.items()
            },
        )

    def test_matches_sequential_engine_bitwise(self, tiny_scenario):
        inputs = self._inputs(tiny_scenario)
        sequential = self._engine(tiny_scenario, cls=ExecutionEngine)
        overlapped = self._engine(tiny_scenario)
        expected = [
            self._observable(sequential.run_iteration(*item)) for item in inputs
        ]
        contexts = overlapped.run_iterations(inputs)
        assert [self._observable(c) for c in contexts] == expected

    def test_on_complete_fires_in_iteration_order(self, tiny_scenario):
        engine = self._engine(tiny_scenario)
        seen = []

        def on_complete(index, context):
            # At callback time the iteration is fully processed.
            assert set(context.reports) == set(STEP_NAMES)
            seen.append(index)

        engine.run_iterations(self._inputs(tiny_scenario), on_complete=on_complete)
        assert seen == [0, 1, 2]

    def test_empty_inputs(self, tiny_scenario):
        assert self._engine(tiny_scenario).run_iterations([]) == []

    def test_input_validation_happens_up_front(self, tiny_scenario):
        engine = self._engine(tiny_scenario)
        with pytest.raises(ValueError):
            engine.run_iterations([([[]], 0.0, 0)])  # wrong rank count
        with pytest.raises(ValueError):
            engine.run_iterations([(tiny_scenario.blocks_for(0), 120.0, 0)])

    def test_stage_error_propagates_without_deadlock(self, tiny_scenario):
        engine = self._engine(tiny_scenario)
        calls = []

        def boom(context):
            calls.append(context.iteration)
            raise RuntimeError("poisoned stage")

        engine.steps[2].execute = boom  # reduction, mid-chain
        completed = []
        with pytest.raises(RuntimeError, match="poisoned stage"):
            engine.run_iterations(
                self._inputs(tiny_scenario),
                on_complete=lambda i, c: completed.append(i),
            )
        # The failing stage ran at most once per iteration before the stop
        # flag drained the scheduler, and no poisoned iteration was reported
        # complete after the failure.
        assert calls and calls[0] == 0
        assert completed == []

    def test_raising_on_complete_cancels_run_without_deadlock(self, tiny_scenario):
        """A raising ``on_complete`` poisons the run like a failing stage:
        the scheduler drains (no deadlocked stage threads) and the callback's
        exception re-raises; later iterations are never reported complete."""

        class Cancel(Exception):
            pass

        completed = []

        def cancel_after_first(index, context):
            completed.append(index)
            raise Cancel(f"stop at {index}")

        engine = self._engine(tiny_scenario)
        with pytest.raises(Cancel, match="stop at 0"):
            engine.run_iterations(
                self._inputs(tiny_scenario), on_complete=cancel_after_first
            )
        assert completed == [0]

    def test_private_communicators_per_stage(self, tiny_scenario):
        """Overlapped stages must not share virtual network clocks."""
        engine = self._engine(tiny_scenario)
        comms = {id(step.comm) for step in engine.steps if hasattr(step, "comm")}
        assert len(comms) == sum(1 for s in engine.steps if hasattr(s, "comm"))

    def test_explicit_comm_still_validates_rank_count(self, tiny_scenario):
        from repro.simmpi.communicator import BSPCommunicator

        wrong = BSPCommunicator(
            tiny_scenario.nranks + 1, cost_model=tiny_scenario.platform.network
        )
        with pytest.raises(ValueError):
            PipelinedEngine(
                PipelineConfig(),
                tiny_scenario.platform,
                nranks=tiny_scenario.nranks,
                comm=wrong,
            )


class TestMonitorStepReportQueries:
    def test_payload_and_counter_series(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline(metric="VAR", redistribution="round_robin")
        for i in range(2):
            pipeline.process_iteration(tiny_scenario.blocks_for(i), percent_override=50.0)
        moved = pipeline.monitor.payload_bytes_series("redistribution")
        assert len(moved) == 2 and all(m > 0 for m in moved)
        reduced = pipeline.monitor.counter_series("reduction", "nreduced")
        assert all(r > 0 for r in reduced)
        with pytest.raises(ValueError):
            pipeline.monitor.payload_bytes_series("warp")
        with pytest.raises(ValueError):
            pipeline.monitor.counter_series("warp", "x")

    def test_config_summary_reports_engine(self, tiny_scenario):
        pipeline = tiny_scenario.build_pipeline(engine="serial")
        assert pipeline.config_summary()["engine"] == "serial"

    def test_monitor_accepts_custom_recorded_steps(self):
        """Steps recorded by a custom engine are first-class: the series
        queries must validate against what was recorded, not a hard-coded
        step tuple."""
        from repro.core.monitor import PerformanceMonitor
        from repro.core.results import IterationResult

        monitor = PerformanceMonitor()
        report = StepReport(
            step="warp",
            measured_per_rank=[0.1],
            modelled_per_rank=[1.5],
            payload_bytes=64.0,
            counters={"jumps": 2.0},
        )
        monitor.record_iteration(
            IterationResult(
                iteration=0,
                percent_reduced=0.0,
                nblocks=1,
                nreduced=0,
                modelled_steps={"warp": 1.5},
                measured_steps={"warp": 0.1},
                step_reports={"warp": report},
            )
        )
        assert monitor.step_series("warp") == [1.5]
        assert monitor.step_series("warp", modelled=False) == [0.1]
        assert monitor.payload_bytes_series("warp") == [64.0]
        assert monitor.counter_series("warp", "jumps") == [2.0]
        # The canonical steps stay queryable, and unknown names still raise.
        assert monitor.step_series("rendering") == [0.0]
        with pytest.raises(ValueError):
            monitor.step_series("hyperdrive")
        with pytest.raises(ValueError):
            monitor.payload_bytes_series("hyperdrive")
        with pytest.raises(ValueError):
            monitor.counter_series("hyperdrive", "x")
