"""Setup shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail; keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
