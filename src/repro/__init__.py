"""repro — Adaptive Performance-Constrained In Situ Visualization (CLUSTER 2016).

A from-scratch Python reproduction of Dorier et al., "Adaptive
Performance-Constrained In Situ Visualization of Atmospheric Simulations"
(IEEE CLUSTER 2016), including every substrate the paper depends on:

* :mod:`repro.core` — the adaptive pipeline (score → sort → reduce →
  redistribute → render → adapt, Algorithm 1), built from composable
  :class:`~repro.core.step.PipelineStep` objects run by an
  :class:`~repro.core.engine.ExecutionEngine` with interchangeable
  ``serial`` / ``vectorized`` / ``parallel`` backends
  (``PipelineConfig(engine=...)``);
* :mod:`repro.grid.batch` — :class:`~repro.grid.batch.BlockBatch`, the
  structure-of-arrays container the vectorized backend scores in bulk;
* :mod:`repro.cm1` — a synthetic CM1-like supercell simulation and its
  reflectivity (dBZ) diagnostic;
* :mod:`repro.simmpi` — a simulated MPI runtime with a latency/bandwidth cost
  model;
* :mod:`repro.metrics` — the block-scoring metrics (RANGE, VAR, ITL, LEA,
  FPZIP, TRILIN, ...);
* :mod:`repro.compress` — fpzip/zfp/lz-like floating-point coders;
* :mod:`repro.viz` — marching cubes, a software rasterizer, and a
  Catalyst-like co-processing API;
* :mod:`repro.perfmodel` — the "Blue Waters seconds" cost model calibrated
  against the paper's published numbers;
* :mod:`repro.grid`, :mod:`repro.io` — domain decomposition and a BIL-like
  dataset store;
* :mod:`repro.scenarios` — the named workload registry: the paper's two
  Blue Waters configurations plus parameterised storm families the paper
  never ran (squall line, multi-cell cluster, turbulence-only field,
  decaying storm) and weak/strong scaling sweeps derived from any entry;
* :mod:`repro.experiments` — drivers regenerating every table and figure of
  the paper's evaluation section.

The registered workloads are also runnable from the command line::

    python -m repro list
    python -m repro run squall_line --backend vectorized --output out.json

Quickstart
----------

>>> from repro import quickstart_pipeline
>>> result = quickstart_pipeline(nranks=4, nsnapshots=2)
>>> result.niterations
2
"""

from repro.core import (
    AdaptationConfig,
    AdaptationController,
    ExecutionEngine,
    InSituPipeline,
    PipelineConfig,
    StepReport,
    adapt_percent,
)
from repro.cm1 import CM1Config, CM1Dataset, CM1Simulation
from repro.grid import BlockBatch
from repro.perfmodel import PlatformModel
from repro.metrics import create_metric, default_registry
from repro.scenarios import (
    ScenarioConfig,
    create_scenario_config,
    register_scenario,
    scaling_variants,
    scenario_names,
)

__version__ = "1.2.0"

__all__ = [
    "AdaptationConfig",
    "AdaptationController",
    "BlockBatch",
    "ExecutionEngine",
    "InSituPipeline",
    "PipelineConfig",
    "StepReport",
    "adapt_percent",
    "CM1Config",
    "CM1Dataset",
    "CM1Simulation",
    "PlatformModel",
    "ScenarioConfig",
    "create_metric",
    "create_scenario_config",
    "default_registry",
    "register_scenario",
    "scaling_variants",
    "scenario_names",
    "quickstart_pipeline",
    "__version__",
]


def quickstart_pipeline(
    nranks: int = 4,
    nsnapshots: int = 2,
    target_seconds: float = 20.0,
    metric: str = "VAR",
    redistribution: str = "round_robin",
    engine: str = "vectorized",
):
    """Run a tiny end-to-end adaptive pipeline and return its run result.

    This is the programmatic equivalent of ``examples/quickstart.py``: a small
    synthetic storm, a handful of virtual ranks, and the full six-step
    pipeline with adaptation enabled.  ``engine`` selects the execution
    backend ("vectorized", "serial", or "parallel"); all give identical
    results.
    """
    from repro.experiments.common import ExperimentScenario

    scenario = ExperimentScenario.tiny(nranks=nranks, nsnapshots=nsnapshots)
    pipeline = scenario.build_pipeline(
        metric=metric,
        redistribution=redistribution,
        adaptation=AdaptationConfig(enabled=True, target_seconds=target_seconds),
        engine=engine,
    )
    for index in range(nsnapshots):
        pipeline.process_iteration(scenario.blocks_for(index))
    return pipeline.monitor.to_run_result(pipeline.config_summary())
