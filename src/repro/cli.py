"""The ``python -m repro`` command line.

Three subcommands expose the scenario registry without writing any Python:

``list``
    Print the workload catalogue (name, default scale, tags, description),
    optionally filtered by tag, optionally as JSON.  The JSON form also
    reports ``parity_backends`` — the engine backends every registered
    scenario is parity-verified against by the registry-driven sweep in
    ``tests/test_scenarios.py`` (the sweep parameterises over the same two
    registries this command reads).

``run``
    Build a registered scenario (with optional rank/snapshot/seed
    overrides), run the full six-step pipeline on it through the usual
    ``ExperimentScenario.build_pipeline`` path, and write a JSON summary —
    per-iteration timings, per-step aggregates, and the adaptation
    trajectory.  ``--save-dataset`` additionally persists the generated
    snapshots as a :class:`~repro.io.store.DatasetStore` (manifest + one
    ``.npz`` per iteration).

``sweep``
    Price a weak/strong-scaling rank sweep of a registered scenario through
    the cost models alone (no data generated), which is what makes rank
    counts like 10,000 tractable — see :mod:`repro.scenarios.sweep`.
    Human-readable table by default; ``--json`` / ``--output`` produce the
    machine-readable record, mirroring ``run``'s contract.

``serve``
    Run the scenario pipeline as a local asyncio HTTP service: concurrent
    ``POST /run`` requests multiplex over a shared worker pool, stream
    NDJSON per-iteration results, and share a disk-backed replay cache —
    see :mod:`repro.serve`.

Exit codes: 0 on success, 2 on usage errors (including an unknown scenario
name — the error message lists the registered names).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.backends import engine_backends
from repro.core.config import AdaptationConfig
from repro.metrics.registry import default_registry
from repro.scenarios import get_scenario, scenario_specs

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run registered in situ visualization workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list the registered scenarios")
    list_p.add_argument("--tag", default=None, help="only scenarios carrying this tag")
    list_p.add_argument(
        "--json", action="store_true", help="machine-readable catalogue"
    )

    run_p = sub.add_parser("run", help="run one registered scenario")
    run_p.add_argument("scenario", help="registered scenario name (see 'list')")
    run_p.add_argument(
        "--backend",
        default=None,
        help=f"engine backend ({', '.join(engine_backends())}; default: config)",
    )
    run_p.add_argument("--ranks", type=int, default=None, help="virtual rank count")
    run_p.add_argument(
        "--snapshots", type=int, default=None, help="number of snapshots to process"
    )
    run_p.add_argument(
        "--metric", default="VAR", help="block-scoring metric (default: VAR)"
    )
    run_p.add_argument(
        "--redistribution",
        default="none",
        choices=("none", "shuffle", "round_robin"),
        help="redistribution strategy (default: none)",
    )
    run_p.add_argument(
        "--percent",
        type=float,
        default=None,
        help="fixed reduction percentage (bypasses adaptation)",
    )
    run_p.add_argument(
        "--target",
        type=float,
        default=None,
        help="adaptation target in modelled seconds (enables Algorithm 1)",
    )
    run_p.add_argument(
        "--render-mode",
        default="count",
        choices=("count", "mesh"),
        help="rendering mode (default: count)",
    )
    run_p.add_argument("--seed", type=int, default=None, help="scenario seed override")
    run_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the JSON summary to this file (default: stdout)",
    )
    run_p.add_argument(
        "--save-dataset",
        type=Path,
        default=None,
        help="persist the generated snapshots as a DatasetStore at this directory",
    )

    sweep_p = sub.add_parser(
        "sweep", help="price a scaling sweep through the cost models"
    )
    sweep_p.add_argument("scenario", help="registered scenario name (see 'list')")
    sweep_p.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=(64, 256, 1024, 4096, 10000),
        help="virtual rank counts to price (default: 64 256 1024 4096 10000)",
    )
    sweep_p.add_argument(
        "--mode",
        default="weak",
        choices=("weak", "strong"),
        help="scaling mode (default: weak)",
    )
    sweep_p.add_argument(
        "--metric", default="VAR", help="block-scoring metric (default: VAR)"
    )
    sweep_p.add_argument(
        "--percent",
        type=float,
        default=50.0,
        help="reduction percentage priced at every point (default: 50)",
    )
    sweep_p.add_argument(
        "--serial",
        action="store_true",
        help="price points in-process instead of over the process pool",
    )
    sweep_p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable sweep record to stdout",
    )
    sweep_p.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the JSON sweep record to this file",
    )

    serve_p = sub.add_parser(
        "serve", help="run the pipeline as a local HTTP service"
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=8642,
        help="port to listen on (default: 8642; 0 picks a free port)",
    )
    serve_p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="replay-cache directory (default: a per-process temp dir)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=8,
        help="concurrent scenario runs in the shared pool (default: 8)",
    )
    serve_p.add_argument(
        "--execution",
        choices=("thread", "process"),
        default="thread",
        help=(
            "run execution tier: 'thread' multiplexes runs over a thread "
            "pool, 'process' dispatches each run to a GIL-free worker "
            "process with zero-copy mmap data handoff (default: thread)"
        ),
    )
    serve_p.add_argument(
        "--max-run-seconds",
        type=float,
        default=None,
        help=(
            "server-side cap on each run's duration; a request timeout_s "
            "can only tighten it (default: uncapped)"
        ),
    )
    serve_p.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="LRU bound on cached scenario stores (default: unbounded)",
    )
    serve_p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="LRU bound on total cached bytes on disk (default: unbounded)",
    )
    serve_p.add_argument(
        "--shutdown-grace",
        type=float,
        default=10.0,
        help=(
            "seconds to wait for cancelled in-flight runs to drain on "
            "shutdown before abandoning them (default: 10)"
        ),
    )
    return parser


def _json_default(value):
    """Coerce NumPy scalars/arrays hiding in results into plain JSON types.

    ``tolist`` must be tried first: it handles arrays of any size (and
    returns a plain scalar for 0-d arrays and NumPy scalars), whereas
    ``item`` raises on multi-element arrays.
    """
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [
        spec
        for spec in scenario_specs()
        if args.tag is None or args.tag in spec.tags
    ]
    if args.json:
        # Every registered scenario is parity-verified against every
        # registered backend by the registry-driven sweep (the sweep and
        # this command read the same two registries).
        parity = list(engine_backends())
        print(
            json.dumps(
                [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "tags": list(spec.tags),
                        "default_ranks": spec.default_ranks,
                        "default_snapshots": spec.default_snapshots,
                        "parity_backends": parity,
                    }
                    for spec in specs
                ],
                indent=2,
            )
        )
        return 0
    if not specs:
        print(f"no scenarios tagged {args.tag!r}")
        return 0
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        scale = f"{spec.default_ranks}r/{spec.default_snapshots}s"
        tags = ",".join(spec.tags)
        print(f"{spec.name:<{width}}  {scale:>8}  [{tags}]  {spec.description}")
    return 0


def _step_aggregates(iterations) -> Dict[str, Dict[str, float]]:
    """Per-step aggregates over a run: mean/max modelled seconds, payload."""
    steps: Dict[str, Dict[str, float]] = {}
    for result in iterations:
        for name, report in result.step_reports.items():
            agg = steps.setdefault(
                name,
                {"modelled_seconds_mean": 0.0, "modelled_seconds_max": 0.0,
                 "payload_bytes_total": 0.0, "iterations": 0},
            )
            agg["modelled_seconds_mean"] += report.modelled_max
            agg["modelled_seconds_max"] = max(
                agg["modelled_seconds_max"], report.modelled_max
            )
            agg["payload_bytes_total"] += report.payload_bytes
            agg["iterations"] += 1
    for agg in steps.values():
        if agg["iterations"]:
            agg["modelled_seconds_mean"] /= agg["iterations"]
    return steps


def _cmd_run(args: argparse.Namespace) -> int:
    # Imported lazily: pulling in the experiment layer (SciPy, calibration)
    # only when a run is actually requested keeps ``list`` snappy.
    from repro.experiments.common import ExperimentScenario

    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.metric.strip().upper() not in default_registry():
        print(
            f"error: unknown metric {args.metric!r}; available: "
            f"{', '.join(default_registry().names())}",
            file=sys.stderr,
        )
        return 2
    backend = None if args.backend is None else args.backend.strip().lower()
    if backend is not None and backend not in engine_backends():
        print(
            f"error: unknown backend {args.backend!r}; available: "
            f"{', '.join(engine_backends())}",
            file=sys.stderr,
        )
        return 2

    config = spec.build(ncores=args.ranks, nsnapshots=args.snapshots, seed=args.seed)
    scenario = ExperimentScenario(config)
    adaptation: Optional[AdaptationConfig] = None
    if args.target is not None:
        adaptation = AdaptationConfig(enabled=True, target_seconds=args.target)
    pipeline = scenario.build_pipeline(
        metric=args.metric,
        redistribution=args.redistribution,
        adaptation=adaptation,
        render_mode=args.render_mode,
        engine=backend,
    )
    run = pipeline.run(scenario.iteration_blocks(), percent_override=args.percent)

    iteration_rows: List[Dict[str, object]] = [
        {
            "iteration": result.iteration,
            "percent_reduced": result.percent_reduced,
            "nblocks": result.nblocks,
            "nreduced": result.nreduced,
            "moved_bytes": result.moved_bytes,
            "modelled_steps": dict(result.modelled_steps),
            "modelled_total": result.modelled_total,
            "load_imbalance": result.load_imbalance,
        }
        for result in run.iterations
    ]
    summary = {
        "scenario": {
            "name": spec.name,
            "description": spec.description,
            "tags": list(spec.tags),
            "ncores": config.ncores,
            "shape": list(config.shape),
            "blocks_per_subdomain": list(config.blocks_per_subdomain),
            "nsnapshots": config.nsnapshots,
            "seed": config.seed,
            "storm_family": type(config.storm).__name__ if config.storm else "default",
        },
        "config": pipeline.config_summary(),
        "run": run.summary(),
        "steps": _step_aggregates(run.iterations),
        "iterations": iteration_rows,
    }
    # Status lines go to stderr: when --output is omitted, stdout carries the
    # JSON document and nothing else (the machine-readable contract).
    text = json.dumps(summary, indent=2, default=_json_default)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    if args.save_dataset is not None:
        store = scenario.dataset.save(
            args.save_dataset, extra_metadata={"scenario": spec.name}
        )
        print(
            f"saved dataset ({len(store.iterations())} iterations) to {store.root}",
            file=sys.stderr,
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios.sweep import model_scaling_sweep

    try:
        record = model_scaling_sweep(
            args.scenario,
            ranks=args.ranks,
            mode=args.mode,
            metric=args.metric,
            percent=args.percent,
            parallel=not args.serial,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output is not None:
        text = json.dumps(record, indent=2, default=_json_default)
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
        if not args.json:
            return 0
    if args.json:
        print(json.dumps(record, indent=2, default=_json_default))
        return 0
    # Human-readable default: one line per priced rank count.
    print(
        f"{record['scenario']} {record['mode']}-scaling sweep "
        f"(metric {record['metric']}, {record['percent']:.0f}% reduced)"
    )
    print(f"{'ranks':>8}  {'modelled total':>14}  dominant step")
    for point in record["points"]:
        steps = {k: float(v) for k, v in point.get("modelled_steps", {}).items()}
        dominant = max(steps, key=steps.get) if steps else "-"
        print(
            f"{int(point['ncores']):>8}  {float(point['modelled_total']):>13.3f}s"
            f"  {dominant}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.serve.server import serve_forever

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.max_run_seconds is not None and not args.max_run_seconds > 0:
        print(
            f"error: --max-run-seconds must be > 0, got {args.max_run_seconds}",
            file=sys.stderr,
        )
        return 2
    for flag, value in (
        ("--cache-max-entries", args.cache_max_entries),
        ("--cache-max-bytes", args.cache_max_bytes),
    ):
        if value is not None and value < 1:
            print(f"error: {flag} must be >= 1, got {value}", file=sys.stderr)
            return 2
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = Path(tempfile.mkdtemp(prefix="repro-serve-cache-"))
        print(f"replay cache at {cache_dir}", file=sys.stderr)
    try:
        asyncio.run(
            serve_forever(
                args.host,
                args.port,
                cache_dir,
                max_workers=args.workers,
                execution=args.execution,
                max_run_seconds=args.max_run_seconds,
                cache_max_entries=args.cache_max_entries,
                cache_max_bytes=args.cache_max_bytes,
                shutdown_grace=args.shutdown_grace,
            )
        )
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_run(args)
    except BrokenPipeError:
        # Downstream closed our stdout early (e.g. ``python -m repro list |
        # head``); silence the interpreter's exit-time flush and succeed.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
