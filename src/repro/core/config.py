"""Configuration of the adaptive pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.backends import engine_backends
from repro.core.reduction_step import validate_quality_ladder
from repro.utils.validation import ensure_in_range, ensure_positive


def __getattr__(name: str):
    # ``ENGINE_BACKENDS`` is derived from the backend registry
    # (:mod:`repro.core.backends`) rather than kept as a second hand-written
    # tuple: a backend registered by a third party is immediately selectable
    # and immediately listed here.  Resolved lazily so late registrations are
    # visible to ``from repro.core.config import ENGINE_BACKENDS`` readers
    # that re-fetch the attribute.
    if name == "ENGINE_BACKENDS":
        return engine_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class AdaptationConfig:
    """Configuration of the Algorithm 1 controller.

    Attributes
    ----------
    enabled:
        Whether the percentage of reduced blocks is adapted at all (the
        fixed-percentage experiments of Figures 6–9 disable it).
    target_seconds:
        The performance constraint: required run time of the full pipeline
        per iteration, in modelled platform seconds.
    initial_percent:
        Percentage used for the first iteration.  The paper starts at 0 ("the
        first output of the simulation is not reduced").
    max_percent:
        Optional user bound on the percentage of reduced blocks (the paper
        notes the maximum "could easily be bounded by the user").
    """

    enabled: bool = True
    target_seconds: float = 30.0
    initial_percent: float = 0.0
    max_percent: float = 100.0

    def __post_init__(self) -> None:
        if self.enabled:
            ensure_positive(self.target_seconds, "target_seconds")
        ensure_in_range(self.initial_percent, (0.0, 100.0), "initial_percent")
        ensure_in_range(self.max_percent, (0.0, 100.0), "max_percent")
        if self.initial_percent > self.max_percent:
            raise ValueError(
                f"initial_percent ({self.initial_percent}) exceeds max_percent "
                f"({self.max_percent})"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of one pipeline run.

    Attributes
    ----------
    metric:
        Name of the block-scoring metric (resolved through the default
        metric registry: "VAR", "LEA", "FPZIP", ...).
    redistribution:
        ``"none"``, ``"shuffle"`` (random), or ``"round_robin"``.
    isosurface_level:
        Isovalue of the rendered isosurface (45 dBZ in the paper).
    render_mode:
        ``"count"`` (cheap load proxy, default for large rank counts) or
        ``"mesh"`` (real marching-cubes geometry).
    field_name:
        Field the pipeline visualises.
    adaptation:
        Algorithm 1 configuration.
    shuffle_seed:
        Seed shared by all ranks for the random-shuffle strategy.
    use_modelled_time:
        When True (default) the controller reacts to modelled platform
        seconds; when False it reacts to measured wall-clock (useful for
        pure-software runs without the platform model).
    pipelined:
        When True the pipeline runs on the
        :class:`~repro.core.engine.PipelinedEngine`, which overlaps
        consecutive iterations (snapshot ``t + 1`` is scored, sorted and
        redistributed while ``t`` renders) whenever the percentage schedule
        is known up front — a fixed ``percent_override`` or adaptation
        disabled.  Runs that need the Algorithm 1 feedback loop fall back to
        strictly sequential iterations (the controller consumes iteration
        ``t``'s result before picking ``t + 1``'s percentage), so results
        are identical either way.
    quality_ladder:
        How the reduction step distributes the selected (lowest-scored)
        blocks over the reduction ladder, as ordered ``(level, fraction)``
        rungs applied to the ascending-score prefix: the first rung's
        fraction of the selected blocks — the very lowest scores — goes to
        that rung's level, the next fraction to the next rung, and so on
        (fractions must sum to 1; per-rung counts are rounded half-up, the
        last rung absorbing the remainder).  Levels are rungs of the ladder
        in :mod:`repro.grid.reduction`: 1 = strided 1/8-ish downsample with
        corners preserved, 2 = the paper's 2×2×2 corner reduction.  The
        default ``((2, 1.0),)`` sends every selected block to the corner
        rung — bit-for-bit the pre-ladder binary behavior.
    engine:
        Execution backend of the step sequence, resolved through the backend
        registry (:mod:`repro.core.backends`), which third-party backends can
        extend.  ``"vectorized"`` (default) runs every data-parallel step
        over stacked :class:`~repro.grid.batch.BlockBatch` arrays — one
        ``score_batch`` call per shape group in scoring, one
        ``np.lexsort`` pass in the sorting collective, one
        ``reduce_to_corners_batch`` corner gather per shape group in
        reduction, one searchsorted/bincount pass in the redistribution
        planner, and one ``count_active_cells_batch`` call per shape group
        in counting-mode rendering.  ``"serial"`` iterates blocks one at a
        time (the reference implementation); ``"parallel"`` additionally
        fans the per-rank work out over ``concurrent.futures`` thread pools
        (per-shape score chunks, whole ranks for reduction and rendering),
        which is how metrics whose scoring is inherently per-block
        (user-supplied scalar metrics) scale with cores.  All backends
        produce identical scores, sort orders, reduction and redistribution
        decisions, active-cell/triangle counts, and modelled timings;
        measured wall-clock naturally differs (the vectorized and parallel
        steps attribute one global pass proportionally to per-rank work),
        so runs driven by ``use_modelled_time=False`` are backend- and
        machine-dependent.
    """

    metric: str = "VAR"
    redistribution: str = "none"
    isosurface_level: float = 45.0
    render_mode: str = "count"
    field_name: str = "dbz"
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)
    shuffle_seed: int = 2016
    use_modelled_time: bool = True
    pipelined: bool = False
    engine: str = "vectorized"
    quality_ladder: Tuple[Tuple[int, float], ...] = ((2, 1.0),)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "quality_ladder", validate_quality_ladder(self.quality_ladder)
        )
        if self.redistribution not in ("none", "shuffle", "round_robin"):
            raise ValueError(
                f"redistribution must be 'none', 'shuffle' or 'round_robin', "
                f"got {self.redistribution!r}"
            )
        if self.engine not in engine_backends():
            raise ValueError(
                f"engine must be one of {engine_backends()}, got {self.engine!r}"
            )
        if self.render_mode not in ("count", "mesh"):
            raise ValueError(
                f"render_mode must be 'count' or 'mesh', got {self.render_mode!r}"
            )
        if not self.metric:
            raise ValueError("metric name must not be empty")
        if not self.field_name:
            raise ValueError("field_name must not be empty")
