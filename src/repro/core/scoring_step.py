"""Step 1: scoring blocks of data.

Every rank scores its own blocks with the configured metric.  The step is
embarrassingly parallel; its modelled cost per rank is the metric's calibrated
per-point cost times the rank's point count, and the step ends at the global
sort (a collective), so the slowest rank determines the step's contribution to
the iteration time.

Four implementations of the same contract are provided:

* :class:`ScoringStep` — routes every rank's blocks through
  ``metric.score_blocks`` (a per-block loop by default, but user metrics that
  override it take effect here);
* :class:`VectorizedScoringStep` — stacks all ranks' block payloads into
  shape-homogeneous ``(nblocks, sx, sy, sz)`` arrays (the
  :class:`~repro.grid.batch.BlockBatch` data layout) and scores each group
  with one ``metric.score_batch`` call.  Metrics without a vectorised
  ``score_batch`` transparently fall back to the per-block path;
* :class:`ParallelScoringStep` — same grouping, but the groups (split into
  chunks) are fanned out over a ``concurrent.futures`` thread pool, so even
  metrics whose scoring is inherently per-block (user-supplied scalar
  metrics) scale with cores;
* :class:`ProcessScoringStep` — the same chunking fanned out over the shared
  *process* pool, with payloads crossing the boundary zero-copy through
  :class:`~repro.grid.shm.SharedBlockBatch` segments.  This is the backend
  for GIL-bound metrics (pure-Python scalar scorers), which threads cannot
  speed up at all.

All four produce bitwise-identical scores, so the execution engine can pick
any backend without perturbing any downstream decision.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.batch import group_positions_by_shape
from repro.grid.block import Block
from repro.grid.shm import SharedBlockBatch, ShmBatchHandle
from repro.metrics.base import ScoreMetric
from repro.perfmodel.platform import PlatformModel
from repro.utils.pool import LazyThreadPool
from repro.utils.procpool import (
    chunk_bounds,
    default_process_workers,
    shared_process_pool,
)
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class ScoringStep:
    """Scores per-rank block lists with a metric (per-block path)."""

    name = "scoring"

    def __init__(self, metric: ScoreMetric, platform: PlatformModel) -> None:
        self.metric = metric
        self.platform = platform

    # -- scoring backend ---------------------------------------------------------

    def _score_rank(self, blocks: Sequence[Block]) -> List[float]:
        """Scores of one rank's blocks, in block order."""
        return [float(s) for s in self.metric.score_blocks([b.data for b in blocks])]

    # -- step execution ----------------------------------------------------------

    def run(
        self, per_rank_blocks: Sequence[Sequence[Block]]
    ) -> Tuple[List[List[ScorePair]], List[List[Block]], Dict[str, object]]:
        """Score every rank's blocks.

        Returns
        -------
        (per_rank_pairs, per_rank_blocks, info)
            ``per_rank_pairs[r]`` is the list of ``(block_id, score)`` pairs of
            rank ``r``; ``per_rank_blocks`` is the input with scores attached
            to the blocks; ``info`` holds measured and modelled per-rank
            seconds.
        """
        per_rank_pairs: List[List[ScorePair]] = []
        scored_blocks: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        for blocks in per_rank_blocks:
            with Timer() as timer:
                scores = self._score_rank(blocks)
                pairs = [
                    (block.block_id, score) for block, score in zip(blocks, scores)
                ]
                scored = [
                    block.with_score(score) for block, score in zip(blocks, scores)
                ]
            npoints = sum(int(block.data.size) for block in blocks)
            per_rank_pairs.append(pairs)
            scored_blocks.append(scored)
            measured.append(timer.elapsed)
            modelled.append(
                self.platform.scoring_seconds(self.metric, npoints, len(blocks))
            )
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
        }
        return per_rank_pairs, scored_blocks, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's blocks (PipelineStep contract)."""
        pairs, scored, info = self.run(context.per_rank_blocks)
        context.per_rank_pairs = pairs
        context.per_rank_blocks = scored
        nblocks = sum(len(p) for p in pairs)
        npoints = sum(
            int(block.data.size) for blocks in scored for block in blocks
        )
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={"nblocks": float(nblocks), "npoints": float(npoints)},
        )


class VectorizedScoringStep(ScoringStep):
    """Scores all ranks' blocks as stacked structure-of-arrays batches.

    Because scoring is embarrassingly parallel, the step batches *across*
    ranks: every block of the iteration is grouped by payload shape/dtype
    (a handful of groups for a typical decomposition), each group's payloads
    are stacked into one ``(nblocks, sx, sy, sz)`` array — the
    :class:`~repro.grid.batch.BlockBatch` data layout — and scored with a
    single ``metric.score_batch`` call.  Only the payloads are stacked here;
    scoring never reads the batch metadata, so the hot path skips building
    the id/extent/owner arrays (use :func:`~repro.grid.batch.partition_by_shape`
    when a full :class:`BlockBatch` is needed).  Scores are scattered back to
    the original block order, so the output is indistinguishable from
    :class:`ScoringStep`'s.

    Measured wall-clock is attributed to ranks proportionally to their point
    counts (the single pass does every rank's work at once); the modelled
    per-rank seconds are computed exactly as in the serial step.
    """

    name = "scoring"

    def _score_rank(self, blocks: Sequence[Block]) -> List[float]:
        if not blocks:
            return []
        if not self.metric.supports_batch:
            # Stacking buys nothing when score_batch would loop per block
            # anyway (coder-based metrics); skip the payload copies.
            return super()._score_rank(blocks)
        scores = np.empty(len(blocks), dtype=np.float64)
        for indices in group_positions_by_shape(blocks):
            stacked = np.stack([blocks[i].data for i in indices])
            scores[indices] = self.metric.score_batch(stacked)
        return [float(s) for s in scores]

    def run(
        self, per_rank_blocks: Sequence[Sequence[Block]]
    ) -> Tuple[List[List[ScorePair]], List[List[Block]], Dict[str, object]]:
        """Score every rank's blocks in one cross-rank vectorised pass."""
        if not self.metric.supports_batch and (
            type(self.metric).score_blocks is not ScoreMetric.score_blocks
        ):
            # A metric that overrides score_blocks may apply cross-block
            # logic (e.g. normalisation over one rank's list); the cross-rank
            # pass would change the lists it sees.  Use the per-rank
            # reference path so every backend scores identically.
            return ScoringStep.run(self, per_rank_blocks)
        all_blocks: List[Block] = []
        rank_slices: List[Tuple[int, int]] = []
        for blocks in per_rank_blocks:
            rank_slices.append((len(all_blocks), len(all_blocks) + len(blocks)))
            all_blocks.extend(blocks)
        with Timer() as timer:
            scores = self._score_rank(all_blocks)
            scored_all = [
                block.with_score(score) for block, score in zip(all_blocks, scores)
            ]
        elapsed = timer.elapsed

        per_rank_pairs: List[List[ScorePair]] = []
        scored_blocks: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        rank_points = [
            sum(int(block.data.size) for block in blocks)
            for blocks in per_rank_blocks
        ]
        total_points = sum(rank_points)
        for (lo, hi), blocks, npoints in zip(
            rank_slices, per_rank_blocks, rank_points
        ):
            per_rank_pairs.append(
                [
                    (block.block_id, score)
                    for block, score in zip(blocks, scores[lo:hi])
                ]
            )
            scored_blocks.append(scored_all[lo:hi])
            measured.append(
                elapsed * (npoints / total_points) if total_points else 0.0
            )
            modelled.append(
                self.platform.scoring_seconds(self.metric, npoints, len(blocks))
            )
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
        }
        return per_rank_pairs, scored_blocks, info


class ParallelScoringStep(VectorizedScoringStep):
    """Scores block groups concurrently on a ``concurrent.futures`` pool.

    The cross-rank pass of :class:`VectorizedScoringStep` is kept, but the
    work is fanned out over a thread pool:

    * metrics with a true ``score_batch`` have their per-shape groups split
      into chunks, each chunk stacked and scored by one worker (safe by the
      ``score_batch`` contract: batched scores are bitwise identical to
      per-block scores, hence independent of the chunking);
    * per-block metrics have their block list chunked directly and each chunk
      scored block by block — this is the backend's reason to exist: a
      user-supplied scalar metric scales with cores without writing any
      vectorised code.  NumPy-heavy scorers release the GIL for most of
      their work, so threads (which share the block payloads for free)
      outperform a process pool and its pickling of every payload.

    A metric that overrides ``score_blocks`` may apply cross-block logic
    (e.g. normalisation over the whole list), which chunking would silently
    change; such metrics are detected and routed through one unchunked
    ``score_blocks`` call, trading parallelism for correctness.

    Scores are scattered back by block position, so the output — like the
    other backends' — is deterministic and bitwise identical to
    :class:`ScoringStep`'s.
    """

    name = "scoring"

    def __init__(
        self,
        metric: ScoreMetric,
        platform: PlatformModel,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(metric, platform)
        self._workers = LazyThreadPool(max_workers, thread_name_prefix="scoring-worker")
        self.max_workers = self._workers.max_workers

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The step's worker pool, created on first use and reused across
        iterations (the step lives as long as its engine)."""
        return self._workers.executor

    def _chunks(self, indices: List[int]) -> List[List[int]]:
        """Split ``indices`` into at most ``2 * max_workers`` contiguous chunks."""
        nchunks = min(len(indices), 2 * self.max_workers)
        bounds = np.linspace(0, len(indices), nchunks + 1).astype(int)
        return [
            indices[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]

    def _score_rank(self, blocks: Sequence[Block]) -> List[float]:
        if not blocks:
            return []
        overridden = type(self.metric).score_blocks is not ScoreMetric.score_blocks
        if not self.metric.supports_batch and overridden:
            # Cross-block semantics: one call, no chunking (see class docs).
            return super()._score_rank(blocks)
        scores = np.empty(len(blocks), dtype=np.float64)

        if self.metric.supports_batch:
            chunks = [
                chunk
                for indices in group_positions_by_shape(blocks)
                for chunk in self._chunks(indices)
            ]

            def score_chunk(chunk: List[int]) -> np.ndarray:
                return self.metric.score_batch(
                    np.stack([blocks[i].data for i in chunk])
                )

        else:
            chunks = self._chunks(list(range(len(blocks))))

            def score_chunk(chunk: List[int]) -> np.ndarray:
                return np.array(
                    [self.metric.score_block(blocks[i].data) for i in chunk],
                    dtype=np.float64,
                )

        for chunk, chunk_scores in zip(chunks, self.pool.map(score_chunk, chunks)):
            scores[chunk] = np.asarray(chunk_scores, dtype=np.float64)
        return [float(s) for s in scores]


# -- process-pool workers -----------------------------------------------------
#
# Top-level functions (pickled by reference into the worker processes); the
# payload arrives as a SharedBlockBatch handle, never as bytes.


def _score_shared_batch(
    metric: ScoreMetric, handle: ShmBatchHandle, lo: int, hi: int
) -> np.ndarray:
    """Score rows ``[lo, hi)`` of a shared stacked payload via ``score_batch``."""
    view = SharedBlockBatch.attach(handle)
    try:
        return np.asarray(metric.score_batch(view.data[lo:hi]), dtype=np.float64)
    finally:
        view.close()


def _score_shared_blocks(
    metric: ScoreMetric, handle: ShmBatchHandle, lo: int, hi: int
) -> np.ndarray:
    """Score rows ``[lo, hi)`` one block at a time via ``score_block``.

    This per-row loop is the GIL-bound work the process backend exists for:
    each worker process runs its own interpreter, so ``hi - lo`` pure-Python
    scoring calls proceed concurrently across cores.
    """
    view = SharedBlockBatch.attach(handle)
    try:
        data = view.data
        return np.array(
            [metric.score_block(data[i]) for i in range(lo, hi)], dtype=np.float64
        )
    finally:
        view.close()


class ProcessScoringStep(VectorizedScoringStep):
    """Scores block chunks on the shared process pool, payloads via shm.

    Same cross-rank grouping and chunking as :class:`ParallelScoringStep`,
    but each shape group's stacked payload is copied once into a
    :class:`~repro.grid.shm.SharedBlockBatch` segment and workers score
    contiguous row ranges of the shared view — the task queue only ever
    carries the metric, a segment handle, and two integers.  Because worker
    processes do not share the GIL, this is the backend that makes
    *pure-Python* per-block metrics scale with cores; for GIL-releasing
    NumPy metrics the thread backend remains the better choice (no segment
    copy, no task pickling).

    The metric must be picklable (the built-in metrics are plain
    dataclasses; user metrics must be module-level classes).  Metrics that
    override ``score_blocks`` with cross-block semantics are routed through
    the unchunked reference path, exactly as in the thread backend.  Every
    segment is disposed in a ``finally`` block, so worker exceptions cannot
    leak shared memory.
    """

    name = "scoring"

    def __init__(
        self,
        metric: ScoreMetric,
        platform: PlatformModel,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(metric, platform)
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers or default_process_workers())

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The engine-wide shared process pool (created on first use)."""
        return shared_process_pool()

    def _score_rank(self, blocks: Sequence[Block]) -> List[float]:
        if not blocks:
            return []
        overridden = type(self.metric).score_blocks is not ScoreMetric.score_blocks
        if not self.metric.supports_batch and overridden:
            # Cross-block semantics: one unchunked call (see class docs).
            return ScoringStep._score_rank(self, blocks)
        worker = (
            _score_shared_batch
            if self.metric.supports_batch
            else _score_shared_blocks
        )
        scores = np.empty(len(blocks), dtype=np.float64)
        shared: List[SharedBlockBatch] = []
        pending: List[Tuple[List[int], Future]] = []
        try:
            for indices in group_positions_by_shape(blocks):
                segment = SharedBlockBatch.create(
                    np.stack([blocks[i].data for i in indices])
                )
                shared.append(segment)
                handle = segment.handle()
                for lo, hi in chunk_bounds(len(indices), 2 * self.max_workers):
                    pending.append(
                        (
                            indices[lo:hi],
                            self.pool.submit(worker, self.metric, handle, lo, hi),
                        )
                    )
            for chunk, future in pending:
                scores[chunk] = np.asarray(future.result(), dtype=np.float64)
        finally:
            for segment in shared:
                segment.dispose()
        return [float(s) for s in scores]
