"""Step 1: scoring blocks of data.

Every rank scores its own blocks with the configured metric.  The step is
embarrassingly parallel; its modelled cost per rank is the metric's calibrated
per-point cost times the rank's point count, and the step ends at the global
sort (a collective), so the slowest rank determines the step's contribution to
the iteration time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.grid.block import Block
from repro.metrics.base import ScoreMetric
from repro.perfmodel.platform import PlatformModel
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class ScoringStep:
    """Scores per-rank block lists with a metric."""

    def __init__(self, metric: ScoreMetric, platform: PlatformModel) -> None:
        self.metric = metric
        self.platform = platform

    def run(
        self, per_rank_blocks: Sequence[Sequence[Block]]
    ) -> Tuple[List[List[ScorePair]], List[List[Block]], Dict[str, object]]:
        """Score every rank's blocks.

        Returns
        -------
        (per_rank_pairs, per_rank_blocks, info)
            ``per_rank_pairs[r]`` is the list of ``(block_id, score)`` pairs of
            rank ``r``; ``per_rank_blocks`` is the input with scores attached
            to the blocks; ``info`` holds measured and modelled per-rank
            seconds.
        """
        per_rank_pairs: List[List[ScorePair]] = []
        scored_blocks: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        for blocks in per_rank_blocks:
            pairs: List[ScorePair] = []
            scored: List[Block] = []
            npoints = 0
            with Timer() as timer:
                for block in blocks:
                    score = self.metric.score_block(block.data)
                    pairs.append((block.block_id, float(score)))
                    scored.append(block.with_score(score))
                    npoints += int(block.data.size)
            per_rank_pairs.append(pairs)
            scored_blocks.append(scored)
            measured.append(timer.elapsed)
            modelled.append(
                self.platform.scoring_seconds(self.metric, npoints, len(blocks))
            )
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
        }
        return per_rank_pairs, scored_blocks, info
