"""Algorithm 1: adapting the percentage of reduced blocks.

The controller assumes (1) the pipeline run time is a monotonically increasing
function of the number of non-reduced blocks and (2) the previous iteration's
time/percentage relationship approximates the current one.  It fits a line
through the two most recent (percentage, time) observations and inverts it to
find the percentage expected to hit the target; guards handle the degenerate
cases (same percentage twice in a row, or an apparently non-decreasing slope
caused by rendering-time randomness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import AdaptationConfig


def adapt_percent(
    target: float,
    t_prev: float,
    p_prev: float,
    t_curr: float,
    p_curr: float,
) -> float:
    """Compute the percentage of blocks to reduce for the next iteration.

    Direct transcription of the paper's Algorithm 1.

    Parameters
    ----------
    target:
        Required run time of the full pipeline (seconds).
    t_prev, p_prev:
        Run time and percentage of the iteration before last
        (``t_{n-1}``, ``p_{n-1}``).
    t_curr, p_curr:
        Run time and percentage of the last iteration (``t_n``, ``p_n``).

    Returns
    -------
    float
        The next percentage ``p_{n+1}`` in [0, 100].
    """
    if target <= 0:
        raise ValueError(f"target must be > 0, got {target}")
    # Lines 2-7: deal with a vertical slope (same percentage twice in a row).
    # The paper works with integer percentages; with fractional ones the +/- 1
    # nudges are clamped so the result always stays in [0, 100].
    if p_prev == p_curr:
        if t_curr > target and p_curr < 100:
            return float(min(100.0, p_curr + 1))
        if t_curr < target and p_curr > 0:
            return float(max(0.0, p_curr - 1))
        return float(p_curr)
    # Lines 8-10: linear estimation t = a * p + b.
    a = (t_curr - t_prev) / (p_curr - p_prev)
    b = t_curr - a * p_curr
    # Line 11: may happen because of randomness in rendering time.
    if a >= 0:
        return float(min(100.0, p_curr + 1))
    # Line 13: estimate the next percentage.
    p_next = (target - b) / a
    # Line 14: make sure p stays within [0, 100].
    return float(min(100.0, max(p_next, 0.0)))


@dataclass
class _Observation:
    percent: float
    seconds: float


class AdaptationController:
    """Stateful wrapper around :func:`adapt_percent`.

    Keeps the two most recent (percentage, run time) observations, as the
    paper's algorithm requires, and applies the optional user bound on the
    maximum percentage.

    The initial state follows the paper: the (virtual) iteration before the
    first one is taken to be "everything reduced at zero cost"
    (``t_0 = 0, p_0 = 100``) and the first real iteration runs with
    ``initial_percent`` (0 by default).
    """

    def __init__(self, config: AdaptationConfig) -> None:
        self.config = config
        self._prev: Optional[_Observation] = _Observation(percent=100.0, seconds=0.0)
        self._curr: Optional[_Observation] = None
        self._next_percent: float = float(config.initial_percent)
        self.history: List[Tuple[float, float]] = []

    @property
    def next_percent(self) -> float:
        """Percentage the next iteration should use."""
        return self._next_percent

    def observe(self, percent: float, seconds: float) -> float:
        """Record the outcome of an iteration and return the next percentage.

        Parameters
        ----------
        percent:
            Percentage of reduced blocks the iteration actually used.
        seconds:
            Run time of the full pipeline for that iteration.
        """
        if not (0.0 <= percent <= 100.0):
            raise ValueError(f"percent must be in [0, 100], got {percent}")
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.history.append((float(percent), float(seconds)))
        if not self.config.enabled:
            self._next_percent = float(percent)
            return self._next_percent
        if self._curr is None:
            # First real observation: keep the seeded virtual iteration
            # (t0 = 0 with everything reduced) as the previous point.
            self._curr = _Observation(percent, seconds)
        else:
            self._prev, self._curr = self._curr, _Observation(percent, seconds)
        assert self._prev is not None
        p_next = adapt_percent(
            self.config.target_seconds,
            self._prev.seconds,
            self._prev.percent,
            self._curr.seconds,
            self._curr.percent,
        )
        self._next_percent = float(min(p_next, self.config.max_percent))
        return self._next_percent

    def converged(self, tolerance: float = 0.15, window: int = 3) -> bool:
        """True if the last ``window`` observed run times are within ``tolerance``
        (relative) of the target."""
        if not self.config.enabled:
            return False
        if len(self.history) < window:
            return False
        target = self.config.target_seconds
        recent = self.history[-window:]
        return all(abs(t - target) <= tolerance * target for _, t in recent)
