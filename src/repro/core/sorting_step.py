"""Step 2: globally sorting the <block id, score> pairs.

As in the paper, the pairs are sorted by increasing score (ties broken by
block id) and the sorted list is broadcast back to every process, so each
process knows the scores of all blocks — including those belonging to other
processes — and can take identical reduction/redistribution decisions without
further communication.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.step import IterationContext, StepReport
from repro.simmpi.communicator import BSPCommunicator
from repro.simmpi.sort import parallel_sort_pairs
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class SortingStep:
    """Gather-sort-broadcast of the score pairs over the communicator."""

    name = "sorting"

    def __init__(self, comm: BSPCommunicator) -> None:
        self.comm = comm

    def run(
        self, per_rank_pairs: Sequence[Sequence[ScorePair]]
    ) -> Tuple[List[ScorePair], Dict[str, float]]:
        """Sort the pairs globally.

        Returns
        -------
        (sorted_pairs, info)
            ``sorted_pairs`` is the global ascending (score, id) order (the
            same list every rank holds after the broadcast); ``info`` carries
            measured wall-clock and modelled communication seconds.
        """
        before = self.comm.communication_seconds()
        with Timer() as timer:
            per_rank_sorted = parallel_sort_pairs(self.comm, per_rank_pairs)
        modelled = self.comm.communication_seconds() - before
        sorted_pairs = per_rank_sorted[0]
        info = {"measured": timer.elapsed, "modelled": modelled}
        return sorted_pairs, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's pairs (PipelineStep contract)."""
        bytes_before = sum(e["bytes"] for e in self.comm.stats.values())
        sorted_pairs, info = self.run(context.require_pairs())
        payload = sum(e["bytes"] for e in self.comm.stats.values()) - bytes_before
        context.sorted_pairs = sorted_pairs
        return StepReport.collective(
            self.name,
            measured=float(info["measured"]),
            modelled=float(info["modelled"]),
            payload_bytes=float(payload),
            counters={"npairs": float(len(sorted_pairs))},
        )
