"""Step 2: globally sorting the <block id, score> pairs.

As in the paper, the pairs are sorted by increasing score (ties broken by
block id) and the sorted list is broadcast back to every process, so each
process knows the scores of all blocks — including those belonging to other
processes — and can take identical reduction/redistribution decisions without
further communication.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simmpi.communicator import BSPCommunicator
from repro.simmpi.sort import parallel_sort_pairs
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class SortingStep:
    """Gather-sort-broadcast of the score pairs over the communicator."""

    def __init__(self, comm: BSPCommunicator) -> None:
        self.comm = comm

    def run(
        self, per_rank_pairs: Sequence[Sequence[ScorePair]]
    ) -> Tuple[List[ScorePair], Dict[str, float]]:
        """Sort the pairs globally.

        Returns
        -------
        (sorted_pairs, info)
            ``sorted_pairs`` is the global ascending (score, id) order (the
            same list every rank holds after the broadcast); ``info`` carries
            measured wall-clock and modelled communication seconds.
        """
        before = self.comm.communication_seconds()
        with Timer() as timer:
            per_rank_sorted = parallel_sort_pairs(self.comm, per_rank_pairs)
        modelled = self.comm.communication_seconds() - before
        sorted_pairs = per_rank_sorted[0]
        info = {"measured": timer.elapsed, "modelled": modelled}
        return sorted_pairs, info
