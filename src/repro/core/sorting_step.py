"""Step 2: globally sorting the <block id, score> pairs.

As in the paper, the pairs are sorted by increasing score (ties broken by
block id) and the sorted list is broadcast back to every process, so each
process knows the scores of all blocks — including those belonging to other
processes — and can take identical reduction/redistribution decisions without
further communication.

Two implementations of the contract are provided, selected through the
backend registry:

* :class:`SortingStep` — the reference gather–sort–broadcast over Python
  tuples (:func:`~repro.simmpi.sort.parallel_sort_pairs`);
* :class:`VectorizedSortingStep` — the same collective with the root's sort
  done by ``np.lexsort`` over the gathered ``(score, id)`` arrays
  (:func:`~repro.simmpi.sort.parallel_sort_pairs_numpy`).  The communication
  payloads are identical byte for byte, so ``StepReport.modelled`` and
  ``payload_bytes`` are unchanged, and the sorted list is bitwise equal.
  The parallel backend uses this implementation too: the sort is a rooted
  collective, so there is no per-rank work to fan out over a pool.

Whatever the implementation, the step verifies that every rank holds the
identical sorted list after the broadcast — downstream reduction and
redistribution decisions silently diverge otherwise, so a future sort
backend that breaks the invariant fails loudly here instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.step import IterationContext, StepReport
from repro.simmpi.communicator import BSPCommunicator
from repro.simmpi.sort import parallel_sort_pairs, parallel_sort_pairs_numpy
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class SortingStep:
    """Gather-sort-broadcast of the score pairs over the communicator."""

    name = "sorting"

    def __init__(self, comm: BSPCommunicator) -> None:
        self.comm = comm

    def _sort(
        self, per_rank_pairs: Sequence[Sequence[ScorePair]]
    ) -> List[List[ScorePair]]:
        """Per-rank sorted lists (the backend hook)."""
        return parallel_sort_pairs(self.comm, per_rank_pairs)

    @staticmethod
    def _require_rank_agreement(
        per_rank_sorted: Sequence[List[ScorePair]],
    ) -> List[ScorePair]:
        """The (verified) common sorted list every rank holds.

        The whole downstream pipeline rests on every rank taking identical
        reduction/redistribution decisions from *its own* copy of the sorted
        list; a sort backend that hands different ranks different lists would
        corrupt results silently, so the comparison is complete — every rank,
        every pair.  Backends that share one broadcast buffer (the NumPy
        path) pass by identity in O(nranks); the reference path's distinct
        per-rank copies pay one full list comparison per rank, a cost that
        belongs to materialising per-rank copies in the first place.
        """
        reference = per_rank_sorted[0]
        for rank, pairs in enumerate(per_rank_sorted):
            if pairs is reference or pairs == reference:
                continue
            if len(pairs) != len(reference):
                raise RuntimeError(
                    f"sorting backend produced diverging per-rank lists: rank "
                    f"{rank} holds {len(pairs)} pairs, rank 0 holds "
                    f"{len(reference)}"
                )
            position = next(
                i for i, (a, b) in enumerate(zip(pairs, reference)) if a != b
            )
            raise RuntimeError(
                f"sorting backend produced diverging per-rank lists: rank "
                f"{rank} disagrees with rank 0 at position {position}: "
                f"{pairs[position]} vs {reference[position]}"
            )
        return reference

    def run(
        self, per_rank_pairs: Sequence[Sequence[ScorePair]]
    ) -> Tuple[List[ScorePair], Dict[str, float]]:
        """Sort the pairs globally.

        Returns
        -------
        (sorted_pairs, info)
            ``sorted_pairs`` is the global ascending (score, id) order (the
            same list every rank holds after the broadcast); ``info`` carries
            measured wall-clock and modelled communication seconds.
        """
        before = self.comm.communication_seconds()
        with Timer() as timer:
            per_rank_sorted = self._sort(per_rank_pairs)
        modelled = self.comm.communication_seconds() - before
        sorted_pairs = self._require_rank_agreement(per_rank_sorted)
        info = {"measured": timer.elapsed, "modelled": modelled}
        return sorted_pairs, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's pairs (PipelineStep contract)."""
        bytes_before = sum(e["bytes"] for e in self.comm.stats.values())
        sorted_pairs, info = self.run(context.require_pairs())
        payload = sum(e["bytes"] for e in self.comm.stats.values()) - bytes_before
        context.sorted_pairs = sorted_pairs
        return StepReport.collective(
            self.name,
            measured=float(info["measured"]),
            modelled=float(info["modelled"]),
            payload_bytes=float(payload),
            counters={"npairs": float(len(sorted_pairs))},
        )


class VectorizedSortingStep(SortingStep):
    """Sorting through the NumPy gather–lexsort–broadcast path.

    Bitwise-identical sorted list, identical modelled communication seconds
    and payload bytes (the wire format is unchanged); the root's Python
    ``sorted`` over tuples and the per-rank list materialisation collapse
    into one ``np.lexsort`` and a single shared result list.
    """

    name = "sorting"

    def _sort(
        self, per_rank_pairs: Sequence[Sequence[ScorePair]]
    ) -> List[List[ScorePair]]:
        return parallel_sort_pairs_numpy(self.comm, per_rank_pairs)
