"""Step 3: reducing the lowest-scored blocks to their corners.

Given the globally sorted ``<id, score>`` list (identical on every rank) and
the percentage ``p``, the ``p``% blocks with the lowest scores are reduced to
2×2×2 corner blocks.  Every rank takes the same decision locally, then reduces
only the blocks it owns.

Like scoring and rendering, the step comes in three implementations of one
contract, selected through the backend registry:

* :class:`ReductionStep` — the reference loop: every block is tested against
  the reduced-id set and reduced one :func:`~repro.grid.reduction.reduce_block`
  call at a time;
* :class:`VectorizedReductionStep` — the selected blocks of *all* ranks are
  grouped by payload shape/dtype (the
  :func:`~repro.grid.batch.group_positions_by_shape` key every stacked hot
  path shares) and each group's corners are gathered with one
  :func:`~repro.grid.reduction.reduce_to_corners_batch` fancy-index pass;
* :class:`ParallelReductionStep` — the per-rank batched pass fanned out over
  a ``concurrent.futures`` thread pool across ranks.

All backends produce bitwise-identical reduced payloads and modelled seconds
(the modelled cost is derived from
:attr:`~repro.perfmodel.platform.PlatformModel.seconds_per_reduced_block`);
measured wall-clock is the one quantity that legitimately differs.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.batch import group_positions_by_shape
from repro.grid.block import Block
from repro.grid.reduction import reduce_block, reduce_to_corners_batch
from repro.perfmodel.platform import PlatformModel
from repro.utils.pool import LazyThreadPool
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]

#: Default modelled cost of reducing one block (a strided copy of 8 values);
#: used when the step is built without a platform model.  Engine-built steps
#: derive the coefficient from ``PlatformModel.seconds_per_reduced_block``
#: (same default), exactly like scoring and rendering derive their costs.
SECONDS_PER_REDUCED_BLOCK = 2.0e-6


def select_blocks_to_reduce(sorted_pairs: Sequence[ScorePair], percent: float) -> Set[int]:
    """Ids of the ``percent``% lowest-scored blocks.

    ``sorted_pairs`` must already be in ascending (score, id) order — the
    output of the sorting step.  The count is rounded half-up to the nearest
    block (``floor(x + 0.5)``): Python's ``round()`` does banker's rounding,
    under which e.g. 5% of 10 blocks reduced 0 blocks while 5% of 30 reduced
    2 — the same requested percentage must round the same way regardless of
    the block count's parity.
    """
    if not (0.0 <= percent <= 100.0):
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    nblocks = len(sorted_pairs)
    count = int(math.floor(nblocks * percent / 100.0 + 0.5))
    count = min(count, nblocks)
    return {block_id for block_id, _ in sorted_pairs[:count]}


class ReductionStep:
    """Reduces the selected blocks on every rank (per-block reference loop).

    ``platform`` supplies the modelled per-reduced-block cost
    (:meth:`~repro.perfmodel.platform.PlatformModel.reduction_seconds`); when
    omitted the step falls back to :data:`SECONDS_PER_REDUCED_BLOCK`, which is
    also the platform's default, so modelled figures are identical either way.
    """

    name = "reduction"

    def __init__(self, platform: Optional[PlatformModel] = None) -> None:
        self.platform = platform

    def _reduction_seconds(self, nreduced: int) -> float:
        """Modelled seconds for one rank to reduce ``nreduced`` blocks."""
        if self.platform is not None:
            return self.platform.reduction_seconds(nreduced)
        return nreduced * SECONDS_PER_REDUCED_BLOCK

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Apply the reduction.

        Returns
        -------
        (per_rank_blocks, reduced_ids, info)
            Blocks with the selected ones replaced by their reduced copies,
            the set of reduced block ids, and measured/modelled timing info.
        """
        reduced_ids = select_blocks_to_reduce(sorted_pairs, percent)
        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        for blocks in per_rank_blocks:
            reduced_count = 0
            with Timer() as timer:
                new_blocks = []
                for block in blocks:
                    if block.block_id in reduced_ids:
                        new_blocks.append(reduce_block(block))
                        reduced_count += 1
                    else:
                        new_blocks.append(block)
            out.append(new_blocks)
            measured.append(timer.elapsed)
            modelled.append(self._reduction_seconds(reduced_count))
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
        }
        return out, reduced_ids, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's blocks (PipelineStep contract)."""
        out, reduced_ids, info = self.run(
            context.per_rank_blocks, context.require_sorted(), context.percent
        )
        context.per_rank_blocks = out
        context.reduced_ids = reduced_ids
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={"nreduced": float(info["nreduced"])},
        )


class VectorizedReductionStep(ReductionStep):
    """Reduces the selected blocks of all ranks in shape-grouped batches.

    The reduction is embarrassingly parallel, so — like the vectorised
    scoring step — the batch spans *across* ranks: every selected block of
    the iteration is grouped by payload shape/dtype, each group's payloads
    are stacked, and the corner values of the whole group are gathered with
    one :func:`~repro.grid.reduction.reduce_to_corners_batch` fancy-index
    pass (bitwise equal to :func:`~repro.grid.reduction.reduce_to_corners`
    per block).  A typical iteration has exactly one group: the full-block
    shape of the decomposition.

    Measured wall-clock of the single pass is attributed to ranks
    proportionally to their selected-block counts (the convention the
    vectorised scoring step set); modelled per-rank seconds are computed
    exactly as in the serial step.
    """

    name = "reduction"

    def _selected_positions(
        self, blocks: Sequence[Block], reduced_ids: Set[int]
    ) -> List[int]:
        """Positions of the blocks the decision set selects (one scan)."""
        return [
            i for i, block in enumerate(blocks) if block.block_id in reduced_ids
        ]

    def _apply_selected(
        self, blocks: Sequence[Block], selected: Sequence[int]
    ) -> List[Block]:
        """Reduced copies of ``blocks[selected]``, batched by shape.

        Already-reduced blocks among the selection are left as-is (the same
        no-op :func:`~repro.grid.reduction.reduce_block` performs); the rest
        are grouped by payload shape/dtype and corner-gathered per group.
        """
        out = list(blocks)
        targets = [i for i in selected if not blocks[i].reduced]
        if not targets:
            return out
        for positions in group_positions_by_shape([blocks[i] for i in targets]):
            indices = [targets[p] for p in positions]
            stacked = np.stack([blocks[i].data for i in indices])
            corners = reduce_to_corners_batch(stacked)
            for row, i in enumerate(indices):
                out[i] = blocks[i].with_corner_payload(corners[row])
        return out

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Reduce every rank's selected blocks in one cross-rank pass."""
        reduced_ids = select_blocks_to_reduce(sorted_pairs, percent)
        with Timer() as timer:
            all_blocks: List[Block] = []
            rank_slices: List[Tuple[int, int]] = []
            rank_selected: List[List[int]] = []
            for blocks in per_rank_blocks:
                offset = len(all_blocks)
                rank_slices.append((offset, offset + len(blocks)))
                rank_selected.append(
                    [offset + i for i in self._selected_positions(blocks, reduced_ids)]
                )
                all_blocks.extend(blocks)
            selected = [i for positions in rank_selected for i in positions]
            new_all = self._apply_selected(all_blocks, selected)
        elapsed = timer.elapsed

        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        rank_counts = [len(positions) for positions in rank_selected]
        total_count = sum(rank_counts)
        for (lo, hi), reduced_count in zip(rank_slices, rank_counts):
            out.append(new_all[lo:hi])
            measured.append(
                elapsed * (reduced_count / total_count) if total_count else 0.0
            )
            modelled.append(self._reduction_seconds(reduced_count))
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
        }
        return out, reduced_ids, info


class ParallelReductionStep(VectorizedReductionStep):
    """The batched reduction pass fanned out over a thread pool across ranks.

    Ranks reduce independently (the decision set is already global), so the
    pool maps whole ranks to workers, each worker running the per-rank
    shape-grouped batch pass of :class:`VectorizedReductionStep`.  Per-rank
    ``measured`` seconds are each task's own wall-clock (tasks run
    concurrently, so their sum exceeds the step's elapsed time); everything
    decision-bearing is bitwise identical to the other backends.
    """

    name = "reduction"

    def __init__(
        self,
        platform: Optional[PlatformModel] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(platform)
        self._workers = LazyThreadPool(
            max_workers, thread_name_prefix="reduction-worker"
        )
        self.max_workers = self._workers.max_workers

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The step's worker pool, created on first use and reused across
        iterations (the step lives as long as its engine)."""
        return self._workers.executor

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Reduce every rank's selected blocks, one pool task per rank."""
        reduced_ids = select_blocks_to_reduce(sorted_pairs, percent)

        def reduce_rank(
            blocks: Sequence[Block],
        ) -> Tuple[List[Block], int, float]:
            with Timer() as timer:
                selected = self._selected_positions(blocks, reduced_ids)
                new_blocks = self._apply_selected(blocks, selected)
            return new_blocks, len(selected), timer.elapsed

        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        for new_blocks, reduced_count, elapsed in self.pool.map(
            reduce_rank, per_rank_blocks
        ):
            out.append(new_blocks)
            measured.append(elapsed)
            modelled.append(self._reduction_seconds(reduced_count))
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
        }
        return out, reduced_ids, info
