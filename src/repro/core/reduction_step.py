"""Step 3: reducing the lowest-scored blocks down the quality ladder.

Given the globally sorted ``<id, score>`` list (identical on every rank) and
the percentage ``p``, the ``p``% blocks with the lowest scores are reduced —
by default all the way to 2×2×2 corner blocks, or, when the pipeline's
``quality_ladder`` has several rungs, spread over the reduction ladder by
score quantile (:func:`select_reduction_levels`): the very lowest scores get
the most aggressive level, better-scored selected blocks keep a level-1
strided downsample.  Every rank takes the same decision locally, then reduces
only the blocks it owns.

Like scoring and rendering, the step comes in three implementations of one
contract, selected through the backend registry:

* :class:`ReductionStep` — the reference loop: every block is tested against
  the reduced-id set and reduced one :func:`~repro.grid.reduction.reduce_block`
  call at a time;
* :class:`VectorizedReductionStep` — the selected blocks of *all* ranks are
  grouped by payload shape/dtype (the
  :func:`~repro.grid.batch.group_positions_by_shape` key every stacked hot
  path shares) and each group's corners are gathered with one
  :func:`~repro.grid.reduction.reduce_to_corners_batch` fancy-index pass;
* :class:`ParallelReductionStep` — the per-rank batched pass fanned out over
  a ``concurrent.futures`` thread pool across ranks.

All backends produce bitwise-identical reduced payloads and modelled seconds
(the modelled cost is derived from
:attr:`~repro.perfmodel.platform.PlatformModel.seconds_per_reduced_block`);
measured wall-clock is the one quantity that legitimately differs.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.batch import group_positions_by_shape
from repro.grid.block import Block
from repro.grid.reduction import reduce_block, reduce_to_level_batch
from repro.perfmodel.platform import PlatformModel
from repro.utils.pool import LazyThreadPool
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]

#: Default modelled cost of reducing one block (a strided copy of 8 values);
#: used when the step is built without a platform model.  Engine-built steps
#: derive the coefficient from ``PlatformModel.seconds_per_reduced_block``
#: (same default), exactly like scoring and rendering derive their costs.
SECONDS_PER_REDUCED_BLOCK = 2.0e-6

#: The default quality ladder: every selected block goes to the corner rung,
#: which is bit-for-bit the pre-ladder binary behavior.
DEFAULT_QUALITY_LADDER: Tuple[Tuple[int, float], ...] = ((2, 1.0),)

QualityLadder = Tuple[Tuple[int, float], ...]


def validate_quality_ladder(ladder: Sequence[Sequence[float]]) -> QualityLadder:
    """Normalise and validate a quality ladder; returns the canonical tuple.

    A ladder is an ordered sequence of ``(level, fraction)`` rungs: levels
    must be 1 or 2 (level 0 would mean "select a block and leave it full"),
    appear at most once, fractions must be positive and sum to 1.
    """
    rungs = []
    seen = set()
    for rung in ladder:
        if len(rung) != 2:
            raise ValueError(
                f"each quality_ladder rung must be (level, fraction), got {rung!r}"
            )
        level, fraction = int(rung[0]), float(rung[1])
        if level not in (1, 2):
            raise ValueError(
                f"quality_ladder levels must be 1 or 2, got {rung[0]!r}"
            )
        if level in seen:
            raise ValueError(f"quality_ladder repeats level {level}")
        if not (0.0 < fraction <= 1.0):
            raise ValueError(
                f"quality_ladder fractions must be in (0, 1], got {rung[1]!r}"
            )
        seen.add(level)
        rungs.append((level, fraction))
    if not rungs:
        raise ValueError("quality_ladder must have at least one rung")
    total = sum(fraction for _, fraction in rungs)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(
            f"quality_ladder fractions must sum to 1, got {total}"
        )
    return tuple(rungs)


def select_reduction_levels(
    sorted_pairs: Sequence[ScorePair],
    percent: float,
    ladder: QualityLadder = DEFAULT_QUALITY_LADDER,
) -> Dict[int, int]:
    """Map each selected block id to its target reduction-ladder level.

    The selected set is exactly :func:`select_blocks_to_reduce`'s — the
    ``percent``% lowest-scored blocks, counted with the same half-up
    rounding.  Within that ascending-score prefix the ladder's rungs are
    applied in order: the first rung's fraction of the selection (rounded
    half-up) gets that rung's level, and so on, the last rung absorbing the
    rounding remainder.  Every rank computes this from the globally sorted
    list, so the decision is identical everywhere without communication.
    """
    if not (0.0 <= percent <= 100.0):
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    ladder = validate_quality_ladder(ladder)
    nblocks = len(sorted_pairs)
    count = min(int(math.floor(nblocks * percent / 100.0 + 0.5)), nblocks)
    levels: Dict[int, int] = {}
    offset = 0
    for rung_index, (level, fraction) in enumerate(ladder):
        if rung_index == len(ladder) - 1:
            take = count - offset
        else:
            take = min(int(math.floor(count * fraction + 0.5)), count - offset)
        for block_id, _ in sorted_pairs[offset : offset + take]:
            levels[block_id] = level
        offset += take
    return levels


def select_blocks_to_reduce(sorted_pairs: Sequence[ScorePair], percent: float) -> Set[int]:
    """Ids of the ``percent``% lowest-scored blocks.

    ``sorted_pairs`` must already be in ascending (score, id) order — the
    output of the sorting step.  The count is rounded half-up to the nearest
    block (``floor(x + 0.5)``): Python's ``round()`` does banker's rounding,
    under which e.g. 5% of 10 blocks reduced 0 blocks while 5% of 30 reduced
    2 — the same requested percentage must round the same way regardless of
    the block count's parity.
    """
    if not (0.0 <= percent <= 100.0):
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    nblocks = len(sorted_pairs)
    count = int(math.floor(nblocks * percent / 100.0 + 0.5))
    count = min(count, nblocks)
    return {block_id for block_id, _ in sorted_pairs[:count]}


class ReductionStep:
    """Reduces the selected blocks on every rank (per-block reference loop).

    ``platform`` supplies the modelled per-reduced-block cost
    (:meth:`~repro.perfmodel.platform.PlatformModel.reduction_seconds`); when
    omitted the step falls back to :data:`SECONDS_PER_REDUCED_BLOCK`, which is
    also the platform's default, so modelled figures are identical either way.
    """

    name = "reduction"

    def __init__(
        self,
        platform: Optional[PlatformModel] = None,
        quality_ladder: QualityLadder = DEFAULT_QUALITY_LADDER,
    ) -> None:
        self.platform = platform
        self.quality_ladder = validate_quality_ladder(quality_ladder)

    def _reduction_seconds(
        self, nreduced: int, points_copied: Optional[int] = None
    ) -> float:
        """Modelled seconds for one rank to reduce ``nreduced`` blocks.

        ``points_copied`` is the total payload points of the rank's reduced
        blocks; when given, the cost scales with it (in corner-block units of
        8 points), which prices a level-1 downsample by its real copy volume.
        When every selected block goes to the corner rung the two forms are
        bitwise identical.
        """
        if self.platform is not None:
            return self.platform.reduction_seconds(nreduced, points_copied)
        if points_copied is None:
            return nreduced * SECONDS_PER_REDUCED_BLOCK
        return SECONDS_PER_REDUCED_BLOCK * (points_copied / 8.0)

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Apply the reduction.

        Returns
        -------
        (per_rank_blocks, reduced_ids, info)
            Blocks with the selected ones replaced by their reduced copies,
            the set of reduced block ids, and measured/modelled timing info
            (including the per-block ladder decision under
            ``info["reduction_levels"]``).
        """
        levels = select_reduction_levels(sorted_pairs, percent, self.quality_ladder)
        reduced_ids = set(levels)
        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        points_total = 0
        for blocks in per_rank_blocks:
            reduced_count = 0
            points_copied = 0
            with Timer() as timer:
                new_blocks = []
                for block in blocks:
                    target = levels.get(block.block_id)
                    if target is not None:
                        new_block = reduce_block(block, target)
                        new_blocks.append(new_block)
                        reduced_count += 1
                        points_copied += int(new_block.data.size)
                    else:
                        new_blocks.append(block)
            out.append(new_blocks)
            measured.append(timer.elapsed)
            modelled.append(self._reduction_seconds(reduced_count, points_copied))
            points_total += points_copied
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
            "points_copied": points_total,
            "reduction_levels": levels,
        }
        return out, reduced_ids, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's blocks (PipelineStep contract)."""
        out, reduced_ids, info = self.run(
            context.per_rank_blocks, context.require_sorted(), context.percent
        )
        context.per_rank_blocks = out
        context.reduced_ids = reduced_ids
        context.reduction_levels = dict(info["reduction_levels"])
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={
                "nreduced": float(info["nreduced"]),
                "points_copied": float(info["points_copied"]),
            },
        )


class VectorizedReductionStep(ReductionStep):
    """Reduces the selected blocks of all ranks in shape-grouped batches.

    The reduction is embarrassingly parallel, so — like the vectorised
    scoring step — the batch spans *across* ranks: every selected block of
    the iteration is grouped by payload shape/dtype, each group's payloads
    are stacked, and the corner values of the whole group are gathered with
    one :func:`~repro.grid.reduction.reduce_to_corners_batch` fancy-index
    pass (bitwise equal to :func:`~repro.grid.reduction.reduce_to_corners`
    per block).  A typical iteration has exactly one group: the full-block
    shape of the decomposition.

    Measured wall-clock of the single pass is attributed to ranks
    proportionally to their selected-block counts (the convention the
    vectorised scoring step set); modelled per-rank seconds are computed
    exactly as in the serial step.
    """

    name = "reduction"

    def _selected_positions(
        self, blocks: Sequence[Block], reduced_ids: "Set[int] | Dict[int, int]"
    ) -> List[int]:
        """Positions of the blocks the decision set selects (one scan)."""
        return [
            i for i, block in enumerate(blocks) if block.block_id in reduced_ids
        ]

    def _apply_selected(
        self,
        blocks: Sequence[Block],
        selected: Sequence[int],
        levels: Dict[int, int],
    ) -> List[Block]:
        """Reduced copies of ``blocks[selected]``, batched by target and shape.

        Blocks already at (or beyond) their target level are left as-is (the
        same no-op :func:`~repro.grid.reduction.reduce_block` performs); the
        rest are bucketed by target ladder level, grouped by payload
        shape/dtype within each bucket, and gathered with one
        :func:`~repro.grid.reduction.reduce_to_level_batch` pass per group.
        """
        out = list(blocks)
        by_level: Dict[int, List[int]] = {}
        for i in selected:
            target = levels[blocks[i].block_id]
            if blocks[i].level < target:
                by_level.setdefault(target, []).append(i)
        for target in sorted(by_level):
            targets = by_level[target]
            for positions in group_positions_by_shape([blocks[i] for i in targets]):
                indices = [targets[p] for p in positions]
                stacked = np.stack([blocks[i].data for i in indices])
                payloads = reduce_to_level_batch(stacked, target)
                for row, i in enumerate(indices):
                    out[i] = blocks[i].with_level_payload(payloads[row], target)
        return out

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Reduce every rank's selected blocks in one cross-rank pass."""
        levels = select_reduction_levels(sorted_pairs, percent, self.quality_ladder)
        reduced_ids = set(levels)
        with Timer() as timer:
            all_blocks: List[Block] = []
            rank_slices: List[Tuple[int, int]] = []
            rank_selected: List[List[int]] = []
            for blocks in per_rank_blocks:
                offset = len(all_blocks)
                rank_slices.append((offset, offset + len(blocks)))
                rank_selected.append(
                    [offset + i for i in self._selected_positions(blocks, levels)]
                )
                all_blocks.extend(blocks)
            selected = [i for positions in rank_selected for i in positions]
            new_all = self._apply_selected(all_blocks, selected, levels)
        elapsed = timer.elapsed

        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        points_total = 0
        rank_counts = [len(positions) for positions in rank_selected]
        total_count = sum(rank_counts)
        for (lo, hi), positions, reduced_count in zip(
            rank_slices, rank_selected, rank_counts
        ):
            out.append(new_all[lo:hi])
            points_copied = sum(int(new_all[i].data.size) for i in positions)
            measured.append(
                elapsed * (reduced_count / total_count) if total_count else 0.0
            )
            modelled.append(self._reduction_seconds(reduced_count, points_copied))
            points_total += points_copied
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
            "points_copied": points_total,
            "reduction_levels": levels,
        }
        return out, reduced_ids, info


class ParallelReductionStep(VectorizedReductionStep):
    """The batched reduction pass fanned out over a thread pool across ranks.

    Ranks reduce independently (the decision set is already global), so the
    pool maps whole ranks to workers, each worker running the per-rank
    shape-grouped batch pass of :class:`VectorizedReductionStep`.  Per-rank
    ``measured`` seconds are each task's own wall-clock (tasks run
    concurrently, so their sum exceeds the step's elapsed time); everything
    decision-bearing is bitwise identical to the other backends.
    """

    name = "reduction"

    def __init__(
        self,
        platform: Optional[PlatformModel] = None,
        max_workers: Optional[int] = None,
        quality_ladder: QualityLadder = DEFAULT_QUALITY_LADDER,
    ) -> None:
        super().__init__(platform, quality_ladder=quality_ladder)
        self._workers = LazyThreadPool(
            max_workers, thread_name_prefix="reduction-worker"
        )
        self.max_workers = self._workers.max_workers

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The step's worker pool, created on first use and reused across
        iterations (the step lives as long as its engine)."""
        return self._workers.executor

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Reduce every rank's selected blocks, one pool task per rank."""
        levels = select_reduction_levels(sorted_pairs, percent, self.quality_ladder)
        reduced_ids = set(levels)

        def reduce_rank(
            blocks: Sequence[Block],
        ) -> Tuple[List[Block], int, int, float]:
            with Timer() as timer:
                selected = self._selected_positions(blocks, levels)
                new_blocks = self._apply_selected(blocks, selected, levels)
                points_copied = sum(
                    int(new_blocks[i].data.size) for i in selected
                )
            return new_blocks, len(selected), points_copied, timer.elapsed

        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        points_total = 0
        for new_blocks, reduced_count, points_copied, elapsed in self.pool.map(
            reduce_rank, per_rank_blocks
        ):
            out.append(new_blocks)
            measured.append(elapsed)
            modelled.append(self._reduction_seconds(reduced_count, points_copied))
            points_total += points_copied
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
            "points_copied": points_total,
            "reduction_levels": levels,
        }
        return out, reduced_ids, info
