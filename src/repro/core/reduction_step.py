"""Step 3: reducing the lowest-scored blocks to their corners.

Given the globally sorted ``<id, score>`` list (identical on every rank) and
the percentage ``p``, the ``p``% blocks with the lowest scores are reduced to
2×2×2 corner blocks.  Every rank takes the same decision locally, then reduces
only the blocks it owns.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.step import IterationContext, StepReport
from repro.grid.block import Block
from repro.grid.reduction import reduce_block
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]

#: Modelled cost of reducing one block (a strided copy of 8 values).
SECONDS_PER_REDUCED_BLOCK = 2.0e-6


def select_blocks_to_reduce(sorted_pairs: Sequence[ScorePair], percent: float) -> Set[int]:
    """Ids of the ``percent``% lowest-scored blocks.

    ``sorted_pairs`` must already be in ascending (score, id) order — the
    output of the sorting step.  The count is rounded half-up to the nearest
    block (``floor(x + 0.5)``): Python's ``round()`` does banker's rounding,
    under which e.g. 5% of 10 blocks reduced 0 blocks while 5% of 30 reduced
    2 — the same requested percentage must round the same way regardless of
    the block count's parity.
    """
    if not (0.0 <= percent <= 100.0):
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    nblocks = len(sorted_pairs)
    count = int(math.floor(nblocks * percent / 100.0 + 0.5))
    count = min(count, nblocks)
    return {block_id for block_id, _ in sorted_pairs[:count]}


class ReductionStep:
    """Reduces the selected blocks on every rank."""

    name = "reduction"

    def run(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        percent: float,
    ) -> Tuple[List[List[Block]], Set[int], Dict[str, object]]:
        """Apply the reduction.

        Returns
        -------
        (per_rank_blocks, reduced_ids, info)
            Blocks with the selected ones replaced by their reduced copies,
            the set of reduced block ids, and measured/modelled timing info.
        """
        reduced_ids = select_blocks_to_reduce(sorted_pairs, percent)
        out: List[List[Block]] = []
        measured: List[float] = []
        modelled: List[float] = []
        for blocks in per_rank_blocks:
            reduced_count = 0
            with Timer() as timer:
                new_blocks = []
                for block in blocks:
                    if block.block_id in reduced_ids:
                        new_blocks.append(reduce_block(block))
                        reduced_count += 1
                    else:
                        new_blocks.append(block)
            out.append(new_blocks)
            measured.append(timer.elapsed)
            modelled.append(reduced_count * SECONDS_PER_REDUCED_BLOCK)
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "nreduced": len(reduced_ids),
        }
        return out, reduced_ids, info

    def execute(self, context: IterationContext) -> StepReport:
        """Run the step over the context's blocks (PipelineStep contract)."""
        out, reduced_ids, info = self.run(
            context.per_rank_blocks, context.require_sorted(), context.percent
        )
        context.per_rank_blocks = out
        context.reduced_ids = reduced_ids
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={"nreduced": float(info["nreduced"])},
        )
