"""The orchestrating in situ pipeline.

:class:`InSituPipeline` wires the six steps of the paper's Figure 2 together
over a set of virtual ranks: score → sort → reduce → redistribute → render →
adapt.  It takes per-rank block lists as input (one call per simulation
iteration), which is how the simulation — or the dataset replayer standing in
for it — hands data to the in situ layer.

The five data steps live in an :class:`~repro.core.engine.ExecutionEngine`
(selected by ``PipelineConfig.engine``: serial, vectorized, or parallel —
the backend picks both the scoring and the rendering implementation); the
pipeline adds the adaptation controller and the performance monitor on top.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.adaptation import AdaptationController
from repro.core.config import PipelineConfig
from repro.core.engine import ExecutionEngine, PipelinedEngine
from repro.core.monitor import PerformanceMonitor
from repro.core.results import IterationResult, PipelineRunResult
from repro.core.step import IterationContext
from repro.grid.block import Block
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator
from repro.viz.catalyst import RenderResult


class InSituPipeline:
    """Performance-constrained in situ visualization pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, adaptation
        target, engine backend, ...).
    platform:
        Cost model of the platform the run is meant to represent (64- or
        400-core Blue Waters by default); pass a re-calibrated platform to
        anchor the baselines to the paper's numbers.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests); a fresh
        :class:`BSPCommunicator` is created when omitted.
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        engine_cls = PipelinedEngine if config.pipelined else ExecutionEngine
        self.engine = engine_cls(config, platform, nranks=nranks, comm=comm)
        self.nranks = self.engine.nranks
        self.comm = self.engine.comm
        # Step handles, kept as attributes for introspection and tests.
        self.metric = self.engine.metric
        self.scoring = self.engine.scoring
        self.sorting = self.engine.sorting
        self.reduction = self.engine.reduction
        self.strategy = self.engine.strategy
        self.rendering = self.engine.rendering
        self.controller = AdaptationController(config.adaptation)
        self.monitor = PerformanceMonitor()
        self._iteration_index = 0

    # -- main entry point ---------------------------------------------------------

    def process_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent_override: Optional[float] = None,
    ) -> Tuple[IterationResult, List[RenderResult]]:
        """Run the full pipeline on one iteration's blocks.

        Parameters
        ----------
        per_rank_blocks:
            ``per_rank_blocks[r]`` is the list of blocks rank ``r`` received
            from the simulation for this iteration.
        percent_override:
            Fixed percentage of blocks to reduce, bypassing the adaptation
            controller (used by the fixed-percentage experiments).

        Returns
        -------
        (iteration_result, render_results)
            The timing record of the iteration and the per-rank render
            results of the final rendering step.
        """
        iteration = self._iteration_index
        percent = (
            float(percent_override)
            if percent_override is not None
            else float(self.controller.next_percent)
        )
        nblocks = sum(len(blocks) for blocks in per_rank_blocks)

        context = self.engine.run_iteration(per_rank_blocks, percent, iteration)
        result = self._finish_iteration(
            context, nblocks, adapt=percent_override is None
        )
        return result, list(context.render_results or [])

    def _finish_iteration(
        self, context: IterationContext, nblocks: int, adapt: bool
    ) -> IterationResult:
        """Record one completed iteration (step 6 of Figure 2 lives here).

        Condenses the context into an :class:`IterationResult`, feeds the
        monitor, and — unless the percentage was forced — lets the adaptation
        controller observe the full-pipeline time.
        """
        result = self.engine.iteration_result(context, nblocks=nblocks)
        self.monitor.record_iteration(result)
        observed = (
            result.modelled_total if self.config.use_modelled_time else result.measured_total
        )
        if adapt:
            self.controller.observe(context.percent, observed)
        self._iteration_index += 1
        return result

    # -- convenience -----------------------------------------------------------------

    def run(
        self,
        iteration_blocks: Sequence[Sequence[Sequence[Block]]],
        percent_override: Optional[float] = None,
        on_iteration: Optional[Callable[[IterationResult], None]] = None,
    ) -> PipelineRunResult:
        """Process several iterations and return the aggregated run result.

        ``iteration_blocks[i][r]`` is the block list of rank ``r`` at
        iteration ``i``.  ``on_iteration`` (if given) is called with each
        :class:`IterationResult` as soon as it is recorded, in iteration
        order — the hook the serve mode's streaming responses use.

        When the pipeline was configured with ``pipelined=True`` and the
        percentage schedule is known up front (``percent_override`` given,
        or adaptation disabled), the iterations are overlapped on the
        :class:`~repro.core.engine.PipelinedEngine`; otherwise they run
        strictly in sequence, which the Algorithm 1 feedback loop requires.
        """
        if self._can_overlap(percent_override):
            return self._run_pipelined(
                iteration_blocks, percent_override, on_iteration
            )
        for per_rank_blocks in iteration_blocks:
            result, _ = self.process_iteration(
                per_rank_blocks, percent_override=percent_override
            )
            if on_iteration is not None:
                on_iteration(result)
        return self.monitor.to_run_result(self.config_summary())

    def _can_overlap(self, percent_override: Optional[float]) -> bool:
        """Whether iterations may overlap: pipelined engine + no feedback."""
        return isinstance(self.engine, PipelinedEngine) and (
            percent_override is not None or not self.config.adaptation.enabled
        )

    def _run_pipelined(
        self,
        iteration_blocks: Sequence[Sequence[Sequence[Block]]],
        percent_override: Optional[float],
        on_iteration: Optional[Callable[[IterationResult], None]],
    ) -> PipelineRunResult:
        """Overlapped run path (percentages resolved before any stage runs).

        With a fixed override the percentage is the same for every
        iteration; with adaptation disabled the controller echoes its
        percentage back, so ``next_percent`` never moves either way and the
        whole schedule is known up front.  Completion callbacks from the
        engine arrive strictly in iteration order, so the monitor /
        controller bookkeeping matches the sequential path exactly.
        """
        assert isinstance(self.engine, PipelinedEngine)
        percent = (
            float(percent_override)
            if percent_override is not None
            else float(self.controller.next_percent)
        )
        inputs = [
            (per_rank_blocks, percent, self._iteration_index + offset)
            for offset, per_rank_blocks in enumerate(iteration_blocks)
        ]
        nblocks_list = [
            sum(len(blocks) for blocks in per_rank_blocks)
            for per_rank_blocks, _, _ in inputs
        ]
        adapt = percent_override is None

        def complete(index: int, context: IterationContext) -> None:
            result = self._finish_iteration(context, nblocks_list[index], adapt)
            if on_iteration is not None:
                on_iteration(result)

        self.engine.run_iterations(inputs, on_complete=complete)
        return self.monitor.to_run_result(self.config_summary())

    def config_summary(self) -> Dict[str, object]:
        """Compact description of the run configuration (for reports)."""
        return {
            "metric": self.config.metric,
            "redistribution": self.config.redistribution,
            "engine": self.engine.backend,
            "pipelined": self.config.pipelined,
            "nranks": self.nranks,
            "platform": self.platform.name,
            "isosurface_level": self.config.isosurface_level,
            "adaptation_enabled": self.config.adaptation.enabled,
            "target_seconds": self.config.adaptation.target_seconds,
        }
