"""The orchestrating in situ pipeline.

:class:`InSituPipeline` wires the six steps of the paper's Figure 2 together
over a set of virtual ranks: score → sort → reduce → redistribute → render →
adapt.  It takes per-rank block lists as input (one call per simulation
iteration), which is how the simulation — or the dataset replayer standing in
for it — hands data to the in situ layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adaptation import AdaptationController
from repro.core.config import PipelineConfig
from repro.core.monitor import PerformanceMonitor
from repro.core.redistribution import make_strategy
from repro.core.reduction_step import ReductionStep
from repro.core.rendering_step import RenderingStep
from repro.core.results import IterationResult, PipelineRunResult
from repro.core.scoring_step import ScoringStep
from repro.core.sorting_step import SortingStep
from repro.grid.block import Block
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator
from repro.viz.catalyst import RenderResult


class InSituPipeline:
    """Performance-constrained in situ visualization pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, adaptation
        target, ...).
    platform:
        Cost model of the platform the run is meant to represent (64- or
        400-core Blue Waters by default); pass a re-calibrated platform to
        anchor the baselines to the paper's numbers.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests); a fresh
        :class:`BSPCommunicator` is created when omitted.
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.nranks = int(nranks) if nranks is not None else int(platform.ncores)
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        self.comm = comm or BSPCommunicator(self.nranks, cost_model=platform.network)
        if self.comm.nranks != self.nranks:
            raise ValueError(
                f"communicator has {self.comm.nranks} ranks, expected {self.nranks}"
            )
        self.metric = create_metric(config.metric)
        self.scoring = ScoringStep(self.metric, platform)
        self.sorting = SortingStep(self.comm)
        self.reduction = ReductionStep()
        self.strategy = make_strategy(config.redistribution, seed=config.shuffle_seed)
        self.rendering = RenderingStep(
            platform,
            isosurface_level=config.isosurface_level,
            render_mode=config.render_mode,
        )
        self.controller = AdaptationController(config.adaptation)
        self.monitor = PerformanceMonitor()
        self._iteration_index = 0

    # -- main entry point ---------------------------------------------------------

    def process_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent_override: Optional[float] = None,
    ) -> Tuple[IterationResult, List[RenderResult]]:
        """Run the full pipeline on one iteration's blocks.

        Parameters
        ----------
        per_rank_blocks:
            ``per_rank_blocks[r]`` is the list of blocks rank ``r`` received
            from the simulation for this iteration.
        percent_override:
            Fixed percentage of blocks to reduce, bypassing the adaptation
            controller (used by the fixed-percentage experiments).

        Returns
        -------
        (iteration_result, render_results)
            The timing record of the iteration and the per-rank render
            results of the final rendering step.
        """
        if len(per_rank_blocks) != self.nranks:
            raise ValueError(
                f"expected blocks for {self.nranks} ranks, got {len(per_rank_blocks)}"
            )
        iteration = self._iteration_index
        percent = (
            float(percent_override)
            if percent_override is not None
            else float(self.controller.next_percent)
        )
        if not (0.0 <= percent <= 100.0):
            raise ValueError(f"percent must be in [0, 100], got {percent}")

        # Step 1: scoring.
        per_rank_pairs, scored_blocks, scoring_info = self.scoring.run(per_rank_blocks)
        # Step 2: global sort (gather + sort + broadcast).
        sorted_pairs, sorting_info = self.sorting.run(per_rank_pairs)
        # Step 3: reduction of the lowest-scored percent.
        reduced_blocks, reduced_ids, reduction_info = self.reduction.run(
            scored_blocks, sorted_pairs, percent
        )
        # Step 4: load redistribution.
        redistributed, redistribution_info = self.strategy.redistribute(
            self.comm, reduced_blocks, sorted_pairs, iteration
        )
        # Step 5: rendering.
        render_results, rendering_info = self.rendering.run(redistributed, iteration)

        nblocks = sum(len(blocks) for blocks in per_rank_blocks)
        result = IterationResult(
            iteration=iteration,
            percent_reduced=percent,
            nblocks=nblocks,
            nreduced=int(reduction_info["nreduced"]),
            modelled_steps={
                "scoring": float(scoring_info["modelled_max"]),
                "sorting": float(sorting_info["modelled"]),
                "reduction": float(reduction_info["modelled_max"]),
                "redistribution": float(redistribution_info["modelled"]),
                "rendering": float(rendering_info["modelled_max"]),
            },
            measured_steps={
                "scoring": float(scoring_info["measured_max"]),
                "sorting": float(sorting_info["measured"]),
                "reduction": float(reduction_info["measured_max"]),
                "redistribution": float(redistribution_info["measured"]),
                "rendering": float(rendering_info["measured_max"]),
            },
            triangles_per_rank=list(rendering_info["triangles_per_rank"]),
            moved_bytes=float(redistribution_info["moved_bytes"]),
        )
        self.monitor.record_iteration(result)

        # Step 6: adapt the percentage from the observed full-pipeline time.
        observed = (
            result.modelled_total if self.config.use_modelled_time else result.measured_total
        )
        if percent_override is None:
            self.controller.observe(percent, observed)
        self._iteration_index += 1
        return result, render_results

    # -- convenience -----------------------------------------------------------------

    def run(
        self,
        iteration_blocks: Sequence[Sequence[Sequence[Block]]],
        percent_override: Optional[float] = None,
    ) -> PipelineRunResult:
        """Process several iterations and return the aggregated run result.

        ``iteration_blocks[i][r]`` is the block list of rank ``r`` at
        iteration ``i``.
        """
        for per_rank_blocks in iteration_blocks:
            self.process_iteration(per_rank_blocks, percent_override=percent_override)
        return self.monitor.to_run_result(self.config_summary())

    def config_summary(self) -> Dict[str, object]:
        """Compact description of the run configuration (for reports)."""
        return {
            "metric": self.config.metric,
            "redistribution": self.config.redistribution,
            "nranks": self.nranks,
            "platform": self.platform.name,
            "isosurface_level": self.config.isosurface_level,
            "adaptation_enabled": self.config.adaptation.enabled,
            "target_seconds": self.config.adaptation.target_seconds,
        }
