"""The orchestrating in situ pipeline.

:class:`InSituPipeline` wires the six steps of the paper's Figure 2 together
over a set of virtual ranks: score → sort → reduce → redistribute → render →
adapt.  It takes per-rank block lists as input (one call per simulation
iteration), which is how the simulation — or the dataset replayer standing in
for it — hands data to the in situ layer.

The five data steps live in an :class:`~repro.core.engine.ExecutionEngine`
(selected by ``PipelineConfig.engine``: serial, vectorized, or parallel —
the backend picks both the scoring and the rendering implementation); the
pipeline adds the adaptation controller and the performance monitor on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adaptation import AdaptationController
from repro.core.config import PipelineConfig
from repro.core.engine import ExecutionEngine
from repro.core.monitor import PerformanceMonitor
from repro.core.results import IterationResult, PipelineRunResult
from repro.grid.block import Block
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator
from repro.viz.catalyst import RenderResult


class InSituPipeline:
    """Performance-constrained in situ visualization pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, adaptation
        target, engine backend, ...).
    platform:
        Cost model of the platform the run is meant to represent (64- or
        400-core Blue Waters by default); pass a re-calibrated platform to
        anchor the baselines to the paper's numbers.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests); a fresh
        :class:`BSPCommunicator` is created when omitted.
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.engine = ExecutionEngine(config, platform, nranks=nranks, comm=comm)
        self.nranks = self.engine.nranks
        self.comm = self.engine.comm
        # Step handles, kept as attributes for introspection and tests.
        self.metric = self.engine.metric
        self.scoring = self.engine.scoring
        self.sorting = self.engine.sorting
        self.reduction = self.engine.reduction
        self.strategy = self.engine.strategy
        self.rendering = self.engine.rendering
        self.controller = AdaptationController(config.adaptation)
        self.monitor = PerformanceMonitor()
        self._iteration_index = 0

    # -- main entry point ---------------------------------------------------------

    def process_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent_override: Optional[float] = None,
    ) -> Tuple[IterationResult, List[RenderResult]]:
        """Run the full pipeline on one iteration's blocks.

        Parameters
        ----------
        per_rank_blocks:
            ``per_rank_blocks[r]`` is the list of blocks rank ``r`` received
            from the simulation for this iteration.
        percent_override:
            Fixed percentage of blocks to reduce, bypassing the adaptation
            controller (used by the fixed-percentage experiments).

        Returns
        -------
        (iteration_result, render_results)
            The timing record of the iteration and the per-rank render
            results of the final rendering step.
        """
        iteration = self._iteration_index
        percent = (
            float(percent_override)
            if percent_override is not None
            else float(self.controller.next_percent)
        )
        nblocks = sum(len(blocks) for blocks in per_rank_blocks)

        context = self.engine.run_iteration(per_rank_blocks, percent, iteration)
        result = self.engine.iteration_result(context, nblocks=nblocks)
        self.monitor.record_iteration(result)

        # Step 6: adapt the percentage from the observed full-pipeline time.
        observed = (
            result.modelled_total if self.config.use_modelled_time else result.measured_total
        )
        if percent_override is None:
            self.controller.observe(percent, observed)
        self._iteration_index += 1
        return result, list(context.render_results or [])

    # -- convenience -----------------------------------------------------------------

    def run(
        self,
        iteration_blocks: Sequence[Sequence[Sequence[Block]]],
        percent_override: Optional[float] = None,
    ) -> PipelineRunResult:
        """Process several iterations and return the aggregated run result.

        ``iteration_blocks[i][r]`` is the block list of rank ``r`` at
        iteration ``i``.
        """
        for per_rank_blocks in iteration_blocks:
            self.process_iteration(per_rank_blocks, percent_override=percent_override)
        return self.monitor.to_run_result(self.config_summary())

    def config_summary(self) -> Dict[str, object]:
        """Compact description of the run configuration (for reports)."""
        return {
            "metric": self.config.metric,
            "redistribution": self.config.redistribution,
            "engine": self.engine.backend,
            "nranks": self.nranks,
            "platform": self.platform.name,
            "isosurface_level": self.config.isosurface_level,
            "adaptation_enabled": self.config.adaptation.enabled,
            "target_seconds": self.config.adaptation.target_seconds,
        }
