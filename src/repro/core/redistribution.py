"""Step 4: load redistribution (shuffling) of blocks across processes.

Because every rank holds the same globally sorted block list, every rank can
compute the same target assignment without additional coordination, then
exchange the block payloads with non-blocking point-to-point messages —
modelled here by one personalised all-to-all.

Two strategies from the paper are provided, plus the no-op:

* :class:`RandomShuffle` — each process receives a random set of blocks (the
  per-process block count stays constant); all ranks derive the permutation
  from the same seed.  Ignores the scores.  This is the paper's baseline.
* :class:`RoundRobin` — blocks sorted by *decreasing* score are dealt to
  processes 0, 1, 2, ... in turn, so the rendering load of the high-score
  region is spread evenly.
* :class:`NoRedistribution` — keep the initial, content-oblivious domain
  decomposition.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.block import Block
from repro.simmpi.communicator import BSPCommunicator
from repro.utils.random import derive_seed, rng_from_seed
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]


class RedistributionStrategy(abc.ABC):
    """Computes the target owner of every block."""

    name = "strategy"

    @abc.abstractmethod
    def assign_owners(
        self,
        sorted_pairs: Sequence[ScorePair],
        nranks: int,
        iteration: int,
    ) -> Dict[int, int]:
        """Return the mapping block id -> destination rank."""

    def redistribute(
        self,
        comm: BSPCommunicator,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        iteration: int,
    ) -> Tuple[List[List[Block]], Dict[str, float]]:
        """Exchange blocks so every rank ends up with its assigned set.

        Returns the new per-rank block lists (sorted by block id) and timing
        info (measured wall-clock, modelled communication seconds, exchanged
        bytes).
        """
        nranks = comm.nranks
        owners = self.assign_owners(sorted_pairs, nranks, iteration)
        before = comm.communication_seconds()
        with Timer() as timer:
            send_lists: List[List[object]] = [
                [None] * nranks for _ in range(nranks)
            ]
            kept: List[List[Block]] = [[] for _ in range(nranks)]
            moved_bytes = 0
            moved_blocks = 0
            for rank, blocks in enumerate(per_rank_blocks):
                outgoing: Dict[int, List[Block]] = {}
                for block in blocks:
                    dest = owners.get(block.block_id, rank)
                    if dest == rank:
                        kept[rank].append(block.with_owner(rank))
                    else:
                        outgoing.setdefault(dest, []).append(block.with_owner(dest))
                        moved_bytes += block.nbytes
                        moved_blocks += 1
                for dest, payload in outgoing.items():
                    send_lists[rank][dest] = payload
            received = comm.alltoallv(send_lists)
            new_blocks: List[List[Block]] = []
            for rank in range(nranks):
                mine = list(kept[rank])
                for src in range(nranks):
                    payload = received[rank][src]
                    if payload:
                        mine.extend(payload)
                mine.sort(key=lambda b: b.block_id)
                new_blocks.append(mine)
        modelled = comm.communication_seconds() - before
        info = {
            "measured": timer.elapsed,
            "modelled": modelled,
            "moved_bytes": float(moved_bytes),
            "moved_blocks": float(moved_blocks),
        }
        return new_blocks, info


class NoRedistribution(RedistributionStrategy):
    """Keep the original owners (the paper's "NONE" configuration)."""

    name = "none"

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> Dict[int, int]:
        return {}

    def redistribute(
        self,
        comm: BSPCommunicator,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        iteration: int,
    ) -> Tuple[List[List[Block]], Dict[str, float]]:
        # Skip the exchange entirely: no communication, no cost.
        info = {"measured": 0.0, "modelled": 0.0, "moved_bytes": 0.0, "moved_blocks": 0.0}
        return [list(blocks) for blocks in per_rank_blocks], info


class RandomShuffle(RedistributionStrategy):
    """Random assignment of blocks to ranks, same seed on every rank."""

    name = "shuffle"

    def __init__(self, seed: int = 2016) -> None:
        self.seed = int(seed)

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> Dict[int, int]:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        block_ids = sorted(block_id for block_id, _ in sorted_pairs)
        nblocks = len(block_ids)
        # Constant number of blocks per process: deal rank labels then shuffle.
        labels = np.array([i % nranks for i in range(nblocks)], dtype=np.int64)
        rng = rng_from_seed(derive_seed(self.seed, "shuffle", iteration))
        rng.shuffle(labels)
        return {bid: int(lbl) for bid, lbl in zip(block_ids, labels)}


class RoundRobin(RedistributionStrategy):
    """Deal blocks to ranks in decreasing score order."""

    name = "round_robin"

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> Dict[int, int]:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        owners: Dict[int, int] = {}
        # sorted_pairs is ascending; the paper deals from the highest score.
        for position, (block_id, _score) in enumerate(reversed(list(sorted_pairs))):
            owners[block_id] = position % nranks
        return owners


class RedistributionStep:
    """PipelineStep adapter around a :class:`RedistributionStrategy`.

    The strategies stay independent of the step contract (they are also used
    directly by the figure-5 experiments); this thin wrapper binds one
    strategy to a communicator and reports the exchange as a collective.
    """

    name = "redistribution"

    def __init__(self, strategy: RedistributionStrategy, comm: BSPCommunicator) -> None:
        self.strategy = strategy
        self.comm = comm

    def execute(self, context: IterationContext) -> StepReport:
        """Exchange the context's blocks (PipelineStep contract)."""
        new_blocks, info = self.strategy.redistribute(
            self.comm, context.per_rank_blocks, context.require_sorted(), context.iteration
        )
        context.per_rank_blocks = new_blocks
        return StepReport.collective(
            self.name,
            measured=float(info["measured"]),
            modelled=float(info["modelled"]),
            payload_bytes=float(info["moved_bytes"]),
            counters={"moved_blocks": float(info["moved_blocks"])},
        )


def make_strategy(name: str, seed: int = 2016) -> RedistributionStrategy:
    """Factory used by the pipeline configuration."""
    key = name.strip().lower()
    if key in ("none", "no", "off"):
        return NoRedistribution()
    if key in ("shuffle", "random", "random_shuffle"):
        return RandomShuffle(seed=seed)
    if key in ("round_robin", "roundrobin", "rr"):
        return RoundRobin()
    raise ValueError(
        f"unknown redistribution strategy {name!r}; "
        "expected 'none', 'shuffle' or 'round_robin'"
    )
