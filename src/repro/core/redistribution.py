"""Step 4: load redistribution (shuffling) of blocks across processes.

Because every rank holds the same globally sorted block list, every rank can
compute the same target assignment without additional coordination, then
exchange the block payloads with non-blocking point-to-point messages —
modelled here by one personalised all-to-all.

Strategies return their assignment as a pair of parallel NumPy arrays
``(block_ids, dest_ranks)`` — the vectorizable form the exchange planner
consumes: per rank, every block's destination is resolved with one
``np.searchsorted`` over the id-sorted assignment, the movers are grouped by
destination with one stable ``argsort``/``bincount`` pass, and the per-
destination send lists are sliced out of the grouped order — no per-block
dict lookups anywhere on the planning path.  The per-destination payload
lists carry blocks in exactly the order the historical dict-based planner
produced (input order within each destination), so the exchange's payload
bytes and modelled seconds are unchanged.

Two strategies from the paper are provided, plus the no-op:

* :class:`RandomShuffle` — each process receives a random set of blocks (the
  per-process block count stays constant); all ranks derive the permutation
  from the same seed.  Ignores the scores.  This is the paper's baseline.
* :class:`RoundRobin` — blocks sorted by *decreasing* score are dealt to
  processes 0, 1, 2, ... in turn, so the rendering load of the high-score
  region is spread evenly.
* :class:`NoRedistribution` — keep the initial, content-oblivious domain
  decomposition.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.block import Block
from repro.simmpi.communicator import BSPCommunicator
from repro.utils.random import derive_seed, rng_from_seed
from repro.utils.timer import Timer

ScorePair = Tuple[int, float]

#: A strategy's assignment: parallel ``(block_ids, dest_ranks)`` int64 arrays
#: (ids need not be sorted; blocks not listed stay with their current rank).
OwnerAssignment = Tuple[np.ndarray, np.ndarray]


class RedistributionStrategy(abc.ABC):
    """Computes the target owner of every block."""

    name = "strategy"

    @abc.abstractmethod
    def assign_owners(
        self,
        sorted_pairs: Sequence[ScorePair],
        nranks: int,
        iteration: int,
    ) -> OwnerAssignment:
        """Return the assignment as parallel ``(block_ids, dest_ranks)`` arrays."""

    def redistribute(
        self,
        comm: BSPCommunicator,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        iteration: int,
    ) -> Tuple[List[List[Block]], Dict[str, float]]:
        """Exchange blocks so every rank ends up with its assigned set.

        Returns the new per-rank block lists (sorted by block id) and timing
        info (measured wall-clock, modelled communication seconds, exchanged
        bytes).
        """
        nranks = comm.nranks
        assigned_ids, assigned_dests = self.assign_owners(
            sorted_pairs, nranks, iteration
        )
        assigned_ids = np.asarray(assigned_ids, dtype=np.int64)
        assigned_dests = np.asarray(assigned_dests, dtype=np.int64)
        order = np.argsort(assigned_ids, kind="stable")
        ids_sorted = assigned_ids[order]
        dests_sorted = assigned_dests[order]
        before = comm.communication_seconds()
        with Timer() as timer:
            send_lists: List[List[object]] = [
                [None] * nranks for _ in range(nranks)
            ]
            kept: List[List[Block]] = [[] for _ in range(nranks)]
            moved_bytes = 0
            moved_blocks = 0
            for rank, blocks in enumerate(per_rank_blocks):
                if not blocks:
                    continue
                block_ids = np.fromiter(
                    (b.block_id for b in blocks), dtype=np.int64, count=len(blocks)
                )
                if ids_sorted.size:
                    pos = np.minimum(
                        np.searchsorted(ids_sorted, block_ids), ids_sorted.size - 1
                    )
                    assigned = ids_sorted[pos] == block_ids
                    dest = np.where(assigned, dests_sorted[pos], rank)
                else:
                    dest = np.full(len(blocks), rank, dtype=np.int64)
                staying = dest == rank
                kept[rank] = [
                    blocks[i] if blocks[i].owner == rank else blocks[i].with_owner(rank)
                    for i in np.flatnonzero(staying)
                ]
                movers = np.flatnonzero(~staying)
                if not movers.size:
                    continue
                mover_dest = dest[movers]
                # Stable sort groups movers by destination while preserving
                # input order within each destination (the order the payload
                # lists have always carried).
                grouped = movers[np.argsort(mover_dest, kind="stable")]
                counts = np.bincount(mover_dest, minlength=nranks)
                bounds = np.concatenate(([0], np.cumsum(counts)))
                for dest_rank in np.flatnonzero(counts):
                    payload = [
                        blocks[i].with_owner(int(dest_rank))
                        for i in grouped[bounds[dest_rank] : bounds[dest_rank + 1]]
                    ]
                    send_lists[rank][dest_rank] = payload
                moved_blocks += int(movers.size)
                moved_bytes += int(sum(blocks[i].nbytes for i in movers))
            received = comm.alltoallv(send_lists)
            new_blocks: List[List[Block]] = []
            for rank in range(nranks):
                mine = list(kept[rank])
                for src in range(nranks):
                    payload = received[rank][src]
                    if payload:
                        mine.extend(payload)
                mine.sort(key=lambda b: b.block_id)
                new_blocks.append(mine)
        modelled = comm.communication_seconds() - before
        info = {
            "measured": timer.elapsed,
            "modelled": modelled,
            "moved_bytes": float(moved_bytes),
            "moved_blocks": float(moved_blocks),
        }
        return new_blocks, info


class NoRedistribution(RedistributionStrategy):
    """Keep the original owners (the paper's "NONE" configuration)."""

    name = "none"

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> OwnerAssignment:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    def redistribute(
        self,
        comm: BSPCommunicator,
        per_rank_blocks: Sequence[Sequence[Block]],
        sorted_pairs: Sequence[ScorePair],
        iteration: int,
    ) -> Tuple[List[List[Block]], Dict[str, float]]:
        # Skip the exchange entirely (no communication, no modelled cost),
        # but refresh the owner metadata exactly like the exchanging path
        # does for kept blocks — every strategy leaves ``block.owner`` equal
        # to the rank that actually holds the block.
        with Timer() as timer:
            out = [
                [
                    block if block.owner == rank else block.with_owner(rank)
                    for block in blocks
                ]
                for rank, blocks in enumerate(per_rank_blocks)
            ]
        info = {
            "measured": timer.elapsed,
            "modelled": 0.0,
            "moved_bytes": 0.0,
            "moved_blocks": 0.0,
        }
        return out, info


class RandomShuffle(RedistributionStrategy):
    """Random assignment of blocks to ranks, same seed on every rank."""

    name = "shuffle"

    def __init__(self, seed: int = 2016) -> None:
        self.seed = int(seed)

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> OwnerAssignment:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        nblocks = len(sorted_pairs)
        block_ids = np.sort(
            np.fromiter(
                (block_id for block_id, _ in sorted_pairs),
                dtype=np.int64,
                count=nblocks,
            )
        )
        # Constant number of blocks per process: deal rank labels then shuffle.
        labels = np.arange(nblocks, dtype=np.int64) % nranks
        rng = rng_from_seed(derive_seed(self.seed, "shuffle", iteration))
        rng.shuffle(labels)
        return block_ids, labels


class RoundRobin(RedistributionStrategy):
    """Deal blocks to ranks in decreasing score order."""

    name = "round_robin"

    def assign_owners(
        self, sorted_pairs: Sequence[ScorePair], nranks: int, iteration: int
    ) -> OwnerAssignment:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        nblocks = len(sorted_pairs)
        block_ids = np.fromiter(
            (block_id for block_id, _ in sorted_pairs),
            dtype=np.int64,
            count=nblocks,
        )
        # sorted_pairs is ascending; the paper deals from the highest score,
        # so the block at ascending index i sits at dealing position
        # nblocks - 1 - i.
        dests = (nblocks - 1 - np.arange(nblocks, dtype=np.int64)) % nranks
        return block_ids, dests


class RedistributionStep:
    """PipelineStep adapter around a :class:`RedistributionStrategy`.

    The strategies stay independent of the step contract (they are also used
    directly by the figure-5 experiments); this thin wrapper binds one
    strategy to a communicator and reports the exchange as a collective.
    """

    name = "redistribution"

    def __init__(self, strategy: RedistributionStrategy, comm: BSPCommunicator) -> None:
        self.strategy = strategy
        self.comm = comm

    def execute(self, context: IterationContext) -> StepReport:
        """Exchange the context's blocks (PipelineStep contract)."""
        new_blocks, info = self.strategy.redistribute(
            self.comm, context.per_rank_blocks, context.require_sorted(), context.iteration
        )
        context.per_rank_blocks = new_blocks
        return StepReport.collective(
            self.name,
            measured=float(info["measured"]),
            modelled=float(info["modelled"]),
            payload_bytes=float(info["moved_bytes"]),
            counters={"moved_blocks": float(info["moved_blocks"])},
        )


def make_strategy(name: str, seed: int = 2016) -> RedistributionStrategy:
    """Factory used by the pipeline configuration."""
    key = name.strip().lower()
    if key in ("none", "no", "off"):
        return NoRedistribution()
    if key in ("shuffle", "random", "random_shuffle"):
        return RandomShuffle(seed=seed)
    if key in ("round_robin", "roundrobin", "rr"):
        return RoundRobin()
    raise ValueError(
        f"unknown redistribution strategy {name!r}; "
        "expected 'none', 'shuffle' or 'round_robin'"
    )
