"""The execution engine: an ordered list of PipelineSteps plus a backend.

The engine owns the communicator, the metric, and the redistribution
strategy, and runs the five concrete steps of the paper's Figure 2 as a
uniform :class:`PipelineStep` sequence over an :class:`IterationContext`.
The steps themselves are not hard-wired: every ``(step, backend)`` pair is
resolved through the backend registry (:mod:`repro.core.backends`), so
third-party backends register factories instead of editing this module, and
``ENGINE_BACKENDS`` is derived from the registry.

The ``backend`` selects how all five data-parallel steps are implemented:

* ``"serial"`` — every step iterates blocks one at a time (the reference
  implementation, and the behaviour of the original hard-wired pipeline):
  per-block scoring through ``metric.score_blocks``, a Python ``sorted``
  over the gathered score tuples, per-block corner reduction, and per-block
  rendering through ``IsosurfaceScript.process``;
* ``"vectorized"`` — every step runs over stacked shape-homogeneous arrays
  (the :class:`~repro.grid.batch.BlockBatch` data layout): scoring runs one
  ``score_batch`` call per cross-rank shape group, the sorting collective
  sorts with one ``np.lexsort`` over the gathered ``(score, id)`` arrays,
  reduction gathers each shape group's corners with one
  ``reduce_to_corners_batch`` fancy-index pass, redistribution plans the
  exchange with one ``searchsorted``/``bincount`` pass, and counting-mode
  rendering runs one ``count_active_cells_batch`` call per shape group;
* ``"parallel"`` — the same grouping fanned out over ``concurrent.futures``
  thread pools where per-rank work exists: per-shape score chunks for batch
  metrics, chunked per-block scoring for scalar user metrics, whole ranks
  for reduction and rendering (per-shape mesh chunks in mesh mode); the
  collectives (sorting, redistribution) share the vectorised path.

All backends produce bitwise-identical decisions and modelled results (ids,
scores, sort orders, reduction decisions, moved bytes, active-cell and
triangle counts, modelled seconds) — measured wall-clock is the one quantity
that legitimately differs; the vectorised backend is simply faster, because
the per-block Python overhead of every hot loop collapses into a handful of
NumPy calls.  Later scaling work (async engines, sharded ranks, alternative
accelerator backends) plugs in by registering step factories for a new
backend name.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.backends import (
    STEP_NAMES,
    StepBuildContext,
    build_step,
    engine_backends,
)
from repro.core.config import PipelineConfig
from repro.core.redistribution import make_strategy
from repro.core.results import IterationResult
from repro.core.step import IterationContext, PipelineStep
from repro.grid.block import Block
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator

__all__ = ["ENGINE_BACKENDS", "ExecutionEngine"]


def __getattr__(name: str):
    # Re-export of the registry-derived backend tuple (kept live so backends
    # registered after import are visible).
    if name == "ENGINE_BACKENDS":
        return engine_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ExecutionEngine:
    """Runs the pipeline's step sequence over a set of virtual ranks.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, engine
        backend, ...).
    platform:
        Cost model converting work counts into modelled platform seconds.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests).
    backend:
        Override of ``config.engine`` (any backend registered in
        :mod:`repro.core.backends` — ``"serial"``, ``"vectorized"``,
        ``"parallel"``, or a third-party registration).
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.backend = (backend or config.engine).strip().lower()
        if self.backend not in engine_backends():
            raise ValueError(
                f"engine backend must be one of {engine_backends()}, "
                f"got {self.backend!r}"
            )
        self.nranks = int(nranks) if nranks is not None else int(platform.ncores)
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        self.comm = comm or BSPCommunicator(self.nranks, cost_model=platform.network)
        if self.comm.nranks != self.nranks:
            raise ValueError(
                f"communicator has {self.comm.nranks} ranks, expected {self.nranks}"
            )
        self.metric = create_metric(config.metric)
        self.strategy = make_strategy(config.redistribution, seed=config.shuffle_seed)
        context = StepBuildContext(
            config=config,
            platform=platform,
            comm=self.comm,
            metric=self.metric,
            strategy=self.strategy,
            nranks=self.nranks,
            backend=self.backend,
        )
        #: The ordered step sequence of the paper's Figure 2 (the sixth step,
        #: adaptation, is the controller that *consumes* these results),
        #: every entry resolved through the backend registry.
        self.steps: List[PipelineStep] = [
            build_step(name, self.backend, context) for name in STEP_NAMES
        ]
        (
            self.scoring,
            self.sorting,
            self.reduction,
            self.redistribution,
            self.rendering,
        ) = self.steps

    # -- execution ----------------------------------------------------------------

    def run_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent: float,
        iteration: int,
    ) -> IterationContext:
        """Run every step on one iteration's blocks and return the context."""
        if len(per_rank_blocks) != self.nranks:
            raise ValueError(
                f"expected blocks for {self.nranks} ranks, got {len(per_rank_blocks)}"
            )
        if not (0.0 <= percent <= 100.0):
            raise ValueError(f"percent must be in [0, 100], got {percent}")
        context = IterationContext(
            iteration=int(iteration),
            percent=float(percent),
            nranks=self.nranks,
            per_rank_blocks=[list(blocks) for blocks in per_rank_blocks],
        )
        for step in self.steps:
            context.reports[step.name] = step.execute(context)
        return context

    def iteration_result(
        self, context: IterationContext, nblocks: Optional[int] = None
    ) -> IterationResult:
        """Condense a completed context into an :class:`IterationResult`."""
        reports = context.reports
        rendering = reports.get("rendering")
        triangles = (
            [int(t) for t in rendering.per_rank_counters.get("triangles", [])]
            if rendering is not None
            else []
        )
        reduction = reports.get("reduction")
        redistribution = reports.get("redistribution")
        return IterationResult(
            iteration=context.iteration,
            percent_reduced=context.percent,
            nblocks=int(nblocks) if nblocks is not None else context.nblocks,
            nreduced=int(reduction.counters.get("nreduced", 0.0)) if reduction else 0,
            modelled_steps={name: r.modelled_max for name, r in reports.items()},
            measured_steps={name: r.measured_max for name, r in reports.items()},
            triangles_per_rank=triangles,
            moved_bytes=float(redistribution.payload_bytes) if redistribution else 0.0,
            step_reports=dict(reports),
        )
