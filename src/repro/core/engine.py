"""The execution engine: an ordered list of PipelineSteps plus a backend.

The engine owns the communicator, the metric, and the five concrete steps of
the paper's Figure 2, and runs them as a uniform :class:`PipelineStep`
sequence over an :class:`IterationContext`.  The ``backend`` selects how the
data-parallel steps are implemented:

* ``"serial"`` — every step iterates blocks one at a time (the reference
  implementation, and the behaviour of the original hard-wired pipeline);
* ``"vectorized"`` — the scoring *and rendering* steps stack block payloads
  into shape-homogeneous arrays (the :class:`~repro.grid.batch.BlockBatch`
  data layout): scoring runs one ``score_batch`` call per cross-rank shape
  group, and counting-mode rendering runs one ``count_active_cells_batch``
  call per per-rank shape group;
* ``"parallel"`` — the same grouping fanned out over ``concurrent.futures``
  thread pools: per-shape score chunks for batch metrics, chunked per-block
  scoring for scalar user metrics, and whole ranks (per-shape mesh chunks in
  mesh mode) for rendering.

All backends produce bitwise-identical decisions and modelled results (ids,
scores, reduction decisions, moved bytes, active-cell and triangle counts,
modelled seconds) — measured wall-clock is the one quantity that
legitimately differs; the vectorised backend is simply faster, because the
per-block Python overhead of the hot scoring and rendering loops collapses
into a handful of NumPy calls.  Later scaling work (async engines, sharded
ranks, alternative accelerator backends) plugs in here by providing
different step implementations for the same contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import ENGINE_BACKENDS, PipelineConfig
from repro.core.redistribution import RedistributionStep, make_strategy
from repro.core.reduction_step import ReductionStep
from repro.core.rendering_step import (
    ParallelRenderingStep,
    RenderingStep,
    VectorizedRenderingStep,
)
from repro.core.results import IterationResult
from repro.core.scoring_step import (
    ParallelScoringStep,
    ScoringStep,
    VectorizedScoringStep,
)
from repro.core.sorting_step import SortingStep
from repro.core.step import IterationContext, PipelineStep
from repro.grid.block import Block
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator

__all__ = ["ENGINE_BACKENDS", "ExecutionEngine"]


class ExecutionEngine:
    """Runs the pipeline's step sequence over a set of virtual ranks.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, engine
        backend, ...).
    platform:
        Cost model converting work counts into modelled platform seconds.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests).
    backend:
        Override of ``config.engine`` (``"serial"``, ``"vectorized"``, or
        ``"parallel"``).
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.backend = (backend or config.engine).strip().lower()
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"engine backend must be one of {ENGINE_BACKENDS}, got {self.backend!r}"
            )
        self.nranks = int(nranks) if nranks is not None else int(platform.ncores)
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        self.comm = comm or BSPCommunicator(self.nranks, cost_model=platform.network)
        if self.comm.nranks != self.nranks:
            raise ValueError(
                f"communicator has {self.comm.nranks} ranks, expected {self.nranks}"
            )
        self.metric = create_metric(config.metric)
        scoring_cls = {
            "serial": ScoringStep,
            "vectorized": VectorizedScoringStep,
            "parallel": ParallelScoringStep,
        }[self.backend]
        self.scoring = scoring_cls(self.metric, platform)
        self.sorting = SortingStep(self.comm)
        self.reduction = ReductionStep()
        self.strategy = make_strategy(config.redistribution, seed=config.shuffle_seed)
        self.redistribution = RedistributionStep(self.strategy, self.comm)
        rendering_cls = {
            "serial": RenderingStep,
            "vectorized": VectorizedRenderingStep,
            "parallel": ParallelRenderingStep,
        }[self.backend]
        self.rendering = rendering_cls(
            platform,
            isosurface_level=config.isosurface_level,
            render_mode=config.render_mode,
        )
        #: The ordered step sequence of the paper's Figure 2 (the sixth step,
        #: adaptation, is the controller that *consumes* these results).
        self.steps: List[PipelineStep] = [
            self.scoring,
            self.sorting,
            self.reduction,
            self.redistribution,
            self.rendering,
        ]

    # -- execution ----------------------------------------------------------------

    def run_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent: float,
        iteration: int,
    ) -> IterationContext:
        """Run every step on one iteration's blocks and return the context."""
        if len(per_rank_blocks) != self.nranks:
            raise ValueError(
                f"expected blocks for {self.nranks} ranks, got {len(per_rank_blocks)}"
            )
        if not (0.0 <= percent <= 100.0):
            raise ValueError(f"percent must be in [0, 100], got {percent}")
        context = IterationContext(
            iteration=int(iteration),
            percent=float(percent),
            nranks=self.nranks,
            per_rank_blocks=[list(blocks) for blocks in per_rank_blocks],
        )
        for step in self.steps:
            context.reports[step.name] = step.execute(context)
        return context

    def iteration_result(
        self, context: IterationContext, nblocks: Optional[int] = None
    ) -> IterationResult:
        """Condense a completed context into an :class:`IterationResult`."""
        reports = context.reports
        rendering = reports.get("rendering")
        triangles = (
            [int(t) for t in rendering.per_rank_counters.get("triangles", [])]
            if rendering is not None
            else []
        )
        reduction = reports.get("reduction")
        redistribution = reports.get("redistribution")
        return IterationResult(
            iteration=context.iteration,
            percent_reduced=context.percent,
            nblocks=int(nblocks) if nblocks is not None else context.nblocks,
            nreduced=int(reduction.counters.get("nreduced", 0.0)) if reduction else 0,
            modelled_steps={name: r.modelled_max for name, r in reports.items()},
            measured_steps={name: r.measured_max for name, r in reports.items()},
            triangles_per_rank=triangles,
            moved_bytes=float(redistribution.payload_bytes) if redistribution else 0.0,
            step_reports=dict(reports),
        )
