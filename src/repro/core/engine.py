"""The execution engine: an ordered list of PipelineSteps plus a backend.

The engine owns the communicator, the metric, and the redistribution
strategy, and runs the five concrete steps of the paper's Figure 2 as a
uniform :class:`PipelineStep` sequence over an :class:`IterationContext`.
The steps themselves are not hard-wired: every ``(step, backend)`` pair is
resolved through the backend registry (:mod:`repro.core.backends`), so
third-party backends register factories instead of editing this module, and
``ENGINE_BACKENDS`` is derived from the registry.

The ``backend`` selects how all five data-parallel steps are implemented:

* ``"serial"`` — every step iterates blocks one at a time (the reference
  implementation, and the behaviour of the original hard-wired pipeline):
  per-block scoring through ``metric.score_blocks``, a Python ``sorted``
  over the gathered score tuples, per-block corner reduction, and per-block
  rendering through ``IsosurfaceScript.process``;
* ``"vectorized"`` — every step runs over stacked shape-homogeneous arrays
  (the :class:`~repro.grid.batch.BlockBatch` data layout): scoring runs one
  ``score_batch`` call per cross-rank shape group, the sorting collective
  sorts with one ``np.lexsort`` over the gathered ``(score, id)`` arrays,
  reduction gathers each shape group's corners with one
  ``reduce_to_corners_batch`` fancy-index pass, redistribution plans the
  exchange with one ``searchsorted``/``bincount`` pass, and counting-mode
  rendering runs one ``count_active_cells_batch`` call per shape group;
* ``"parallel"`` — the same grouping fanned out over ``concurrent.futures``
  thread pools where per-rank work exists: per-shape score chunks for batch
  metrics, chunked per-block scoring for scalar user metrics, whole ranks
  for reduction and rendering (per-shape mesh chunks in mesh mode); the
  collectives (sorting, redistribution) share the vectorised path.

All backends produce bitwise-identical decisions and modelled results (ids,
scores, sort orders, reduction decisions, moved bytes, active-cell and
triangle counts, modelled seconds) — measured wall-clock is the one quantity
that legitimately differs; the vectorised backend is simply faster, because
the per-block Python overhead of every hot loop collapses into a handful of
NumPy calls.  Later scaling work (async engines, sharded ranks, alternative
accelerator backends) plugs in by registering step factories for a new
backend name.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.backends import (
    STEP_NAMES,
    StepBuildContext,
    build_step,
    engine_backends,
)
from repro.core.config import PipelineConfig
from repro.core.redistribution import make_strategy
from repro.core.results import IterationResult
from repro.core.step import IterationContext, PipelineStep, stage_spec
from repro.grid.block import Block
from repro.metrics.registry import create_metric
from repro.perfmodel.platform import PlatformModel
from repro.simmpi.communicator import BSPCommunicator

__all__ = ["ENGINE_BACKENDS", "ExecutionEngine", "PipelinedEngine"]

#: One iteration's worth of input to the engine: the per-rank block lists,
#: the reduction percentage, and the iteration number.
IterationInput = Tuple[Sequence[Sequence[Block]], float, int]


def __getattr__(name: str):
    # Re-export of the registry-derived backend tuple (kept live so backends
    # registered after import are visible).
    if name == "ENGINE_BACKENDS":
        return engine_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ExecutionEngine:
    """Runs the pipeline's step sequence over a set of virtual ranks.

    Parameters
    ----------
    config:
        Pipeline configuration (metric, redistribution strategy, engine
        backend, ...).
    platform:
        Cost model converting work counts into modelled platform seconds.
    nranks:
        Number of virtual ranks; defaults to ``platform.ncores``.
    comm:
        Optional pre-built communicator (mainly for tests).
    backend:
        Override of ``config.engine`` (any backend registered in
        :mod:`repro.core.backends` — ``"serial"``, ``"vectorized"``,
        ``"parallel"``, or a third-party registration).
    """

    def __init__(
        self,
        config: PipelineConfig,
        platform: PlatformModel,
        nranks: Optional[int] = None,
        comm: Optional[BSPCommunicator] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.backend = (backend or config.engine).strip().lower()
        if self.backend not in engine_backends():
            raise ValueError(
                f"engine backend must be one of {engine_backends()}, "
                f"got {self.backend!r}"
            )
        self.nranks = int(nranks) if nranks is not None else int(platform.ncores)
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        self.comm = comm or BSPCommunicator(self.nranks, cost_model=platform.network)
        if self.comm.nranks != self.nranks:
            raise ValueError(
                f"communicator has {self.comm.nranks} ranks, expected {self.nranks}"
            )
        #: Whether every stage shares ``self.comm`` (legacy behaviour, kept
        #: when the caller supplies a communicator to inspect) or each stage
        #: gets a private one (the default — and the precondition for the
        #: pipelined engine's bitwise parity, since a collective step reports
        #: modelled seconds as deltas of its communicator's accumulated
        #: total, and the rounding of that subtraction depends on what else
        #: accumulated in between).
        self._shared_stage_comm = comm is not None
        self.metric = create_metric(config.metric)
        self.strategy = make_strategy(config.redistribution, seed=config.shuffle_seed)
        #: The ordered step sequence of the paper's Figure 2 (the sixth step,
        #: adaptation, is the controller that *consumes* these results),
        #: every entry resolved through the backend registry.
        self.steps: List[PipelineStep] = self._build_steps()
        (
            self.scoring,
            self.sorting,
            self.reduction,
            self.redistribution,
            self.rendering,
        ) = self.steps

    # -- step construction --------------------------------------------------------

    def _build_context(self, comm: BSPCommunicator) -> StepBuildContext:
        """The factory context for building steps against ``comm``."""
        return StepBuildContext(
            config=self.config,
            platform=self.platform,
            comm=comm,
            metric=self.metric,
            strategy=self.strategy,
            nranks=self.nranks,
            backend=self.backend,
        )

    def _stage_comm(self) -> BSPCommunicator:
        """The communicator one stage should be bound to."""
        if self._shared_stage_comm:
            return self.comm
        return BSPCommunicator(self.nranks, cost_model=self.platform.network)

    def _build_steps(self) -> List[PipelineStep]:
        """Resolve every Figure-2 step through the registry.

        Each stage is bound to its own communicator (see
        ``_shared_stage_comm``), so a stage's accumulated communication
        history is independent of the other stages' — which is what makes
        the sequential and pipelined engines bitwise-identical.
        """
        return [
            build_step(name, self.backend, self._build_context(self._stage_comm()))
            for name in STEP_NAMES
        ]

    # -- execution ----------------------------------------------------------------

    def make_context(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent: float,
        iteration: int,
    ) -> IterationContext:
        """Validate one iteration's input and wrap it in a fresh context."""
        if len(per_rank_blocks) != self.nranks:
            raise ValueError(
                f"expected blocks for {self.nranks} ranks, got {len(per_rank_blocks)}"
            )
        if not (0.0 <= percent <= 100.0):
            raise ValueError(f"percent must be in [0, 100], got {percent}")
        return IterationContext(
            iteration=int(iteration),
            percent=float(percent),
            nranks=self.nranks,
            per_rank_blocks=[list(blocks) for blocks in per_rank_blocks],
        )

    def run_iteration(
        self,
        per_rank_blocks: Sequence[Sequence[Block]],
        percent: float,
        iteration: int,
    ) -> IterationContext:
        """Run every step on one iteration's blocks and return the context."""
        context = self.make_context(per_rank_blocks, percent, iteration)
        for step in self.steps:
            context.reports[step.name] = step.execute(context)
        return context

    def iteration_result(
        self, context: IterationContext, nblocks: Optional[int] = None
    ) -> IterationResult:
        """Condense a completed context into an :class:`IterationResult`."""
        reports = context.reports
        rendering = reports.get("rendering")
        triangles = (
            [int(t) for t in rendering.per_rank_counters.get("triangles", [])]
            if rendering is not None
            else []
        )
        reduction = reports.get("reduction")
        redistribution = reports.get("redistribution")
        return IterationResult(
            iteration=context.iteration,
            percent_reduced=context.percent,
            nblocks=int(nblocks) if nblocks is not None else context.nblocks,
            nreduced=int(reduction.counters.get("nreduced", 0.0)) if reduction else 0,
            modelled_steps={name: r.modelled_max for name, r in reports.items()},
            measured_steps={name: r.measured_max for name, r in reports.items()},
            triangles_per_rank=triangles,
            moved_bytes=float(redistribution.payload_bytes) if redistribution else 0.0,
            step_reports=dict(reports),
        )


class PipelinedEngine(ExecutionEngine):
    """Execution engine that overlaps consecutive iterations.

    The sequential engine finishes every stage of snapshot ``t`` before
    touching snapshot ``t + 1``; this engine schedules the stage graph
    (:data:`~repro.core.step.STAGE_GRAPH`) instead: stage ``s`` of iteration
    ``i`` starts as soon as

    * every same-iteration stage it depends on (``after``) has finished, and
    * stage ``s`` of iteration ``i - 1`` has finished (stages are serial
      across iterations — step objects carry per-stage state).

    In steady state that means snapshot ``t + 1`` is scored, sorted, reduced
    and redistributed while snapshot ``t`` renders, so wall-clock approaches
    the slowest stage instead of the sum of all stages.  The scheduler runs
    one worker thread per stage; the stages themselves are NumPy-heavy
    (vectorised batches, batched coder metrics, marching cubes), which
    releases the GIL for real overlap.

    Results are bitwise-identical to the sequential engine: stages for one
    iteration run in the same dependency order, stages are serial across
    iterations, and each stage owns a *private* communicator — collective
    steps report modelled seconds as deltas of their communicator's
    accumulated total, and collective costs depend only on payload sizes,
    never on clock state, so isolating the communicators changes nothing in
    any report while allowing sorting of ``t + 1`` to overlap the exchange
    of ``t``.

    Only feedback-free runs can overlap: the adaptation controller needs the
    full result of iteration ``t`` before choosing the percentage of
    ``t + 1``, so :class:`~repro.core.pipeline.InSituPipeline` uses this
    engine when the percentage schedule is known up front (fixed percentage,
    or adaptation disabled).
    """

    def _stage_comm(self) -> BSPCommunicator:
        """Always a private communicator per stage.

        Sharing one communicator across overlapped stages would race on its
        virtual clocks, so an explicitly supplied ``comm`` is used only for
        rank-count validation here.
        """
        return BSPCommunicator(self.nranks, cost_model=self.platform.network)

    def run_iterations(
        self,
        inputs: Sequence[IterationInput],
        on_complete: Optional[Callable[[int, IterationContext], None]] = None,
    ) -> List[IterationContext]:
        """Run many iterations with stages overlapped across iterations.

        Parameters
        ----------
        inputs:
            One ``(per_rank_blocks, percent, iteration)`` tuple per
            iteration, in iteration order.
        on_complete:
            Optional callback invoked as ``on_complete(index, context)``
            when *all* stages of an iteration have finished.  Callbacks fire
            in iteration order (the streaming contract the serve mode's
            per-iteration JSON rows rely on) from scheduler threads.  A
            callback that raises *cancels the run*: in-flight stages drain
            without doing further work, no later callback fires, and the
            exception is re-raised here — the hook the serve tier's
            request deadlines use to abort a pipelined run between
            iterations without deadlocking the stage workers.

        Returns
        -------
        list of IterationContext
            The completed contexts, in iteration order.  Raises the first
            stage error after unwinding the scheduler, if any stage failed.
        """
        items = list(inputs)
        contexts = [
            self.make_context(blocks, percent, iteration)
            for blocks, percent, iteration in items
        ]
        n = len(contexts)
        if n == 0:
            return []
        nstages = len(self.steps)
        specs = [stage_spec(step.name) for step in self.steps]
        index_of = {spec.name: s for s, spec in enumerate(specs)}
        done = [[threading.Event() for _ in range(n)] for _ in range(nstages)]
        remaining = [nstages] * n
        complete_lock = threading.Lock()
        next_to_report = [0]
        stop = threading.Event()
        errors: List[BaseException] = []

        def mark_stage_done(s: int, i: int) -> None:
            done[s][i].set()
            with complete_lock:
                remaining[i] -= 1
                if remaining[i] > 0:
                    return
                # Fire completion callbacks strictly in iteration order.
                while (
                    next_to_report[0] < n
                    and remaining[next_to_report[0]] == 0
                ):
                    idx = next_to_report[0]
                    next_to_report[0] += 1
                    if on_complete is not None and not stop.is_set():
                        try:
                            on_complete(idx, contexts[idx])
                        except BaseException as exc:
                            # A raising callback poisons the run exactly
                            # like a failing stage: remaining stages drain
                            # (events still fire) and the error re-raises
                            # after every worker unwound.
                            errors.append(exc)
                            stop.set()

        def stage_worker(s: int, step: PipelineStep) -> None:
            for i in range(n):
                for dep in specs[s].after:
                    dep_index = index_of.get(dep)
                    if dep_index is not None:
                        done[dep_index][i].wait()
                if not stop.is_set():
                    try:
                        contexts[i].reports[step.name] = step.execute(contexts[i])
                    except BaseException as exc:  # propagate after unwinding
                        errors.append(exc)
                        stop.set()
                # The event is set even on failure/stop so downstream stage
                # workers drain instead of deadlocking; ``stop`` keeps them
                # from doing real work on a poisoned run.
                mark_stage_done(s, i)

        threads = [
            threading.Thread(
                target=stage_worker,
                args=(s, step),
                name=f"pipeline-{step.name}",
                daemon=True,
            )
            for s, step in enumerate(self.steps)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return contexts
