"""The backend registry: every Figure-2 step on every engine backend.

The :class:`~repro.core.engine.ExecutionEngine` does not hard-wire its step
implementations; it resolves each of the paper's five steps through this
registry, keyed by ``(step_name, backend)``.  A :data:`StepFactory` is a
callable receiving a :class:`StepBuildContext` (the engine's already-built
collaborators: config, platform, communicator, metric, strategy) and
returning the step instance.  The built-in backends — ``"serial"``,
``"vectorized"``, ``"parallel"``, ``"process"`` — register their twenty
factories at import time; :func:`engine_backends` derives the authoritative
backend tuple from
the registrations, so ``ENGINE_BACKENDS`` is a *view* of the registry rather
than a second source of truth.

Third-party backends plug in without editing the engine::

    from repro.core.backends import register_step_backend

    @register_step_backend("scoring", "gpu")
    def _gpu_scoring(ctx):
        return GpuScoringStep(ctx.metric, ctx.platform)

    engine = ExecutionEngine(config, platform, backend="gpu")

Steps the new backend does not specialise fall back to the ``"serial"``
reference implementation (the same convention the built-in backends used
before the registry existed: sorting, reduction, and redistribution were one
shared implementation until they gained vectorised paths), so registering a
single factory is enough to make a backend selectable.

The pyMOR/NIFTy lineage of this design: algorithms ask a registry/backend
layer for their operations instead of switching on an ``if/elif`` of known
implementations, which is what lets later async or sharded engines register
themselves from outside the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.redistribution import RedistributionStep, RedistributionStrategy
from repro.core.reduction_step import (
    ParallelReductionStep,
    ReductionStep,
    VectorizedReductionStep,
)
from repro.core.rendering_step import (
    ParallelRenderingStep,
    ProcessRenderingStep,
    RenderingStep,
    VectorizedRenderingStep,
)
from repro.core.scoring_step import (
    ParallelScoringStep,
    ProcessScoringStep,
    ScoringStep,
    VectorizedScoringStep,
)
from repro.core.sorting_step import SortingStep, VectorizedSortingStep
from repro.core.step import PipelineStep

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a config cycle)
    from repro.core.config import PipelineConfig
    from repro.metrics.base import ScoreMetric
    from repro.perfmodel.platform import PlatformModel
    from repro.simmpi.communicator import BSPCommunicator

__all__ = [
    "STEP_NAMES",
    "StepBuildContext",
    "StepFactory",
    "build_step",
    "engine_backends",
    "register_step_backend",
    "registered_steps",
    "resolve_step_factory",
]

#: The ordered step sequence of the paper's Figure 2 (the sixth step,
#: adaptation, is the controller that *consumes* these results).
STEP_NAMES: Tuple[str, ...] = (
    "scoring",
    "sorting",
    "reduction",
    "redistribution",
    "rendering",
)


@dataclass(frozen=True)
class StepBuildContext:
    """Everything a step factory may need, built once by the engine.

    Attributes
    ----------
    config:
        The run's :class:`~repro.core.config.PipelineConfig`.
    platform:
        Cost model converting work counts into modelled platform seconds.
    comm:
        The engine's communicator (shared by the collective steps).
    metric:
        The resolved scoring metric instance.
    strategy:
        The resolved redistribution strategy instance.
    nranks:
        Number of virtual ranks.
    backend:
        The backend the engine is being built for (factories registered for
        several backends can branch on it).
    """

    config: "PipelineConfig"
    platform: "PlatformModel"
    comm: "BSPCommunicator"
    metric: "ScoreMetric"
    strategy: "RedistributionStrategy"
    nranks: int
    backend: str


StepFactory = Callable[[StepBuildContext], PipelineStep]

_REGISTRY: Dict[Tuple[str, str], StepFactory] = {}
_BACKEND_ORDER: List[str] = []


def register_step_backend(
    step_name: str, backend: str, factory: Optional[StepFactory] = None
):
    """Register ``factory`` as the ``backend`` implementation of ``step_name``.

    Usable directly (``register_step_backend("scoring", "gpu", make_step)``)
    or as a decorator (``@register_step_backend("scoring", "gpu")``).
    Re-registering a key overwrites it — that is how a downstream package
    deliberately replaces a built-in implementation.
    """
    step_key = step_name.strip().lower()
    backend_key = backend.strip().lower()
    if not step_key or not backend_key:
        raise ValueError("step_name and backend must be non-empty")

    def register(func: StepFactory) -> StepFactory:
        _REGISTRY[(step_key, backend_key)] = func
        if backend_key not in _BACKEND_ORDER:
            _BACKEND_ORDER.append(backend_key)
        return func

    return register if factory is None else register(factory)


def engine_backends() -> Tuple[str, ...]:
    """Selectable engine backends, in registration order.

    This is what ``ENGINE_BACKENDS`` (re-exported by
    :mod:`repro.core.config` and :mod:`repro.core.engine`) resolves to: the
    registry is the single source of truth, so a backend registered by a
    third party is immediately selectable through ``PipelineConfig.engine``.
    """
    return tuple(_BACKEND_ORDER)


def registered_steps(backend: str) -> Tuple[str, ...]:
    """Step names ``backend`` registers its own implementation for."""
    backend_key = backend.strip().lower()
    return tuple(step for step, key in _REGISTRY if key == backend_key)


def resolve_step_factory(step_name: str, backend: str) -> StepFactory:
    """The factory for ``(step_name, backend)``.

    Falls back to the ``"serial"`` reference implementation for steps the
    backend does not specialise; raises ``KeyError`` only when the step is
    unknown to the serial backend too.
    """
    step_key = step_name.strip().lower()
    backend_key = backend.strip().lower()
    factory = _REGISTRY.get((step_key, backend_key))
    if factory is not None:
        return factory
    fallback = _REGISTRY.get((step_key, "serial"))
    if fallback is not None:
        return fallback
    raise KeyError(
        f"no step factory registered for step {step_name!r} "
        f"(backend {backend!r}, and no 'serial' fallback)"
    )


def build_step(step_name: str, backend: str, context: StepBuildContext) -> PipelineStep:
    """Build the ``backend`` implementation of ``step_name`` for ``context``."""
    return resolve_step_factory(step_name, backend)(context)


# -- built-in registrations -----------------------------------------------------
#
# Registration order defines engine_backends() — serial first (it is also the
# fallback), then vectorized (the default), then parallel.

register_step_backend(
    "scoring", "serial", lambda ctx: ScoringStep(ctx.metric, ctx.platform)
)
register_step_backend("sorting", "serial", lambda ctx: SortingStep(ctx.comm))
register_step_backend(
    "reduction",
    "serial",
    lambda ctx: ReductionStep(ctx.platform, quality_ladder=ctx.config.quality_ladder),
)
register_step_backend(
    "redistribution",
    "serial",
    lambda ctx: RedistributionStep(ctx.strategy, ctx.comm),
)
register_step_backend(
    "rendering",
    "serial",
    lambda ctx: RenderingStep(
        ctx.platform,
        isosurface_level=ctx.config.isosurface_level,
        render_mode=ctx.config.render_mode,
    ),
)

register_step_backend(
    "scoring",
    "vectorized",
    lambda ctx: VectorizedScoringStep(ctx.metric, ctx.platform),
)
register_step_backend(
    "sorting", "vectorized", lambda ctx: VectorizedSortingStep(ctx.comm)
)
register_step_backend(
    "reduction",
    "vectorized",
    lambda ctx: VectorizedReductionStep(
        ctx.platform, quality_ladder=ctx.config.quality_ladder
    ),
)
register_step_backend(
    "redistribution",
    "vectorized",
    lambda ctx: RedistributionStep(ctx.strategy, ctx.comm),
)
register_step_backend(
    "rendering",
    "vectorized",
    lambda ctx: VectorizedRenderingStep(
        ctx.platform,
        isosurface_level=ctx.config.isosurface_level,
        render_mode=ctx.config.render_mode,
    ),
)

register_step_backend(
    "scoring",
    "parallel",
    lambda ctx: ParallelScoringStep(ctx.metric, ctx.platform),
)
# The sort is a rooted collective (rank 0 sorts, everyone receives the same
# broadcast), so the parallel backend shares the NumPy path — there is no
# per-rank work to fan out over a pool.
register_step_backend(
    "sorting", "parallel", lambda ctx: VectorizedSortingStep(ctx.comm)
)
register_step_backend(
    "reduction",
    "parallel",
    lambda ctx: ParallelReductionStep(
        ctx.platform, quality_ladder=ctx.config.quality_ladder
    ),
)
# The exchange planner is already one searchsorted/bincount pass shared by
# every backend; the exchange itself is a collective.
register_step_backend(
    "redistribution",
    "parallel",
    lambda ctx: RedistributionStep(ctx.strategy, ctx.comm),
)
register_step_backend(
    "rendering",
    "parallel",
    lambda ctx: ParallelRenderingStep(
        ctx.platform,
        isosurface_level=ctx.config.isosurface_level,
        render_mode=ctx.config.render_mode,
    ),
)

# -- the "process" backend ------------------------------------------------------
#
# The two data-parallel hot steps fan out over the shared process pool with
# payloads crossing zero-copy through grid.shm segments; the other three
# steps deliberately reuse existing implementations:
#
# * sorting is a rooted collective (rank 0 sorts, everyone receives one
#   broadcast) — there is no per-rank work to ship to another process;
# * reduction reads 8 corner values per selected block, so shipping payloads
#   to workers costs orders of magnitude more than the gather itself —
#   the vectorised in-process pass is the faster "process" implementation;
# * redistribution is a collective exchange plus a searchsorted/bincount
#   planner that is already a single NumPy pass.

register_step_backend(
    "scoring",
    "process",
    lambda ctx: ProcessScoringStep(ctx.metric, ctx.platform),
)
register_step_backend(
    "sorting", "process", lambda ctx: VectorizedSortingStep(ctx.comm)
)
register_step_backend(
    "reduction",
    "process",
    lambda ctx: VectorizedReductionStep(
        ctx.platform, quality_ladder=ctx.config.quality_ladder
    ),
)
register_step_backend(
    "redistribution",
    "process",
    lambda ctx: RedistributionStep(ctx.strategy, ctx.comm),
)
register_step_backend(
    "rendering",
    "process",
    lambda ctx: ProcessRenderingStep(
        ctx.platform,
        isosurface_level=ctx.config.isosurface_level,
        render_mode=ctx.config.render_mode,
    ),
)
