"""Result records of pipeline runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.step import StepReport


@dataclass
class IterationResult:
    """Outcome of one pipeline iteration.

    All times are in seconds; ``modelled_*`` are platform-model seconds,
    ``measured_*`` are Python wall-clock.
    """

    iteration: int
    percent_reduced: float
    nblocks: int
    nreduced: int
    #: Per-step modelled seconds: scoring, sorting, reduction, redistribution, rendering.
    modelled_steps: Dict[str, float] = field(default_factory=dict)
    measured_steps: Dict[str, float] = field(default_factory=dict)
    #: Per-rank triangle counts after redistribution (rendering load).
    triangles_per_rank: List[int] = field(default_factory=list)
    #: Bytes moved by the redistribution step.
    moved_bytes: float = 0.0
    #: Full per-step reports (payload bytes, counters, per-rank series) keyed
    #: by step name; populated by the execution engine.
    step_reports: Dict[str, StepReport] = field(default_factory=dict)

    @property
    def modelled_total(self) -> float:
        """Full-pipeline modelled seconds for the iteration."""
        return float(sum(self.modelled_steps.values()))

    @property
    def measured_total(self) -> float:
        """Full-pipeline measured seconds for the iteration."""
        return float(sum(self.measured_steps.values()))

    @property
    def modelled_rendering(self) -> float:
        """Modelled rendering seconds (the quantity plotted in Figs. 5–10)."""
        return float(self.modelled_steps.get("rendering", 0.0))

    @property
    def load_imbalance(self) -> float:
        """max/mean of the per-rank triangle counts (1.0 = perfectly balanced)."""
        if not self.triangles_per_rank:
            return 1.0
        arr = np.asarray(self.triangles_per_rank, dtype=np.float64)
        mean = arr.mean()
        if mean <= 0:
            return 1.0
        return float(arr.max() / mean)


@dataclass
class PipelineRunResult:
    """Outcome of a multi-iteration pipeline run."""

    config_summary: Dict[str, object]
    iterations: List[IterationResult] = field(default_factory=list)

    def add(self, result: IterationResult) -> None:
        """Append one iteration's result."""
        self.iterations.append(result)

    @property
    def niterations(self) -> int:
        """Number of completed iterations."""
        return len(self.iterations)

    def modelled_totals(self) -> List[float]:
        """Per-iteration full-pipeline modelled seconds."""
        return [r.modelled_total for r in self.iterations]

    def modelled_rendering_times(self) -> List[float]:
        """Per-iteration modelled rendering seconds."""
        return [r.modelled_rendering for r in self.iterations]

    def percents(self) -> List[float]:
        """Per-iteration percentage of reduced blocks."""
        return [r.percent_reduced for r in self.iterations]

    def mean_modelled_total(self) -> float:
        """Mean full-pipeline modelled seconds over the run."""
        totals = self.modelled_totals()
        return float(np.mean(totals)) if totals else 0.0

    def mean_modelled_rendering(self) -> float:
        """Mean rendering modelled seconds over the run."""
        times = self.modelled_rendering_times()
        return float(np.mean(times)) if times else 0.0

    def summary(self) -> Dict[str, object]:
        """Compact dictionary summary (used by the experiment drivers)."""
        rendering = self.modelled_rendering_times()
        totals = self.modelled_totals()
        return {
            "config": dict(self.config_summary),
            "iterations": self.niterations,
            "rendering_mean": float(np.mean(rendering)) if rendering else 0.0,
            "rendering_min": float(np.min(rendering)) if rendering else 0.0,
            "rendering_max": float(np.max(rendering)) if rendering else 0.0,
            "total_mean": float(np.mean(totals)) if totals else 0.0,
            "percent_final": self.iterations[-1].percent_reduced if self.iterations else 0.0,
        }
