"""The performance-constrained in situ visualization pipeline (the paper's contribution).

The pipeline consists of the six steps of the paper's Figure 2, applied to the
blocks of every simulation iteration:

1. **Score** blocks with a generic or user-provided metric
   (:mod:`repro.core.scoring_step`);
2. **Sort** the ``<id, score>`` pairs globally and broadcast the sorted list
   (:mod:`repro.core.sorting_step`);
3. **Reduce** the ``p``% lowest-scored blocks to their 8 corners
   (:mod:`repro.core.reduction_step`);
4. **Redistribute** blocks across processes for load balance
   (:mod:`repro.core.redistribution`);
5. **Render** the blocks through the Catalyst-like visualization pipeline
   (:mod:`repro.core.rendering_step`);
6. **Adapt** ``p`` from the measured run time and the target
   (:mod:`repro.core.adaptation`, Algorithm 1).

Each of the five data steps implements the :class:`PipelineStep` contract
(:mod:`repro.core.step`): ``execute(context) -> StepReport``.  The
:class:`ExecutionEngine` (:mod:`repro.core.engine`) resolves each step's
implementation through the backend registry (:mod:`repro.core.backends`) for
a ``"serial"``, ``"vectorized"``, or ``"parallel"`` backend — selected
through ``PipelineConfig.engine``, extensible by third-party registrations —
and :class:`InSituPipeline` layers the adaptation controller and the
:class:`PerformanceMonitor` on top.  The monitor records per-iteration,
per-step timings in both measured wall-clock and modelled platform seconds,
plus the per-step payload bytes and counters carried by the step reports.
"""

from repro.core.config import PipelineConfig, AdaptationConfig
from repro.core.adaptation import adapt_percent, AdaptationController
from repro.core.backends import (
    STEP_NAMES,
    StepBuildContext,
    build_step,
    engine_backends,
    register_step_backend,
    registered_steps,
    resolve_step_factory,
)
from repro.core.step import (
    STAGE_GRAPH,
    IterationContext,
    PipelineStep,
    StageSpec,
    StepReport,
    stage_spec,
)
from repro.core.scoring_step import (
    ParallelScoringStep,
    ProcessScoringStep,
    ScoringStep,
    VectorizedScoringStep,
)
from repro.core.sorting_step import SortingStep, VectorizedSortingStep
from repro.core.reduction_step import (
    ParallelReductionStep,
    ReductionStep,
    VectorizedReductionStep,
    select_blocks_to_reduce,
)
from repro.core.redistribution import (
    RedistributionStrategy,
    RedistributionStep,
    NoRedistribution,
    RandomShuffle,
    RoundRobin,
    make_strategy,
)
from repro.core.rendering_step import (
    ParallelRenderingStep,
    ProcessRenderingStep,
    RenderingStep,
    VectorizedRenderingStep,
)
from repro.core.engine import ExecutionEngine, PipelinedEngine
from repro.core.monitor import PerformanceMonitor
from repro.core.results import IterationResult, PipelineRunResult
from repro.core.pipeline import InSituPipeline


def __getattr__(name: str):
    # Live view of the registry-derived backend tuple: a frozen import-time
    # binding would hide backends registered after this package was imported
    # (config and engine forward the same way).
    if name == "ENGINE_BACKENDS":
        return engine_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PipelineConfig",
    "AdaptationConfig",
    "adapt_percent",
    "AdaptationController",
    "IterationContext",
    "PipelineStep",
    "StepReport",
    "StageSpec",
    "STAGE_GRAPH",
    "stage_spec",
    "ScoringStep",
    "VectorizedScoringStep",
    "ParallelScoringStep",
    "ProcessScoringStep",
    "SortingStep",
    "VectorizedSortingStep",
    "ReductionStep",
    "VectorizedReductionStep",
    "ParallelReductionStep",
    "select_blocks_to_reduce",
    "STEP_NAMES",
    "StepBuildContext",
    "build_step",
    "engine_backends",
    "register_step_backend",
    "registered_steps",
    "resolve_step_factory",
    "RedistributionStrategy",
    "RedistributionStep",
    "NoRedistribution",
    "RandomShuffle",
    "RoundRobin",
    "make_strategy",
    "RenderingStep",
    "VectorizedRenderingStep",
    "ParallelRenderingStep",
    "ProcessRenderingStep",
    "ENGINE_BACKENDS",
    "ExecutionEngine",
    "PipelinedEngine",
    "PerformanceMonitor",
    "IterationResult",
    "PipelineRunResult",
    "InSituPipeline",
]
