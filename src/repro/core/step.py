"""The composable step contract of the pipeline.

Every stage of the paper's Figure 2 (score, sort, reduce, redistribute,
render) is a :class:`PipelineStep`: an object with a ``name`` and an
``execute`` method that advances one :class:`IterationContext` and returns a
:class:`StepReport`.  The :class:`~repro.core.engine.ExecutionEngine` runs an
ordered list of steps; :class:`~repro.core.monitor.PerformanceMonitor`
consumes the reports.  Because the contract is uniform, steps can be swapped
(serial vs. vectorised scoring), reordered, or extended without touching the
orchestration code — the property every later scaling backend builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.block import Block
    from repro.viz.catalyst import RenderResult

ScorePair = Tuple[int, float]


@dataclass
class StepReport:
    """Unified outcome record of one pipeline step on one iteration.

    Attributes
    ----------
    step:
        Step name ("scoring", "sorting", ...).
    measured_per_rank:
        Python wall-clock seconds per rank.  Collective steps (sorting,
        redistribution), whose cost is charged to every rank at once, report
        a single entry.
    modelled_per_rank:
        Modelled platform seconds per rank, same convention.
    payload_bytes:
        Bytes the step moved over the (simulated) network.
    counters:
        Scalar step-specific counters (blocks scored, blocks reduced,
        triangles produced, ...).
    per_rank_counters:
        Per-rank step-specific series (e.g. triangle counts used by the
        load-imbalance analyses).
    """

    step: str
    measured_per_rank: List[float] = field(default_factory=list)
    modelled_per_rank: List[float] = field(default_factory=list)
    payload_bytes: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    per_rank_counters: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def measured_max(self) -> float:
        """Slowest rank's measured seconds (0.0 for an empty report)."""
        return max(self.measured_per_rank) if self.measured_per_rank else 0.0

    @property
    def modelled_max(self) -> float:
        """Slowest rank's modelled seconds (0.0 for an empty report).

        Every step of the pipeline ends at a collective, so the slowest rank
        determines the step's contribution to the iteration time.
        """
        return max(self.modelled_per_rank) if self.modelled_per_rank else 0.0

    @classmethod
    def collective(
        cls,
        step: str,
        measured: float,
        modelled: float,
        payload_bytes: float = 0.0,
        counters: Optional[Dict[str, float]] = None,
    ) -> "StepReport":
        """Report of a collective step whose cost applies to all ranks."""
        return cls(
            step=step,
            measured_per_rank=[float(measured)],
            modelled_per_rank=[float(modelled)],
            payload_bytes=float(payload_bytes),
            counters=dict(counters or {}),
        )


@dataclass
class IterationContext:
    """Mutable state threaded through the steps of one iteration.

    The scoring step fills ``per_rank_pairs`` and attaches scores to
    ``per_rank_blocks``; sorting fills ``sorted_pairs``; reduction and
    redistribution rewrite ``per_rank_blocks``; rendering fills
    ``render_results``.  ``reports`` accumulates every step's
    :class:`StepReport` keyed by step name, in execution order.
    """

    iteration: int
    percent: float
    nranks: int
    per_rank_blocks: List[List["Block"]]
    per_rank_pairs: Optional[List[List[ScorePair]]] = None
    sorted_pairs: Optional[List[ScorePair]] = None
    reduced_ids: Optional[Set[int]] = None
    render_results: Optional[List["RenderResult"]] = None
    reports: Dict[str, StepReport] = field(default_factory=dict)

    @property
    def nblocks(self) -> int:
        """Total number of blocks currently held across all ranks."""
        return sum(len(blocks) for blocks in self.per_rank_blocks)

    def require_pairs(self) -> List[List[ScorePair]]:
        """Score pairs, raising if the scoring step has not run yet."""
        if self.per_rank_pairs is None:
            raise RuntimeError("scoring step must run before this step")
        return self.per_rank_pairs

    def require_sorted(self) -> List[ScorePair]:
        """Sorted pairs, raising if the sorting step has not run yet."""
        if self.sorted_pairs is None:
            raise RuntimeError("sorting step must run before this step")
        return self.sorted_pairs


@runtime_checkable
class PipelineStep(Protocol):
    """Contract every pipeline step implements.

    A step reads what it needs from the :class:`IterationContext`, mutates it
    (new block lists, pairs, render results, ...), and returns a
    :class:`StepReport` describing the work it did and what it cost.
    """

    name: str

    def execute(self, context: IterationContext) -> StepReport:
        """Advance ``context`` by one step and report the outcome."""
        ...
