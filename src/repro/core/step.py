"""The composable step contract of the pipeline.

Every stage of the paper's Figure 2 (score, sort, reduce, redistribute,
render) is a :class:`PipelineStep`: an object with a ``name`` and an
``execute`` method that advances one :class:`IterationContext` and returns a
:class:`StepReport`.  The :class:`~repro.core.engine.ExecutionEngine` runs an
ordered list of steps; :class:`~repro.core.monitor.PerformanceMonitor`
consumes the reports.  Because the contract is uniform, steps can be swapped
(serial vs. vectorised scoring), reordered, or extended without touching the
orchestration code — the property every later scaling backend builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.block import Block
    from repro.viz.catalyst import RenderResult

ScorePair = Tuple[int, float]


@dataclass
class StepReport:
    """Unified outcome record of one pipeline step on one iteration.

    Attributes
    ----------
    step:
        Step name ("scoring", "sorting", ...).
    measured_per_rank:
        Python wall-clock seconds per rank.  Collective steps (sorting,
        redistribution), whose cost is charged to every rank at once, report
        a single entry.
    modelled_per_rank:
        Modelled platform seconds per rank, same convention.
    payload_bytes:
        Bytes the step moved over the (simulated) network.
    counters:
        Scalar step-specific counters (blocks scored, blocks reduced,
        triangles produced, ...).
    per_rank_counters:
        Per-rank step-specific series (e.g. triangle counts used by the
        load-imbalance analyses).
    """

    step: str
    measured_per_rank: List[float] = field(default_factory=list)
    modelled_per_rank: List[float] = field(default_factory=list)
    payload_bytes: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    per_rank_counters: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def measured_max(self) -> float:
        """Slowest rank's measured seconds (0.0 for an empty report)."""
        return max(self.measured_per_rank) if self.measured_per_rank else 0.0

    @property
    def modelled_max(self) -> float:
        """Slowest rank's modelled seconds (0.0 for an empty report).

        Every step of the pipeline ends at a collective, so the slowest rank
        determines the step's contribution to the iteration time.
        """
        return max(self.modelled_per_rank) if self.modelled_per_rank else 0.0

    @classmethod
    def collective(
        cls,
        step: str,
        measured: float,
        modelled: float,
        payload_bytes: float = 0.0,
        counters: Optional[Dict[str, float]] = None,
    ) -> "StepReport":
        """Report of a collective step whose cost applies to all ranks."""
        return cls(
            step=step,
            measured_per_rank=[float(measured)],
            modelled_per_rank=[float(modelled)],
            payload_bytes=float(payload_bytes),
            counters=dict(counters or {}),
        )


@dataclass
class IterationContext:
    """Mutable state threaded through the steps of one iteration.

    The scoring step fills ``per_rank_pairs`` and attaches scores to
    ``per_rank_blocks``; sorting fills ``sorted_pairs``; reduction and
    redistribution rewrite ``per_rank_blocks``; rendering fills
    ``render_results``.  ``reports`` accumulates every step's
    :class:`StepReport` keyed by step name, in execution order.
    """

    iteration: int
    percent: float
    nranks: int
    per_rank_blocks: List[List["Block"]]
    per_rank_pairs: Optional[List[List[ScorePair]]] = None
    sorted_pairs: Optional[List[ScorePair]] = None
    reduced_ids: Optional[Set[int]] = None
    #: Target ladder level per reduced block id (the reduction step's quality
    #: ladder decision; ``set(reduction_levels) == reduced_ids``).
    reduction_levels: Optional[Dict[int, int]] = None
    render_results: Optional[List["RenderResult"]] = None
    reports: Dict[str, StepReport] = field(default_factory=dict)

    @property
    def nblocks(self) -> int:
        """Total number of blocks currently held across all ranks."""
        return sum(len(blocks) for blocks in self.per_rank_blocks)

    def require_pairs(self) -> List[List[ScorePair]]:
        """Score pairs, raising if the scoring step has not run yet."""
        if self.per_rank_pairs is None:
            raise RuntimeError("scoring step must run before this step")
        return self.per_rank_pairs

    def require_sorted(self) -> List[ScorePair]:
        """Sorted pairs, raising if the sorting step has not run yet."""
        if self.sorted_pairs is None:
            raise RuntimeError("sorting step must run before this step")
        return self.sorted_pairs


@dataclass(frozen=True)
class StageSpec:
    """Schedulable description of one pipeline stage.

    The engine's step sequence is not just an ordered list — it is a
    dependency graph, and :class:`StageSpec` is the explicit form of that
    graph.  ``after`` names the stages of the *same* iteration whose context
    mutations this stage consumes (the intra-iteration data dependencies);
    ``serial_across_iterations`` declares that the stage must process
    iteration ``i`` before iteration ``i + 1`` (true for every built-in
    stage: step objects may carry per-stage state such as a communicator's
    clocks, and the reported deltas assume call order).

    The sequential :class:`~repro.core.engine.ExecutionEngine` runs stages
    in topological order; the :class:`~repro.core.engine.PipelinedEngine`
    overlaps iterations by scheduling stage ``s`` of iteration ``i`` as soon
    as every ``after`` stage of iteration ``i`` and stage ``s`` of iteration
    ``i - 1`` have completed — which is how snapshot ``t + 1`` scores and
    sorts while snapshot ``t`` renders.

    Attributes
    ----------
    name:
        Stage (= step) name, e.g. ``"scoring"``.
    after:
        Names of same-iteration stages that must complete first.
    reads, writes:
        The :class:`IterationContext` fields the stage consumes and
        produces — documentation of *why* the ``after`` edges exist, kept
        machine-readable so tools (and tests) can check the graph against
        the context contract.
    serial_across_iterations:
        Whether instances of this stage must run in iteration order.
    """

    name: str
    after: Tuple[str, ...] = ()
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    serial_across_iterations: bool = True


#: The explicit dependency graph of the paper's Figure-2 step sequence: a
#: linear chain, because every stage consumes context state the previous one
#: writes.  ``per_rank_blocks`` is rewritten in place by reduction and
#: redistribution, which is what serialises the middle of the chain.
STAGE_GRAPH: Tuple[StageSpec, ...] = (
    StageSpec(
        name="scoring",
        reads=("per_rank_blocks",),
        writes=("per_rank_pairs",),
    ),
    StageSpec(
        name="sorting",
        after=("scoring",),
        reads=("per_rank_pairs",),
        writes=("sorted_pairs",),
    ),
    StageSpec(
        name="reduction",
        after=("sorting",),
        reads=("sorted_pairs", "per_rank_blocks"),
        writes=("per_rank_blocks", "reduced_ids"),
    ),
    StageSpec(
        name="redistribution",
        after=("reduction",),
        reads=("sorted_pairs", "per_rank_blocks"),
        writes=("per_rank_blocks",),
    ),
    StageSpec(
        name="rendering",
        after=("redistribution",),
        reads=("per_rank_blocks",),
        writes=("render_results",),
    ),
)


def stage_spec(name: str) -> StageSpec:
    """The :data:`STAGE_GRAPH` entry for ``name``.

    Steps unknown to the canonical graph (third-party stages appended to an
    engine) get a conservative spec: they run after every canonical stage
    and serially across iterations.
    """
    for spec in STAGE_GRAPH:
        if spec.name == name:
            return spec
    return StageSpec(name=name, after=tuple(s.name for s in STAGE_GRAPH))


@runtime_checkable
class PipelineStep(Protocol):
    """Contract every pipeline step implements.

    A step reads what it needs from the :class:`IterationContext`, mutates it
    (new block lists, pairs, render results, ...), and returns a
    :class:`StepReport` describing the work it did and what it cost.
    """

    name: str

    def execute(self, context: IterationContext) -> StepReport:
        """Advance ``context`` by one step and report the outcome."""
        ...
