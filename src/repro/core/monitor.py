"""Step 6 support: monitoring the pipeline's own performance.

The monitor collects, for every iteration, the per-step measured and modelled
times plus auxiliary quantities (per-rank triangle counts, bytes moved).  The
execution engine feeds it one :class:`~repro.core.step.StepReport` per step
per iteration (attached to the :class:`IterationResult`); the adaptation
controller reads the full-pipeline time from here, and experiment drivers
read everything else — including per-step payload bytes and counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.results import IterationResult, PipelineRunResult
from repro.utils.timer import StepTimings


class PerformanceMonitor:
    """Collects per-iteration step timings.

    The monitor accepts whatever step sequence the engine actually ran: the
    series queries validate step names against the steps *recorded* in the
    iteration results (falling back to the canonical :data:`STEPS` of the
    paper's Figure 2 before anything is recorded), so custom steps plugged
    into the composable engine are first-class citizens.
    """

    #: The canonical five data steps of the paper's Figure 2 (the default
    #: step vocabulary before any iteration is recorded).
    STEPS = ("scoring", "sorting", "reduction", "redistribution", "rendering")

    def __init__(self) -> None:
        self._iterations: List[IterationResult] = []

    def _known_steps(self) -> set:
        """Step names recorded so far, plus the canonical defaults."""
        known = set(self.STEPS)
        for result in self._iterations:
            known.update(result.step_reports)
            known.update(result.modelled_steps)
            known.update(result.measured_steps)
        return known

    def _check_step(self, step: str) -> None:
        known = self._known_steps()
        if step not in known:
            raise ValueError(
                f"unknown step {step!r}; expected one of {tuple(sorted(known))}"
            )

    # -- recording --------------------------------------------------------------

    def record_iteration(self, result: IterationResult) -> None:
        """Store one iteration's results."""
        self._iterations.append(result)

    # -- queries -----------------------------------------------------------------

    @property
    def niterations(self) -> int:
        """Number of recorded iterations."""
        return len(self._iterations)

    def last(self) -> Optional[IterationResult]:
        """Most recent iteration result (None before the first iteration)."""
        return self._iterations[-1] if self._iterations else None

    def iteration(self, index: int) -> IterationResult:
        """Result of iteration ``index`` (0-based recording order)."""
        return self._iterations[index]

    def results(self) -> List[IterationResult]:
        """All recorded iteration results (copy of the list)."""
        return list(self._iterations)

    def to_run_result(self, config_summary: Dict[str, object]) -> PipelineRunResult:
        """Bundle the recorded iterations into a :class:`PipelineRunResult`."""
        run = PipelineRunResult(config_summary=config_summary)
        for result in self._iterations:
            run.add(result)
        return run

    # -- aggregates ---------------------------------------------------------------

    def step_series(self, step: str, modelled: bool = True) -> List[float]:
        """Per-iteration seconds of one step."""
        self._check_step(step)
        if modelled:
            return [r.modelled_steps.get(step, 0.0) for r in self._iterations]
        return [r.measured_steps.get(step, 0.0) for r in self._iterations]

    def total_series(self, modelled: bool = True) -> List[float]:
        """Per-iteration full-pipeline seconds."""
        if modelled:
            return [r.modelled_total for r in self._iterations]
        return [r.measured_total for r in self._iterations]

    def mean_step(self, step: str, modelled: bool = True) -> float:
        """Mean seconds of one step over the recorded iterations."""
        series = self.step_series(step, modelled)
        return float(np.mean(series)) if series else 0.0

    def imbalance_series(self) -> List[float]:
        """Per-iteration rendering load imbalance (max/mean triangles)."""
        return [r.load_imbalance for r in self._iterations]

    # -- step-report queries -----------------------------------------------------

    def payload_bytes_series(self, step: str) -> List[float]:
        """Per-iteration bytes moved over the network by one step.

        Iterations recorded without step reports (hand-built results) count
        as 0 bytes.
        """
        self._check_step(step)
        return [
            float(r.step_reports[step].payload_bytes) if step in r.step_reports else 0.0
            for r in self._iterations
        ]

    def counter_series(self, step: str, counter: str) -> List[float]:
        """Per-iteration value of one step counter (0.0 where absent)."""
        self._check_step(step)
        return [
            float(r.step_reports[step].counters.get(counter, 0.0))
            if step in r.step_reports
            else 0.0
            for r in self._iterations
        ]
