"""Step 5: rendering through the Catalyst-like visualization pipeline.

Each rank runs the isosurface script over the blocks it currently owns.  The
step's modelled time is the *maximum* of the per-rank modelled rendering
times (the rendering ends with a synchronous composition, so the slowest
process drives the total — the load-imbalance effect the redistribution step
attacks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.step import IterationContext, StepReport
from repro.grid.block import Block
from repro.perfmodel.platform import PlatformModel
from repro.viz.catalyst import CatalystPipeline, IsosurfaceScript, RenderResult


class RenderingStep:
    """Runs the visualization scripts on every rank and prices the work."""

    name = "rendering"

    def __init__(
        self,
        platform: PlatformModel,
        isosurface_level: float = 45.0,
        render_mode: str = "count",
        render_image: bool = False,
    ) -> None:
        self.platform = platform
        self.script = IsosurfaceScript(
            level=isosurface_level,
            mode="mesh" if render_mode == "mesh" else "count",
            render_image=render_image and render_mode == "mesh",
        )
        self.pipeline = CatalystPipeline([self.script])

    def run(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> Tuple[List[RenderResult], Dict[str, object]]:
        """Render every rank's blocks.

        Returns
        -------
        (per_rank_results, info)
            One :class:`RenderResult` per rank and a timing summary with the
            per-rank and maximum modelled rendering seconds, plus per-rank
            triangle counts (used for load-imbalance analyses).
        """
        results: List[RenderResult] = []
        modelled: List[float] = []
        measured: List[float] = []
        triangles: List[int] = []
        for blocks in per_rank_blocks:
            outputs = self.pipeline.coprocess(blocks, iteration)
            result = outputs[0]
            results.append(result)
            measured.append(result.measured_seconds)
            triangles.append(result.ntriangles)
            modelled.append(
                self.platform.render.rank_seconds(
                    ntriangles=result.ntriangles,
                    npoints=result.npoints,
                    nblocks=len(blocks),
                )
            )
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "triangles_per_rank": triangles,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "total_triangles": int(sum(triangles)),
        }
        return results, info

    def execute(self, context: IterationContext) -> StepReport:
        """Render the context's blocks (PipelineStep contract)."""
        results, info = self.run(context.per_rank_blocks, context.iteration)
        context.render_results = results
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={"total_triangles": float(info["total_triangles"])},
            per_rank_counters={
                "triangles": [float(t) for t in info["triangles_per_rank"]]
            },
        )
