"""Step 5: rendering through the Catalyst-like visualization pipeline.

Each rank runs the isosurface script over the blocks it currently owns.  The
step's modelled time is the *maximum* of the per-rank modelled rendering
times (the rendering ends with a synchronous composition, so the slowest
process drives the total — the load-imbalance effect the redistribution step
attacks).

Like the scoring step, the rendering step comes in four implementations of
one contract, selected by ``PipelineConfig.engine``:

* :class:`RenderingStep` — the reference loop: every rank's blocks go through
  ``IsosurfaceScript.process`` one block at a time;
* :class:`VectorizedRenderingStep` — counting mode groups each rank's blocks
  by payload shape (the :class:`~repro.grid.batch.BlockBatch` layout; all
  reduced 2×2×2 blocks form one stacked group) and counts every group with a
  single vectorised ``count_active_cells_batch`` pass.  Mesh mode extracts
  real geometry, which cannot be stacked, and falls back to the reference
  per-block extraction;
* :class:`ParallelRenderingStep` — the vectorised per-rank batch path fanned
  out over a ``concurrent.futures`` thread pool across ranks; in mesh mode
  the work items are per-shape block chunks, reassembled in block order;
* :class:`ProcessRenderingStep` — counting mode fanned out over the shared
  process pool, payloads crossing zero-copy through
  :class:`~repro.grid.shm.SharedBlockBatch` segments (mesh mode falls back
  to the vectorised path).

All backends produce identical counts, triangle estimates, and modelled
seconds — measured wall-clock is the one quantity that legitimately differs.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.step import IterationContext, StepReport
from repro.grid.batch import group_positions_by_shape
from repro.grid.block import Block
from repro.grid.shm import SharedBlockBatch, ShmBatchHandle
from repro.perfmodel.platform import PlatformModel
from repro.utils.pool import LazyThreadPool
from repro.utils.procpool import (
    chunk_bounds,
    default_process_workers,
    shared_process_pool,
)
from repro.utils.timer import Timer
from repro.viz.catalyst import CatalystPipeline, IsosurfaceScript, RenderResult
from repro.viz.marching_cubes import count_active_cells_batch
from repro.viz.mesh import TriangleMesh


class RenderingStep:
    """Runs the visualization scripts on every rank and prices the work."""

    name = "rendering"

    def __init__(
        self,
        platform: PlatformModel,
        isosurface_level: float = 45.0,
        render_mode: str = "count",
        render_image: bool = False,
    ) -> None:
        self.platform = platform
        self.script = IsosurfaceScript(
            level=isosurface_level,
            mode="mesh" if render_mode == "mesh" else "count",
            render_image=render_image and render_mode == "mesh",
        )
        self.pipeline = CatalystPipeline([self.script])

    # -- rendering backend ---------------------------------------------------

    def _render_all(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> List[RenderResult]:
        """One :class:`RenderResult` per rank (the backend hook)."""
        return [
            self.pipeline.coprocess(blocks, iteration)[0]
            for blocks in per_rank_blocks
        ]

    # -- step execution ------------------------------------------------------

    def run(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> Tuple[List[RenderResult], Dict[str, object]]:
        """Render every rank's blocks.

        Returns
        -------
        (per_rank_results, info)
            One :class:`RenderResult` per rank and a timing summary with the
            per-rank and maximum modelled rendering seconds, plus per-rank
            triangle counts (used for load-imbalance analyses).
        """
        results = self._render_all(per_rank_blocks, iteration)
        modelled: List[float] = []
        measured: List[float] = []
        triangles: List[int] = []
        for blocks, result in zip(per_rank_blocks, results):
            measured.append(result.measured_seconds)
            triangles.append(result.ntriangles)
            modelled.append(
                self.platform.render.rank_seconds(
                    ntriangles=result.ntriangles,
                    npoints=result.npoints,
                    nblocks=len(blocks),
                )
            )
        info = {
            "measured_per_rank": measured,
            "modelled_per_rank": modelled,
            "triangles_per_rank": triangles,
            "measured_max": max(measured) if measured else 0.0,
            "modelled_max": max(modelled) if modelled else 0.0,
            "total_triangles": int(sum(triangles)),
        }
        return results, info

    def execute(self, context: IterationContext) -> StepReport:
        """Render the context's blocks (PipelineStep contract)."""
        results, info = self.run(context.per_rank_blocks, context.iteration)
        context.render_results = results
        return StepReport(
            step=self.name,
            measured_per_rank=list(info["measured_per_rank"]),
            modelled_per_rank=list(info["modelled_per_rank"]),
            counters={"total_triangles": float(info["total_triangles"])},
            per_rank_counters={
                "triangles": [float(t) for t in info["triangles_per_rank"]]
            },
        )


class VectorizedRenderingStep(RenderingStep):
    """Rendering through the script's shape-grouped batch path.

    Counting mode — the cheap load proxy the large virtual-rank experiments
    run — batches *across* ranks, exactly like the vectorised scoring step:
    every block of the iteration is grouped by payload shape (the
    :class:`~repro.grid.batch.BlockBatch` layout; all reduced 2×2×2 blocks
    form one stacked group) and each group is counted with a single
    ``count_active_cells_batch`` pass, so the whole iteration costs a
    handful of NumPy calls instead of one Python iteration per block.
    Counts, triangle estimates, and modelled seconds are bitwise identical
    to :class:`RenderingStep`'s; only measured wall-clock differs, and the
    single pass's elapsed time is attributed to ranks proportionally to
    their payload point counts (the convention the scoring step set).  Mesh
    mode extracts per-block geometry, which cannot be stacked, and is
    identical to the reference loop.
    """

    def _render_all(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> List[RenderResult]:
        if self.script.mode != "count":
            return [
                self.script.process_batch(blocks, iteration)
                for blocks in per_rank_blocks
            ]
        all_blocks: List[Block] = []
        rank_slices: List[Tuple[int, int]] = []
        for blocks in per_rank_blocks:
            rank_slices.append((len(all_blocks), len(all_blocks) + len(blocks)))
            all_blocks.extend(blocks)
        results: List[RenderResult] = []
        with Timer() as timer:
            counts = self._count_all(all_blocks)
            for (lo, hi), blocks in zip(rank_slices, per_rank_blocks):
                result = RenderResult(
                    script_name=self.script.name, iteration=iteration
                )
                for block, cells in zip(blocks, counts[lo:hi]):
                    result.npoints += int(block.data.size)
                    self.script.record_count(result, block.block_id, cells)
                results.append(result)
        elapsed = timer.elapsed
        total_points = sum(result.npoints for result in results)
        for result in results:
            result.measured_seconds = (
                elapsed * (result.npoints / total_points) if total_points else 0.0
            )
        return results

    def _count_all(self, blocks: Sequence[Block]) -> np.ndarray:
        """Per-block active-cell counts (the counting-mode backend hook)."""
        return self.script.count_blocks_batched(blocks)


class ParallelRenderingStep(VectorizedRenderingStep):
    """The batched rendering path fanned out over a thread pool.

    Ranks are independent at the rendering step (the paper's synchronous
    composition happens *after* the per-rank work this step prices), so the
    pool maps whole ranks to workers:

    * counting mode: one :meth:`IsosurfaceScript.process_batch` task per rank
      (itself the vectorised per-shape-group pass);
    * mesh mode: each rank's blocks are split into per-shape chunks, every
      chunk's blocks are extracted by one task (a single detection pass per
      block), and the per-block meshes are reassembled *in block order* — so
      the merged per-rank mesh, the counts, and the optional rasterized image
      are identical to the serial backend's.

    NumPy-heavy extraction releases the GIL for most of its work, so threads
    (which share the block payloads for free) beat a process pool and its
    per-payload pickling — the same trade the parallel scoring step makes.
    Per-rank ``measured_seconds`` are each task's own wall-clock (tasks run
    concurrently, so their sum exceeds the step's elapsed time).
    """

    def __init__(
        self,
        platform: PlatformModel,
        isosurface_level: float = 45.0,
        render_mode: str = "count",
        render_image: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            platform,
            isosurface_level=isosurface_level,
            render_mode=render_mode,
            render_image=render_image,
        )
        self._workers = LazyThreadPool(
            max_workers, thread_name_prefix="rendering-worker"
        )
        self.max_workers = self._workers.max_workers

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The step's worker pool, created on first use and reused across
        iterations (the step lives as long as its engine)."""
        return self._workers.executor

    def _render_all(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> List[RenderResult]:
        if self.script.mode == "count":
            return list(
                self.pool.map(
                    lambda blocks: self.script.process_batch(blocks, iteration),
                    per_rank_blocks,
                )
            )
        return self._render_all_mesh(per_rank_blocks, iteration)

    # -- mesh mode: per-shape chunks across all ranks ------------------------

    def _render_all_mesh(
        self, per_rank_blocks: Sequence[Sequence[Block]], iteration: int
    ) -> List[RenderResult]:
        tasks: List[Tuple[int, List[int]]] = []
        for rank, blocks in enumerate(per_rank_blocks):
            tasks.extend(
                (rank, positions)
                for positions in group_positions_by_shape(blocks)
            )

        def extract_chunk(task: Tuple[int, List[int]]):
            rank, positions = task
            blocks = per_rank_blocks[rank]
            with Timer() as timer:
                extracted = [
                    (pos, self.script.extract_block(blocks[pos]))
                    for pos in positions
                ]
            return rank, extracted, timer.elapsed

        per_rank_meshes: List[Dict[int, TriangleMesh]] = [
            {} for _ in per_rank_blocks
        ]
        per_rank_cells: List[Dict[int, int]] = [{} for _ in per_rank_blocks]
        elapsed: List[float] = [0.0 for _ in per_rank_blocks]
        for rank, extracted, seconds in self.pool.map(extract_chunk, tasks):
            elapsed[rank] += seconds
            for pos, (mesh, cells) in extracted:
                per_rank_meshes[rank][pos] = mesh
                per_rank_cells[rank][pos] = cells

        results: List[RenderResult] = []
        for rank, blocks in enumerate(per_rank_blocks):
            result = RenderResult(script_name=self.script.name, iteration=iteration)
            meshes: List[TriangleMesh] = []
            with Timer() as timer:
                for pos, block in enumerate(blocks):
                    result.npoints += int(block.data.size)
                    mesh = per_rank_meshes[rank][pos]
                    result.per_block_active_cells[block.block_id] = (
                        per_rank_cells[rank][pos]
                    )
                    result.per_block_triangles[block.block_id] = mesh.ntriangles
                    meshes.append(mesh)
                self.script.finalize_mesh(result, meshes)
            result.measured_seconds = elapsed[rank] + timer.elapsed
            results.append(result)
        return results


def _count_shared_batch(
    level: float, handle: ShmBatchHandle, lo: int, hi: int
) -> np.ndarray:
    """Process-pool worker: active-cell counts for rows ``[lo, hi)`` of a
    shared stacked payload.  ``count_active_cells_batch`` treats every block
    independently, so counts do not depend on the chunk boundaries."""
    view = SharedBlockBatch.attach(handle)
    try:
        return count_active_cells_batch(view.data[lo:hi], level)
    finally:
        view.close()


class ProcessRenderingStep(VectorizedRenderingStep):
    """Counting-mode rendering fanned out over the shared process pool.

    The cross-rank assembly of :class:`VectorizedRenderingStep` is kept; only
    the per-block counting moves to worker processes.  Each shape group's
    stacked payload crosses the boundary once through a
    :class:`~repro.grid.shm.SharedBlockBatch` segment and workers count
    contiguous row ranges of the shared view, so the task queue carries only
    handles and bounds.  Counts — and everything derived from them — are
    bitwise identical to the other backends'.

    Mesh mode extracts real per-block geometry; the meshes cannot be stacked
    into a shared segment, and pickling them back to the parent costs more
    than the extraction itself, so mesh mode falls back to the inherited
    vectorised path (a documented serial fallback, like the sorting /
    reduction / redistribution steps of this backend).
    """

    def __init__(
        self,
        platform: PlatformModel,
        isosurface_level: float = 45.0,
        render_mode: str = "count",
        render_image: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            platform,
            isosurface_level=isosurface_level,
            render_mode=render_mode,
            render_image=render_image,
        )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers or default_process_workers())

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The engine-wide shared process pool (created on first use)."""
        return shared_process_pool()

    def _count_all(self, blocks: Sequence[Block]) -> np.ndarray:
        counts = np.zeros(len(blocks), dtype=np.int64)
        shared: List[SharedBlockBatch] = []
        pending: List[Tuple[List[int], Future]] = []
        try:
            for indices in group_positions_by_shape(blocks):
                segment = SharedBlockBatch.create(
                    np.stack([blocks[i].data for i in indices])
                )
                shared.append(segment)
                handle = segment.handle()
                for lo, hi in chunk_bounds(len(indices), 2 * self.max_workers):
                    pending.append(
                        (
                            indices[lo:hi],
                            self.pool.submit(
                                _count_shared_batch,
                                self.script.level,
                                handle,
                                lo,
                                hi,
                            ),
                        )
                    )
            for chunk, future in pending:
                counts[chunk] = np.asarray(future.result(), dtype=np.int64)
        finally:
            for segment in shared:
                segment.dispose()
        return counts
