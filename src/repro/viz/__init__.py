"""Visualization substrate: marching cubes, software rendering, Catalyst-like API.

The paper renders a 45 dBZ isosurface of the reflectivity through ParaView
Catalyst (marching cubes + mesh rendering), plus 2-D colormaps.  This package
provides the equivalent building blocks in pure NumPy:

* :func:`marching_cubes` — isosurface extraction (full 256-case tables);
* :class:`TriangleMesh` — the extracted geometry;
* :class:`Camera`, :class:`Framebuffer`, :func:`rasterize_mesh` — a z-buffered
  Lambert-shaded software rasterizer producing actual images;
* :func:`render_colormap_slice`, :func:`volume_max_projection` — the 2-D
  colormap and volume-rendering-style scenarios of Figure 1;
* :class:`CatalystPipeline` and the script classes — an in situ co-processing
  API shaped like ParaView Catalyst's Python pipelines, which is what the core
  pipeline's rendering step drives.
"""

from repro.viz.mesh import TriangleMesh
from repro.viz.marching_cubes import (
    marching_cubes,
    extract_isosurface,
    count_active_cells,
    count_active_cells_batch,
)
from repro.viz.camera import Camera
from repro.viz.framebuffer import Framebuffer
from repro.viz.rasterizer import rasterize_mesh
from repro.viz.colormap import grayscale, viridis_like, apply_colormap
from repro.viz.slice_render import render_colormap_slice
from repro.viz.volume import volume_max_projection, composite_volume
from repro.viz.catalyst import (
    CatalystPipeline,
    IsosurfaceScript,
    ColormapScript,
    RenderResult,
)

__all__ = [
    "TriangleMesh",
    "marching_cubes",
    "extract_isosurface",
    "count_active_cells",
    "count_active_cells_batch",
    "Camera",
    "Framebuffer",
    "rasterize_mesh",
    "grayscale",
    "viridis_like",
    "apply_colormap",
    "render_colormap_slice",
    "volume_max_projection",
    "composite_volume",
    "CatalystPipeline",
    "IsosurfaceScript",
    "ColormapScript",
    "RenderResult",
]
