"""Isosurface extraction.

The paper extracts the 45 dBZ isosurface with the marching cubes algorithm.
This implementation extracts the same surface by decomposing every grid cell
into six tetrahedra and triangulating each tetrahedron (marching tetrahedra).
The tetrahedral route produces the identical surface topology up to the usual
ambiguity-resolution differences of classic marching cubes, avoids the
ambiguous-case problems of the 256-entry table, and — importantly for this
reproduction — yields the same *load structure*: the number of emitted
triangles is proportional to the number of grid cells crossed by the
isosurface, which is what drives per-process rendering time.

The extraction is vectorised: candidate cells are detected with array min/max
tests, and triangles are generated per (tetrahedron, sign-pattern) group, so
the cost scales with the number of active cells rather than the domain size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.viz.mesh import TriangleMesh

#: Corner offsets of a cell, indexed 0..7 (x, y, z).
_CORNER_OFFSETS = np.array(
    [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ],
    dtype=np.int64,
)

#: Decomposition of a cell into 6 tetrahedra sharing the main diagonal 0-6.
_TETRAHEDRA = np.array(
    [
        (0, 5, 1, 6),
        (0, 1, 2, 6),
        (0, 2, 3, 6),
        (0, 3, 7, 6),
        (0, 7, 4, 6),
        (0, 4, 5, 6),
    ],
    dtype=np.int64,
)


def _build_tet_cases() -> Dict[int, List[Tuple[Tuple[int, int], ...]]]:
    """Triangulation of a tetrahedron for each of the 16 inside/outside patterns.

    For a case (bitmask of which of the 4 tet corners are above the level),
    the value is a list of triangles; each triangle is 3 edges, and each edge
    is a pair of local corner indices (one above, one below) on which the
    isosurface vertex is interpolated.
    """
    cases: Dict[int, List[Tuple[Tuple[int, int], ...]]] = {}
    for case in range(16):
        inside = [i for i in range(4) if case & (1 << i)]
        outside = [i for i in range(4) if i not in inside]
        triangles: List[Tuple[Tuple[int, int], ...]] = []
        if len(inside) == 1:
            a = inside[0]
            edges = [(a, b) for b in outside]
            triangles.append((edges[0], edges[1], edges[2]))
        elif len(inside) == 3:
            a = outside[0]
            edges = [(b, a) for b in inside]
            triangles.append((edges[0], edges[1], edges[2]))
        elif len(inside) == 2:
            a, b = inside
            c, d = outside
            # Quad with corners on edges (a,c), (a,d), (b,d), (b,c); split it
            # along one diagonal.
            e_ac, e_ad, e_bd, e_bc = (a, c), (a, d), (b, d), (b, c)
            triangles.append((e_ac, e_ad, e_bd))
            triangles.append((e_ac, e_bd, e_bc))
        cases[case] = triangles
    return cases


_TET_CASES = _build_tet_cases()


def count_active_cells(field: np.ndarray, level: float) -> int:
    """Number of grid cells crossed by the ``level`` isosurface.

    This is the cheap load estimate used by the performance model: rendering
    cost is proportional to the number of active cells / emitted triangles.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if min(f.shape) < 2:
        return 0
    c = [f[:-1, :-1, :-1], f[1:, :-1, :-1], f[:-1, 1:, :-1], f[1:, 1:, :-1],
         f[:-1, :-1, 1:], f[1:, :-1, 1:], f[:-1, 1:, 1:], f[1:, 1:, 1:]]
    stacked_min = np.minimum.reduce(c)
    stacked_max = np.maximum.reduce(c)
    return int(np.count_nonzero((stacked_min < level) & (stacked_max >= level)))


def marching_cubes(
    field: np.ndarray,
    level: float,
    coords: Optional[Sequence[np.ndarray]] = None,
) -> TriangleMesh:
    """Extract the ``level`` isosurface of a 3-D scalar field.

    Parameters
    ----------
    field:
        3-D scalar array.
    level:
        Isovalue (e.g. 45 dBZ for the weak-echo-region surface).
    coords:
        Optional per-axis coordinate arrays (rectilinear grid); grid indices
        are used as coordinates when omitted.

    Returns
    -------
    TriangleMesh
        Triangle soup of the isosurface (vertices are not shared between
        triangles).
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if min(f.shape) < 2:
        return TriangleMesh()
    if coords is None:
        axes = [np.arange(n, dtype=np.float64) for n in f.shape]
    else:
        if len(coords) != 3:
            raise ValueError("coords must provide three axes")
        axes = [np.asarray(c, dtype=np.float64) for c in coords]
        for axis, (c, n) in enumerate(zip(axes, f.shape)):
            if c.ndim != 1 or c.size != n:
                raise ValueError(
                    f"coords[{axis}] must be 1-D of length {n}, got shape {c.shape}"
                )

    # 1. Locate active cells.
    corner_vals = [
        f[o[0] : f.shape[0] - 1 + o[0], o[1] : f.shape[1] - 1 + o[1], o[2] : f.shape[2] - 1 + o[2]]
        for o in _CORNER_OFFSETS
    ]
    cell_min = np.minimum.reduce(corner_vals)
    cell_max = np.maximum.reduce(corner_vals)
    active = np.argwhere((cell_min < level) & (cell_max >= level))
    if active.shape[0] == 0:
        return TriangleMesh()

    # 2. Gather per-active-cell corner values and positions.
    ci, cj, ck = active[:, 0], active[:, 1], active[:, 2]
    ncells = active.shape[0]
    values = np.empty((ncells, 8), dtype=np.float64)
    positions = np.empty((ncells, 8, 3), dtype=np.float64)
    for corner, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
        ii, jj, kk = ci + dx, cj + dy, ck + dz
        values[:, corner] = f[ii, jj, kk]
        positions[:, corner, 0] = axes[0][ii]
        positions[:, corner, 1] = axes[1][jj]
        positions[:, corner, 2] = axes[2][kk]

    # 3. Triangulate the six tetrahedra of every active cell.
    soup_parts: List[np.ndarray] = []
    for tet in _TETRAHEDRA:
        tet_vals = values[:, tet]           # (ncells, 4)
        tet_pos = positions[:, tet, :]      # (ncells, 4, 3)
        inside = (tet_vals > level).astype(np.int64)
        case_index = (
            inside[:, 0]
            | (inside[:, 1] << 1)
            | (inside[:, 2] << 2)
            | (inside[:, 3] << 3)
        )
        for case, triangles in _TET_CASES.items():
            if not triangles:
                continue
            mask = case_index == case
            if not np.any(mask):
                continue
            vals_c = tet_vals[mask]
            pos_c = tet_pos[mask]
            for tri_edges in triangles:
                tri_pts = np.empty((vals_c.shape[0], 3, 3), dtype=np.float64)
                for corner_slot, (ia, ib) in enumerate(tri_edges):
                    va = vals_c[:, ia]
                    vb = vals_c[:, ib]
                    denom = vb - va
                    # Edges always cross the level (one side above, one below),
                    # so the denominator is never exactly zero; guard anyway.
                    denom = np.where(np.abs(denom) < 1e-300, 1e-300, denom)
                    t = np.clip((level - va) / denom, 0.0, 1.0)
                    tri_pts[:, corner_slot, :] = (
                        pos_c[:, ia, :] + t[:, None] * (pos_c[:, ib, :] - pos_c[:, ia, :])
                    )
                soup_parts.append(tri_pts)

    if not soup_parts:
        return TriangleMesh()
    soup = np.concatenate(soup_parts, axis=0)
    # Drop degenerate triangles (zero area), which can appear when the level
    # coincides exactly with corner values.
    e1 = soup[:, 1] - soup[:, 0]
    e2 = soup[:, 2] - soup[:, 0]
    areas = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)
    soup = soup[areas > 1e-14]
    return TriangleMesh.from_triangle_soup(soup)
