"""Isosurface extraction.

The paper extracts the 45 dBZ isosurface with the marching cubes algorithm.
This implementation extracts the same surface by decomposing every grid cell
into six tetrahedra and triangulating each tetrahedron (marching tetrahedra).
The tetrahedral route produces the identical surface topology up to the usual
ambiguity-resolution differences of classic marching cubes, avoids the
ambiguous-case problems of the 256-entry table, and — importantly for this
reproduction — yields the same *load structure*: the number of emitted
triangles is proportional to the number of grid cells crossed by the
isosurface, which is what drives per-process rendering time.

The extraction is vectorised: candidate cells are detected with array min/max
tests, and triangles are generated per (tetrahedron, sign-pattern) group, so
the cost scales with the number of active cells rather than the domain size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.viz.mesh import TriangleMesh

#: Corner offsets of a cell, indexed 0..7 (x, y, z).
_CORNER_OFFSETS = np.array(
    [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ],
    dtype=np.int64,
)

#: Decomposition of a cell into 6 tetrahedra sharing the main diagonal 0-6.
_TETRAHEDRA = np.array(
    [
        (0, 5, 1, 6),
        (0, 1, 2, 6),
        (0, 2, 3, 6),
        (0, 3, 7, 6),
        (0, 7, 4, 6),
        (0, 4, 5, 6),
    ],
    dtype=np.int64,
)


def _build_tet_cases() -> Dict[int, List[Tuple[Tuple[int, int], ...]]]:
    """Triangulation of a tetrahedron for each of the 16 inside/outside patterns.

    For a case (bitmask of which of the 4 tet corners are above the level),
    the value is a list of triangles; each triangle is 3 edges, and each edge
    is a pair of local corner indices (one above, one below) on which the
    isosurface vertex is interpolated.
    """
    cases: Dict[int, List[Tuple[Tuple[int, int], ...]]] = {}
    for case in range(16):
        inside = [i for i in range(4) if case & (1 << i)]
        outside = [i for i in range(4) if i not in inside]
        triangles: List[Tuple[Tuple[int, int], ...]] = []
        if len(inside) == 1:
            a = inside[0]
            edges = [(a, b) for b in outside]
            triangles.append((edges[0], edges[1], edges[2]))
        elif len(inside) == 3:
            a = outside[0]
            edges = [(b, a) for b in inside]
            triangles.append((edges[0], edges[1], edges[2]))
        elif len(inside) == 2:
            a, b = inside
            c, d = outside
            # Quad with corners on edges (a,c), (a,d), (b,d), (b,c); split it
            # along one diagonal.
            e_ac, e_ad, e_bd, e_bc = (a, c), (a, d), (b, d), (b, c)
            triangles.append((e_ac, e_ad, e_bd))
            triangles.append((e_ac, e_bd, e_bc))
        cases[case] = triangles
    return cases


_TET_CASES = _build_tet_cases()


def _active_cell_mask(f: np.ndarray, level: float) -> np.ndarray:
    """Boolean mask of the cells crossed by the ``level`` isosurface.

    ``f`` must already be a 3-D float64 array with every axis >= 2.  The mask
    is the single source of truth for cell activity: the counting helpers and
    the mesh extractor all derive from it, so their cell counts can never
    disagree.
    """
    c = [f[:-1, :-1, :-1], f[1:, :-1, :-1], f[:-1, 1:, :-1], f[1:, 1:, :-1],
         f[:-1, :-1, 1:], f[1:, :-1, 1:], f[:-1, 1:, 1:], f[1:, 1:, 1:]]
    stacked_min = np.minimum.reduce(c)
    stacked_max = np.maximum.reduce(c)
    return (stacked_min < level) & (stacked_max >= level)


def count_active_cells(field: np.ndarray, level: float) -> int:
    """Number of grid cells crossed by the ``level`` isosurface.

    This is the cheap load estimate used by the performance model: rendering
    cost is proportional to the number of active cells / emitted triangles.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if min(f.shape) < 2:
        return 0
    return int(np.count_nonzero(_active_cell_mask(f, level)))


def count_active_cells_batch(batch: np.ndarray, level: float) -> np.ndarray:
    """Per-block active-cell counts of a stacked ``(nblocks, sx, sy, sz)`` batch.

    Vectorised counterpart of :func:`count_active_cells`: one min/max pass
    over the stacked batch instead of one Python call per block.  Every entry
    is bitwise identical to ``count_active_cells(batch[i], level)`` — the
    comparisons are the same exact float64 min/max tests, only carried out
    with a leading block axis — so the batched rendering backends cannot
    perturb any count-derived decision.
    """
    arr = np.asarray(batch)
    if arr.ndim != 4:
        raise ValueError(f"batch must be 4-D, got shape {arr.shape}")
    nblocks = arr.shape[0]
    if nblocks == 0 or min(arr.shape[1:]) < 2:
        return np.zeros(nblocks, dtype=np.int64)
    level = float(level)
    if arr.dtype != np.float32:
        arr = np.asarray(arr, dtype=np.float64)
    # Separable per-axis reduction: 3 ufunc calls (on shrinking
    # intermediates) instead of 7 over the 8 corner views.  min/max select
    # values exactly, so the cell minima/maxima — and therefore the counts —
    # are bitwise identical to the 8-corner float64 reduction the scalar
    # :func:`_active_cell_mask` performs.  float32 payloads stay in float32
    # (the float32→float64 cast is value-preserving, so the selected
    # extrema are the same numbers); the level comparisons then happen in
    # float32 only when ``level`` is exactly representable there, otherwise
    # the (much smaller) cell extrema are promoted to float64 first.
    cell_min = np.minimum(arr[:, :-1], arr[:, 1:])
    cell_max = np.maximum(arr[:, :-1], arr[:, 1:])
    cell_min = np.minimum(cell_min[:, :, :-1], cell_min[:, :, 1:])
    cell_max = np.maximum(cell_max[:, :, :-1], cell_max[:, :, 1:])
    cell_min = np.minimum(cell_min[:, :, :, :-1], cell_min[:, :, :, 1:])
    cell_max = np.maximum(cell_max[:, :, :, :-1], cell_max[:, :, :, 1:])
    if cell_min.dtype == np.float32 and float(np.float32(level)) != level:
        cell_min = cell_min.astype(np.float64)
        cell_max = cell_max.astype(np.float64)
    active = (cell_min < cell_min.dtype.type(level)) & (
        cell_max >= cell_max.dtype.type(level)
    )
    return np.count_nonzero(active, axis=(1, 2, 3)).astype(np.int64)


def extract_isosurface(
    field: np.ndarray,
    level: float,
    coords: Optional[Sequence[np.ndarray]] = None,
) -> Tuple[TriangleMesh, int]:
    """Extract the ``level`` isosurface and count the crossed cells in one pass.

    Identical to :func:`marching_cubes` but also returns the number of active
    (isosurface-crossing) cells from the *same* detection pass, so callers that
    need both the geometry and the cell count — the isosurface rendering
    scripts do — scan the field once instead of twice.  The count is bitwise
    identical to :func:`count_active_cells` (both derive from
    :func:`_active_cell_mask`).

    Returns
    -------
    (mesh, active_cells)
        Triangle soup of the isosurface plus the active-cell count.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if min(f.shape) < 2:
        return TriangleMesh(), 0
    if coords is None:
        axes = [np.arange(n, dtype=np.float64) for n in f.shape]
    else:
        if len(coords) != 3:
            raise ValueError("coords must provide three axes")
        axes = [np.asarray(c, dtype=np.float64) for c in coords]
        for axis, (c, n) in enumerate(zip(axes, f.shape)):
            if c.ndim != 1 or c.size != n:
                raise ValueError(
                    f"coords[{axis}] must be 1-D of length {n}, got shape {c.shape}"
                )

    # 1. Locate active cells (the one and only detection pass).
    active = np.argwhere(_active_cell_mask(f, level))
    ncells_active = int(active.shape[0])
    if ncells_active == 0:
        return TriangleMesh(), 0

    # 2. Gather per-active-cell corner values and positions.
    ci, cj, ck = active[:, 0], active[:, 1], active[:, 2]
    ncells = active.shape[0]
    values = np.empty((ncells, 8), dtype=np.float64)
    positions = np.empty((ncells, 8, 3), dtype=np.float64)
    for corner, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
        ii, jj, kk = ci + dx, cj + dy, ck + dz
        values[:, corner] = f[ii, jj, kk]
        positions[:, corner, 0] = axes[0][ii]
        positions[:, corner, 1] = axes[1][jj]
        positions[:, corner, 2] = axes[2][kk]

    # 3. Triangulate the six tetrahedra of every active cell.
    soup_parts: List[np.ndarray] = []
    for tet in _TETRAHEDRA:
        tet_vals = values[:, tet]           # (ncells, 4)
        tet_pos = positions[:, tet, :]      # (ncells, 4, 3)
        inside = (tet_vals > level).astype(np.int64)
        case_index = (
            inside[:, 0]
            | (inside[:, 1] << 1)
            | (inside[:, 2] << 2)
            | (inside[:, 3] << 3)
        )
        for case, triangles in _TET_CASES.items():
            if not triangles:
                continue
            mask = case_index == case
            if not np.any(mask):
                continue
            vals_c = tet_vals[mask]
            pos_c = tet_pos[mask]
            for tri_edges in triangles:
                tri_pts = np.empty((vals_c.shape[0], 3, 3), dtype=np.float64)
                for corner_slot, (ia, ib) in enumerate(tri_edges):
                    va = vals_c[:, ia]
                    vb = vals_c[:, ib]
                    denom = vb - va
                    # Edges always cross the level (one side above, one below),
                    # so the denominator is never exactly zero; guard anyway.
                    denom = np.where(np.abs(denom) < 1e-300, 1e-300, denom)
                    t = np.clip((level - va) / denom, 0.0, 1.0)
                    tri_pts[:, corner_slot, :] = (
                        pos_c[:, ia, :] + t[:, None] * (pos_c[:, ib, :] - pos_c[:, ia, :])
                    )
                soup_parts.append(tri_pts)

    if not soup_parts:
        return TriangleMesh(), ncells_active
    soup = np.concatenate(soup_parts, axis=0)
    # Drop degenerate triangles (zero area), which can appear when the level
    # coincides exactly with corner values.
    e1 = soup[:, 1] - soup[:, 0]
    e2 = soup[:, 2] - soup[:, 0]
    areas = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)
    soup = soup[areas > 1e-14]
    return TriangleMesh.from_triangle_soup(soup), ncells_active


def marching_cubes(
    field: np.ndarray,
    level: float,
    coords: Optional[Sequence[np.ndarray]] = None,
) -> TriangleMesh:
    """Extract the ``level`` isosurface of a 3-D scalar field.

    Parameters
    ----------
    field:
        3-D scalar array.
    level:
        Isovalue (e.g. 45 dBZ for the weak-echo-region surface).
    coords:
        Optional per-axis coordinate arrays (rectilinear grid); grid indices
        are used as coordinates when omitted.

    Returns
    -------
    TriangleMesh
        Triangle soup of the isosurface (vertices are not shared between
        triangles).  Use :func:`extract_isosurface` to also obtain the
        active-cell count from the same detection pass.
    """
    return extract_isosurface(field, level, coords=coords)[0]
