"""Volume-rendering-style projections.

The paper's Figure 1(a,b) shows a volume rendering of the reflectivity.  Two
simple projections are provided: maximum-intensity projection and front-to-
back alpha compositing along a principal axis.  Both are fully vectorised and
serve the example scripts and the Figure 1 reproduction; the expensive
scenario the adaptive pipeline controls remains the isosurface rendering.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def volume_max_projection(
    field: np.ndarray,
    axis: int = 2,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> np.ndarray:
    """Maximum-intensity projection of ``field`` along ``axis``, normalised to [0, 1]."""
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if not (0 <= axis <= 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    mip = f.max(axis=axis)
    lo = float(f.min()) if vmin is None else float(vmin)
    hi = float(f.max()) if vmax is None else float(vmax)
    if hi <= lo:
        return np.zeros_like(mip)
    return np.clip((mip - lo) / (hi - lo), 0.0, 1.0)


def composite_volume(
    field: np.ndarray,
    axis: int = 2,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    opacity_scale: float = 0.05,
) -> np.ndarray:
    """Front-to-back alpha compositing of ``field`` along ``axis``.

    Opacity of each sample is proportional to its normalised value, so quiet
    regions are transparent and the storm interior accumulates intensity —
    a cheap stand-in for the isosurface-based volume rendering in Figure 1.
    """
    if opacity_scale <= 0:
        raise ValueError(f"opacity_scale must be > 0, got {opacity_scale}")
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if not (0 <= axis <= 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    lo = float(f.min()) if vmin is None else float(vmin)
    hi = float(f.max()) if vmax is None else float(vmax)
    if hi <= lo:
        shape = list(f.shape)
        shape.pop(axis)
        return np.zeros(shape, dtype=np.float64)
    norm = np.clip((f - lo) / (hi - lo), 0.0, 1.0)
    # Move the compositing axis first for a simple front-to-back loop.
    moved = np.moveaxis(norm, axis, 0)
    accum_color = np.zeros(moved.shape[1:], dtype=np.float64)
    accum_alpha = np.zeros(moved.shape[1:], dtype=np.float64)
    for slab in moved:
        alpha = np.clip(slab * opacity_scale, 0.0, 1.0)
        weight = (1.0 - accum_alpha) * alpha
        accum_color += weight * slab
        accum_alpha += weight
        if np.all(accum_alpha > 0.995):
            break
    return np.clip(accum_color, 0.0, 1.0)
