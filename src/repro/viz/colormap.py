"""Colormaps for 2-D scalar images."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _normalise(values: np.ndarray, vmin: Optional[float], vmax: Optional[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    lo = float(arr.min()) if vmin is None else float(vmin)
    hi = float(arr.max()) if vmax is None else float(vmax)
    if hi <= lo:
        return np.zeros_like(arr)
    return np.clip((arr - lo) / (hi - lo), 0.0, 1.0)


def grayscale(
    values: np.ndarray, vmin: Optional[float] = None, vmax: Optional[float] = None
) -> np.ndarray:
    """Map a scalar array to greyscale intensities in [0, 1]."""
    return _normalise(values, vmin, vmax)


#: Control points (position, r, g, b) of a perceptually-ordered colormap
#: approximating viridis.
_VIRIDIS_POINTS = np.array(
    [
        (0.00, 0.267, 0.005, 0.329),
        (0.25, 0.229, 0.322, 0.546),
        (0.50, 0.128, 0.567, 0.551),
        (0.75, 0.369, 0.789, 0.383),
        (1.00, 0.993, 0.906, 0.144),
    ]
)


def viridis_like(
    values: np.ndarray, vmin: Optional[float] = None, vmax: Optional[float] = None
) -> np.ndarray:
    """Map a scalar array to RGB in [0, 1] with a viridis-like colormap.

    Returns an array of shape ``values.shape + (3,)``.
    """
    norm = _normalise(values, vmin, vmax)
    positions = _VIRIDIS_POINTS[:, 0]
    out = np.empty(norm.shape + (3,), dtype=np.float64)
    for c in range(3):
        out[..., c] = np.interp(norm, positions, _VIRIDIS_POINTS[:, c + 1])
    return out


def apply_colormap(
    values: np.ndarray,
    cmap: str = "gray",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> np.ndarray:
    """Apply a named colormap (``"gray"`` or ``"viridis"``) to a scalar array."""
    if cmap == "gray":
        return grayscale(values, vmin, vmax)
    if cmap == "viridis":
        return viridis_like(values, vmin, vmax)
    raise ValueError(f"unknown colormap {cmap!r}; available: 'gray', 'viridis'")
