"""Framebuffer: colour + depth targets and simple image output.

Images are written as binary PGM/PPM so that no imaging dependency is needed;
every common viewer (and NumPy itself) can read them back.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import numpy as np


class Framebuffer:
    """A z-buffered greyscale/colour render target.

    Attributes
    ----------
    width, height:
        Pixel dimensions.
    color:
        ``(height, width)`` float array in [0, 1] (greyscale intensity).
    depth:
        ``(height, width)`` float array of view-space depths (inf = empty).
    """

    def __init__(self, width: int, height: int, background: float = 0.0) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"framebuffer must be at least 1x1, got {width}x{height}")
        if not (0.0 <= background <= 1.0):
            raise ValueError(f"background must be in [0, 1], got {background}")
        self.width = int(width)
        self.height = int(height)
        self.background = float(background)
        self.color = np.full((self.height, self.width), self.background, dtype=np.float64)
        self.depth = np.full((self.height, self.width), np.inf, dtype=np.float64)

    def clear(self) -> None:
        """Reset colour and depth buffers."""
        self.color[:] = self.background
        self.depth[:] = np.inf

    @property
    def shape(self) -> Tuple[int, int]:
        """(height, width)."""
        return (self.height, self.width)

    def coverage(self) -> float:
        """Fraction of pixels covered by geometry (finite depth)."""
        return float(np.mean(np.isfinite(self.depth)))

    def to_uint8(self) -> np.ndarray:
        """Colour buffer as an 8-bit greyscale image."""
        return np.clip(self.color * 255.0, 0, 255).astype(np.uint8)

    # -- file output -----------------------------------------------------------

    def save_pgm(self, path: Path) -> Path:
        """Write the greyscale image as a binary PGM file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        img = self.to_uint8()
        header = f"P5\n{self.width} {self.height}\n255\n".encode()
        path.write_bytes(header + img.tobytes())
        return path

    @staticmethod
    def save_array_pgm(image: np.ndarray, path: Path) -> Path:
        """Write any 2-D array as a normalised binary PGM (utility for scoremaps)."""
        arr = np.asarray(image, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"image must be 2-D, got shape {arr.shape}")
        lo, hi = float(arr.min()), float(arr.max())
        if hi > lo:
            norm = (arr - lo) / (hi - lo)
        else:
            norm = np.zeros_like(arr)
        img = np.clip(norm * 255.0, 0, 255).astype(np.uint8)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode()
        path.write_bytes(header + img.tobytes())
        return path
