"""2-D colormap (slice) rendering — the fast visualization scenario of Fig. 1(c,d).

The colormap scenario extracts one horizontal level of the 3-D field and maps
it through a colormap.  The paper notes this scenario completes in about a
second even at full scale, which is why its adaptive machinery focuses on the
expensive isosurface scenario; the colormap is still used to show users where
each metric puts its high scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.viz.colormap import apply_colormap


def extract_slice(field: np.ndarray, level_index: Optional[int] = None, axis: int = 2) -> np.ndarray:
    """Extract a 2-D slice of a 3-D field along ``axis`` (default: horizontal slice).

    ``level_index`` defaults to the middle of the axis.
    """
    f = np.asarray(field)
    if f.ndim != 3:
        raise ValueError(f"field must be 3-D, got shape {f.shape}")
    if not (0 <= axis <= 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    n = f.shape[axis]
    idx = n // 2 if level_index is None else int(level_index)
    if not (0 <= idx < n):
        raise ValueError(f"level_index {idx} out of range [0, {n})")
    return np.take(f, idx, axis=axis)


def render_colormap_slice(
    field: np.ndarray,
    level_index: Optional[int] = None,
    axis: int = 2,
    cmap: str = "gray",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> np.ndarray:
    """Render a colormap image of one slice of ``field``.

    Returns a 2-D (grayscale) or 3-D (RGB) float array in [0, 1].
    """
    slab = extract_slice(field, level_index, axis)
    return apply_colormap(slab, cmap=cmap, vmin=vmin, vmax=vmax)
