"""A Catalyst-like in situ co-processing API.

ParaView Catalyst lets a simulation hand its data to "pipeline scripts" that
produce visualization output while the simulation runs.  This module provides
the same shape of API for the reproduction:

* :class:`IsosurfaceScript` — the expensive scenario of the paper: marching-
  cubes isosurface extraction of the reflectivity (45 dBZ by default) plus
  optional image rendering;
* :class:`ColormapScript` — the cheap 2-D colormap scenario;
* :class:`CatalystPipeline` — holds the scripts and exposes ``coprocess``,
  which one virtual rank calls per iteration with its list of blocks.

Every script returns a :class:`RenderResult` carrying the quantities the rest
of the system needs: per-block triangle counts (rendering load), active cell
counts, and optionally the extracted mesh / rendered image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.grid.block import Block
from repro.grid.reduction import reconstruct_block
from repro.utils.timer import Timer
from repro.viz.camera import Camera
from repro.viz.colormap import apply_colormap
from repro.viz.framebuffer import Framebuffer
from repro.viz.marching_cubes import count_active_cells, marching_cubes
from repro.viz.mesh import TriangleMesh
from repro.viz.rasterizer import rasterize_mesh

#: Average number of triangles emitted per isosurface-crossing cell by the
#: tetrahedral triangulation (used when running in counting mode).  Six
#: tetrahedra per cell emit one or two triangles each when crossed, which
#: averages out to roughly five triangles per active cell in practice.
TRIANGLES_PER_ACTIVE_CELL = 5.0


@dataclass
class RenderResult:
    """Output of one script for one rank and one iteration."""

    script_name: str
    iteration: int
    #: Number of payload points processed (reduced blocks contribute 8).
    npoints: int = 0
    #: Per-block triangle counts (isosurface scripts only).
    per_block_triangles: Dict[int, int] = field(default_factory=dict)
    #: Per-block isosurface-crossing cell counts.
    per_block_active_cells: Dict[int, int] = field(default_factory=dict)
    #: Extracted geometry, if the script was asked to keep it.
    mesh: Optional[TriangleMesh] = None
    #: Rendered image, if the script was asked to produce one.
    image: Optional[np.ndarray] = None
    #: Wall-clock seconds spent in the script (measured, not modelled).
    measured_seconds: float = 0.0

    @property
    def ntriangles(self) -> int:
        """Total triangles across the rank's blocks."""
        return int(sum(self.per_block_triangles.values()))

    @property
    def active_cells(self) -> int:
        """Total isosurface-crossing cells across the rank's blocks."""
        return int(sum(self.per_block_active_cells.values()))


class VisualizationScript:
    """Base class for Catalyst-style pipeline scripts."""

    name = "script"

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        """Process one rank's blocks for one iteration."""
        raise NotImplementedError


class IsosurfaceScript(VisualizationScript):
    """Isosurface extraction (and optional rendering) of a block list.

    Parameters
    ----------
    level:
        Isovalue; the paper uses 45 dBZ.
    mode:
        ``"mesh"`` extracts real geometry with marching cubes;
        ``"count"`` only counts isosurface-crossing cells (cheap load proxy
        used by the large virtual-rank experiments) and estimates the
        triangle count from it.
    render_image:
        When True (requires ``mode="mesh"``), rasterize the extracted mesh.
    image_size:
        (width, height) of the rendered image.
    """

    name = "isosurface"

    def __init__(
        self,
        level: float = 45.0,
        mode: str = "mesh",
        render_image: bool = False,
        image_size: tuple = (400, 300),
    ) -> None:
        if mode not in ("mesh", "count"):
            raise ValueError(f"mode must be 'mesh' or 'count', got {mode!r}")
        if render_image and mode != "mesh":
            raise ValueError("render_image requires mode='mesh'")
        self.level = float(level)
        self.mode = mode
        self.render_image = bool(render_image)
        self.image_size = (int(image_size[0]), int(image_size[1]))

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        result = RenderResult(script_name=self.name, iteration=iteration)
        meshes: List[TriangleMesh] = []
        with Timer() as timer:
            for block in blocks:
                # A reduced block is fed to the pipeline as its 8 corner
                # points spanning the original extent (this is what makes the
                # reduction save rendering time); a full block is fed as-is.
                data = np.asarray(block.data, dtype=np.float64)
                result.npoints += int(block.data.size)
                start, stop = block.extent.start, block.extent.stop
                if block.reduced:
                    coords = [
                        np.array([start[axis], max(stop[axis] - 1, start[axis] + 1)], dtype=np.float64)
                        for axis in range(3)
                    ]
                else:
                    coords = [
                        np.arange(start[axis], start[axis] + data.shape[axis], dtype=np.float64)
                        for axis in range(3)
                    ]
                cells = count_active_cells(data, self.level)
                if self.mode == "count":
                    result.per_block_active_cells[block.block_id] = cells
                    result.per_block_triangles[block.block_id] = int(
                        round(cells * TRIANGLES_PER_ACTIVE_CELL)
                    )
                    continue
                mesh = marching_cubes(data, self.level, coords=coords)
                result.per_block_active_cells[block.block_id] = cells
                result.per_block_triangles[block.block_id] = mesh.ntriangles
                meshes.append(mesh)
            if self.mode == "mesh":
                merged = TriangleMesh.merge(meshes)
                result.mesh = merged
                if self.render_image and not merged.is_empty:
                    lo, hi = merged.bounds()
                    camera = Camera.fit_bounds(lo, hi)
                    fb = Framebuffer(self.image_size[0], self.image_size[1])
                    rasterize_mesh(merged, camera, fb)
                    result.image = fb.to_uint8()
        result.measured_seconds = timer.elapsed
        return result


class ColormapScript(VisualizationScript):
    """2-D colormap of one horizontal level of the rank's blocks.

    The script produces a partial image covering the rank's blocks; the
    driver composites the per-rank images into the full-domain colormap.
    """

    name = "colormap"

    def __init__(
        self,
        level_index: int,
        global_shape: tuple,
        cmap: str = "gray",
        vmin: Optional[float] = None,
        vmax: Optional[float] = None,
    ) -> None:
        if len(global_shape) != 3:
            raise ValueError(f"global_shape must be 3 values, got {global_shape}")
        self.level_index = int(level_index)
        self.global_shape = tuple(int(v) for v in global_shape)
        if not (0 <= self.level_index < self.global_shape[2]):
            raise ValueError(
                f"level_index {level_index} out of range for shape {global_shape}"
            )
        self.cmap = cmap
        self.vmin = vmin
        self.vmax = vmax

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        result = RenderResult(script_name=self.name, iteration=iteration)
        nx, ny, _ = self.global_shape
        image = np.full((nx, ny), np.nan, dtype=np.float64)
        with Timer() as timer:
            for block in blocks:
                result.npoints += int(block.data.size)
                ext = block.extent
                if not (ext.start[2] <= self.level_index < ext.stop[2]):
                    continue
                data = reconstruct_block(block)
                local_k = self.level_index - ext.start[2]
                image[ext.slices[0], ext.slices[1]] = data[:, :, local_k]
            covered = ~np.isnan(image)
            if np.any(covered):
                filled = np.where(covered, image, np.nanmin(image[covered]))
                result.image = apply_colormap(
                    filled, cmap=self.cmap, vmin=self.vmin, vmax=self.vmax
                )
        result.measured_seconds = timer.elapsed
        return result


class CatalystPipeline:
    """Holds the visualization scripts a rank runs at every in situ phase."""

    def __init__(self, scripts: Optional[Sequence[VisualizationScript]] = None) -> None:
        self.scripts: List[VisualizationScript] = list(scripts) if scripts else []

    def add_script(self, script: VisualizationScript) -> None:
        """Register an additional script."""
        if not isinstance(script, VisualizationScript):
            raise TypeError(f"expected a VisualizationScript, got {type(script)!r}")
        self.scripts.append(script)

    def coprocess(self, blocks: Sequence[Block], iteration: int) -> List[RenderResult]:
        """Run every registered script over ``blocks`` (one rank's data)."""
        if not self.scripts:
            raise RuntimeError("no visualization scripts registered")
        return [script.process(blocks, iteration) for script in self.scripts]
