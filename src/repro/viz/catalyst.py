"""A Catalyst-like in situ co-processing API.

ParaView Catalyst lets a simulation hand its data to "pipeline scripts" that
produce visualization output while the simulation runs.  This module provides
the same shape of API for the reproduction:

* :class:`IsosurfaceScript` — the expensive scenario of the paper: marching-
  cubes isosurface extraction of the reflectivity (45 dBZ by default) plus
  optional image rendering;
* :class:`ColormapScript` — the cheap 2-D colormap scenario;
* :class:`CatalystPipeline` — holds the scripts and exposes ``coprocess``,
  which one virtual rank calls per iteration with its list of blocks.

Every script returns a :class:`RenderResult` carrying the quantities the rest
of the system needs: per-block triangle counts (rendering load), active cell
counts, and optionally the extracted mesh / rendered image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.batch import group_positions_by_shape
from repro.grid.block import Block, axis_sample_indices
from repro.grid.reduction import reconstruct_block
from repro.utils.timer import Timer
from repro.viz.camera import Camera
from repro.viz.colormap import apply_colormap
from repro.viz.framebuffer import Framebuffer
from repro.viz.marching_cubes import (
    count_active_cells,
    count_active_cells_batch,
    extract_isosurface,
)
from repro.viz.mesh import TriangleMesh
from repro.viz.rasterizer import rasterize_mesh

#: Average number of triangles emitted per isosurface-crossing cell by the
#: tetrahedral triangulation (used when running in counting mode).  Six
#: tetrahedra per cell emit one or two triangles each when crossed, which
#: averages out to roughly five triangles per active cell in practice.
TRIANGLES_PER_ACTIVE_CELL = 5.0


@dataclass
class RenderResult:
    """Output of one script for one rank and one iteration."""

    script_name: str
    iteration: int
    #: Number of payload points processed (reduced blocks contribute 8).
    npoints: int = 0
    #: Per-block triangle counts (isosurface scripts only).
    per_block_triangles: Dict[int, int] = field(default_factory=dict)
    #: Per-block isosurface-crossing cell counts.
    per_block_active_cells: Dict[int, int] = field(default_factory=dict)
    #: Extracted geometry, if the script was asked to keep it.
    mesh: Optional[TriangleMesh] = None
    #: Rendered image, if the script was asked to produce one.
    image: Optional[np.ndarray] = None
    #: Boolean mask of the image pixels this rank actually covers (partial
    #: images only, e.g. :class:`ColormapScript`); the compositing driver
    #: must only take covered pixels from each rank.
    coverage: Optional[np.ndarray] = None
    #: Wall-clock seconds spent in the script (measured, not modelled).
    measured_seconds: float = 0.0

    @property
    def ntriangles(self) -> int:
        """Total triangles across the rank's blocks."""
        return int(sum(self.per_block_triangles.values()))

    @property
    def active_cells(self) -> int:
        """Total isosurface-crossing cells across the rank's blocks."""
        return int(sum(self.per_block_active_cells.values()))


class VisualizationScript:
    """Base class for Catalyst-style pipeline scripts."""

    name = "script"

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        """Process one rank's blocks for one iteration."""
        raise NotImplementedError


class IsosurfaceScript(VisualizationScript):
    """Isosurface extraction (and optional rendering) of a block list.

    Parameters
    ----------
    level:
        Isovalue; the paper uses 45 dBZ.
    mode:
        ``"mesh"`` extracts real geometry with marching cubes;
        ``"count"`` only counts isosurface-crossing cells (cheap load proxy
        used by the large virtual-rank experiments) and estimates the
        triangle count from it.
    render_image:
        When True (requires ``mode="mesh"``), rasterize the extracted mesh.
    image_size:
        (width, height) of the rendered image.
    """

    name = "isosurface"

    def __init__(
        self,
        level: float = 45.0,
        mode: str = "mesh",
        render_image: bool = False,
        image_size: tuple = (400, 300),
    ) -> None:
        if mode not in ("mesh", "count"):
            raise ValueError(f"mode must be 'mesh' or 'count', got {mode!r}")
        if render_image and mode != "mesh":
            raise ValueError("render_image requires mode='mesh'")
        self.level = float(level)
        self.mode = mode
        self.render_image = bool(render_image)
        self.image_size = (int(image_size[0]), int(image_size[1]))

    # -- per-block helpers (shared by every rendering backend) ---------------

    def block_coords(self, block: Block, data_shape: Sequence[int]) -> List[np.ndarray]:
        """Per-axis global coordinates of one block's payload points.

        A reduced block is fed to the pipeline as its retained sample points
        spanning the original extent (this is what makes the reduction save
        rendering time): the corner rung (level 2) contributes its 8 corners,
        the strided rung (level 1) every retained sample
        (:func:`~repro.grid.block.axis_sample_indices` per axis); a full
        block is fed as-is.  The high sample of every reduced axis sits on
        the last point *inside* the half-open extent, ``stop - 1`` (>=
        ``start`` for every valid extent): a length-1 axis yields a flat
        coordinate pair whose degenerate geometry the extractor drops,
        instead of shifting the isosurface outside the block's extent.
        """
        start, stop = block.extent.start, block.extent.stop
        if block.level == 2:
            return [
                np.array([start[axis], stop[axis] - 1], dtype=np.float64)
                for axis in range(3)
            ]
        if block.level == 1:
            return [
                start[axis]
                + np.asarray(
                    axis_sample_indices(block.extent.shape[axis]), dtype=np.float64
                )
                for axis in range(3)
            ]
        return [
            np.arange(start[axis], start[axis] + data_shape[axis], dtype=np.float64)
            for axis in range(3)
        ]

    def extract_block(self, block: Block) -> tuple:
        """Extract one block's isosurface: ``(mesh, active_cells)``.

        Geometry and cell count come from a single detection pass over the
        payload (:func:`~repro.viz.marching_cubes.extract_isosurface`).
        """
        data = np.asarray(block.data, dtype=np.float64)
        mesh, cells = extract_isosurface(
            data, self.level, coords=self.block_coords(block, data.shape)
        )
        return mesh, int(cells)

    def count_blocks_batched(self, blocks: Sequence[Block]) -> np.ndarray:
        """Active-cell counts of ``blocks``, in block order, via stacked batches.

        The blocks are grouped by payload shape/dtype — the
        :class:`~repro.grid.batch.BlockBatch` grouping; all reduced 2×2×2
        blocks form one stacked group — and each group's payloads are stacked
        into one ``(nblocks, sx, sy, sz)`` array counted with a single
        vectorised :func:`~repro.viz.marching_cubes.count_active_cells_batch`
        pass.  Like the vectorised scoring step, the hot path stacks only the
        payloads and skips the batch metadata arrays (use
        :func:`~repro.grid.batch.partition_by_shape` when a full
        :class:`~repro.grid.batch.BlockBatch` is needed).  Counts are bitwise
        identical to per-block
        :func:`~repro.viz.marching_cubes.count_active_cells` calls.
        """
        counts = np.zeros(len(blocks), dtype=np.int64)
        for indices in group_positions_by_shape(blocks):
            stacked = np.stack([blocks[i].data for i in indices])
            counts[indices] = count_active_cells_batch(stacked, self.level)
        return counts

    def record_count(self, result: RenderResult, block_id: int, cells: int) -> None:
        """Record one block's counting-mode load estimate."""
        cells = int(cells)
        result.per_block_active_cells[block_id] = cells
        result.per_block_triangles[block_id] = int(
            round(cells * TRIANGLES_PER_ACTIVE_CELL)
        )

    def finalize_mesh(self, result: RenderResult, meshes: Sequence[TriangleMesh]) -> None:
        """Merge per-block meshes (in block order) and optionally rasterize."""
        merged = TriangleMesh.merge(meshes)
        result.mesh = merged
        if self.render_image and not merged.is_empty:
            lo, hi = merged.bounds()
            camera = Camera.fit_bounds(lo, hi)
            fb = Framebuffer(self.image_size[0], self.image_size[1])
            rasterize_mesh(merged, camera, fb)
            result.image = fb.to_uint8()

    # -- entry points --------------------------------------------------------

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        """Reference per-block loop (the serial rendering backend)."""
        result = RenderResult(script_name=self.name, iteration=iteration)
        meshes: List[TriangleMesh] = []
        with Timer() as timer:
            for block in blocks:
                result.npoints += int(block.data.size)
                if self.mode == "count":
                    cells = count_active_cells(
                        np.asarray(block.data, dtype=np.float64), self.level
                    )
                    self.record_count(result, block.block_id, cells)
                    continue
                mesh, cells = self.extract_block(block)
                result.per_block_active_cells[block.block_id] = cells
                result.per_block_triangles[block.block_id] = mesh.ntriangles
                meshes.append(mesh)
            if self.mode == "mesh":
                self.finalize_mesh(result, meshes)
        result.measured_seconds = timer.elapsed
        return result

    def process_batch(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        """Batched counterpart of :meth:`process` (the vectorised backend).

        Counting mode replaces the per-block Python loop with one
        shape-grouped :meth:`count_blocks_batched` pass; every recorded count
        and triangle estimate is bitwise identical to :meth:`process`'s.
        Mesh mode extracts real per-block geometry, which cannot be stacked,
        so it delegates to the reference loop (itself a single detection pass
        per block).
        """
        if self.mode != "count":
            return self.process(blocks, iteration)
        result = RenderResult(script_name=self.name, iteration=iteration)
        with Timer() as timer:
            if blocks:
                counts = self.count_blocks_batched(blocks)
                for block, cells in zip(blocks, counts):
                    result.npoints += int(block.data.size)
                    self.record_count(result, block.block_id, cells)
        result.measured_seconds = timer.elapsed
        return result


class ColormapScript(VisualizationScript):
    """2-D colormap of one horizontal level of the rank's blocks.

    The script produces a partial image covering the rank's blocks; the
    driver composites the per-rank images into the full-domain colormap
    (``RenderResult.coverage`` marks the pixels each rank owns).

    Colormap bounds are part of the *global* contract: every rank must
    normalise with the same ``vmin``/``vmax``, otherwise the composited image
    is inconsistent across rank boundaries (the same physical value maps to
    different colors on different ranks).  Pass both bounds at construction,
    or call :meth:`fit_bounds` once with *all* ranks' blocks before
    processing; :meth:`process` refuses to run with unset bounds.
    """

    name = "colormap"

    def __init__(
        self,
        level_index: int,
        global_shape: tuple,
        cmap: str = "gray",
        vmin: Optional[float] = None,
        vmax: Optional[float] = None,
    ) -> None:
        if len(global_shape) != 3:
            raise ValueError(f"global_shape must be 3 values, got {global_shape}")
        self.level_index = int(level_index)
        self.global_shape = tuple(int(v) for v in global_shape)
        if not (0 <= self.level_index < self.global_shape[2]):
            raise ValueError(
                f"level_index {level_index} out of range for shape {global_shape}"
            )
        self.cmap = cmap
        self.vmin = vmin
        self.vmax = vmax

    def _block_slab(self, block: Block) -> Optional[np.ndarray]:
        """The block's 2-D slab at ``level_index``, or None if not covered."""
        ext = block.extent
        if not (ext.start[2] <= self.level_index < ext.stop[2]):
            return None
        data = reconstruct_block(block)
        return data[:, :, self.level_index - ext.start[2]]

    def fit_bounds(
        self, per_rank_blocks: Sequence[Sequence[Block]]
    ) -> Tuple[float, float]:
        """Compute global colormap bounds from *all* ranks' blocks.

        Scans every block's rendered slab at ``level_index`` and fills any
        unset ``vmin``/``vmax`` with the global minimum/maximum (explicitly
        passed bounds are kept).  This is the collective every compositing
        driver must run once per colormap before the per-rank
        :meth:`process` calls — the per-rank alternative (each rank
        normalising with its own min/max) breaks the composited image at
        rank boundaries.
        """
        lo, hi = np.inf, -np.inf
        for blocks in per_rank_blocks:
            for block in blocks:
                slab = self._block_slab(block)
                if slab is None:
                    continue
                lo = min(lo, float(slab.min()))
                hi = max(hi, float(slab.max()))
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise ValueError(
                f"no block covers level_index {self.level_index}; cannot fit "
                "colormap bounds"
            )
        if self.vmin is None:
            self.vmin = lo
        if self.vmax is None:
            self.vmax = hi
        return float(self.vmin), float(self.vmax)

    def process(self, blocks: Sequence[Block], iteration: int) -> RenderResult:
        if self.vmin is None or self.vmax is None:
            raise RuntimeError(
                "ColormapScript requires global colormap bounds: pass vmin/vmax "
                "at construction or call fit_bounds(per_rank_blocks) over all "
                "ranks' blocks first (per-rank normalisation would make the "
                "composited colormap inconsistent across rank boundaries)"
            )
        result = RenderResult(script_name=self.name, iteration=iteration)
        nx, ny, _ = self.global_shape
        image = np.full((nx, ny), np.nan, dtype=np.float64)
        with Timer() as timer:
            for block in blocks:
                result.npoints += int(block.data.size)
                slab = self._block_slab(block)
                if slab is None:
                    continue
                ext = block.extent
                image[ext.slices[0], ext.slices[1]] = slab
            covered = ~np.isnan(image)
            result.coverage = covered
            if np.any(covered):
                # Uncovered pixels get the colormap floor; the compositing
                # driver replaces them with other ranks' covered pixels.
                filled = np.where(covered, image, float(self.vmin))
                result.image = apply_colormap(
                    filled, cmap=self.cmap, vmin=self.vmin, vmax=self.vmax
                )
        result.measured_seconds = timer.elapsed
        return result


class CatalystPipeline:
    """Holds the visualization scripts a rank runs at every in situ phase."""

    def __init__(self, scripts: Optional[Sequence[VisualizationScript]] = None) -> None:
        self.scripts: List[VisualizationScript] = list(scripts) if scripts else []

    def add_script(self, script: VisualizationScript) -> None:
        """Register an additional script."""
        if not isinstance(script, VisualizationScript):
            raise TypeError(f"expected a VisualizationScript, got {type(script)!r}")
        self.scripts.append(script)

    def coprocess(self, blocks: Sequence[Block], iteration: int) -> List[RenderResult]:
        """Run every registered script over ``blocks`` (one rank's data)."""
        if not self.scripts:
            raise RuntimeError("no visualization scripts registered")
        return [script.process(blocks, iteration) for script in self.scripts]
