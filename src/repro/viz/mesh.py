"""Triangle meshes produced by isosurface extraction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(nvertices, 3)`` float64 array of vertex positions.
    triangles:
        ``(ntriangles, 3)`` int64 array of vertex indices.
    """

    vertices: np.ndarray = field(default_factory=lambda: np.zeros((0, 3), dtype=np.float64))
    triangles: np.ndarray = field(default_factory=lambda: np.zeros((0, 3), dtype=np.int64))

    def __post_init__(self) -> None:
        v = np.asarray(self.vertices, dtype=np.float64)
        t = np.asarray(self.triangles, dtype=np.int64)
        if v.ndim != 2 or (v.size and v.shape[1] != 3):
            raise ValueError(f"vertices must have shape (n, 3), got {v.shape}")
        if t.ndim != 2 or (t.size and t.shape[1] != 3):
            raise ValueError(f"triangles must have shape (m, 3), got {t.shape}")
        if t.size and (t.min() < 0 or t.max() >= len(v)):
            raise ValueError("triangle indices out of range")
        self.vertices = v.reshape(-1, 3)
        self.triangles = t.reshape(-1, 3)

    # -- basic queries -------------------------------------------------------

    @property
    def nvertices(self) -> int:
        """Number of vertices."""
        return int(self.vertices.shape[0])

    @property
    def ntriangles(self) -> int:
        """Number of triangles (the quantity that drives rendering cost)."""
        return int(self.triangles.shape[0])

    @property
    def is_empty(self) -> bool:
        """True if the mesh has no triangles."""
        return self.ntriangles == 0

    def triangle_vertices(self) -> np.ndarray:
        """``(ntriangles, 3, 3)`` array of the vertex positions of each triangle."""
        if self.is_empty:
            return np.zeros((0, 3, 3), dtype=np.float64)
        return self.vertices[self.triangles]

    def triangle_normals(self, normalise: bool = True) -> np.ndarray:
        """Per-triangle normals (direction of the cross product of two edges)."""
        tv = self.triangle_vertices()
        if tv.shape[0] == 0:
            return np.zeros((0, 3), dtype=np.float64)
        e1 = tv[:, 1] - tv[:, 0]
        e2 = tv[:, 2] - tv[:, 0]
        normals = np.cross(e1, e2)
        if normalise:
            norms = np.linalg.norm(normals, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            normals = normals / norms
        return normals

    def triangle_areas(self) -> np.ndarray:
        """Per-triangle areas."""
        tv = self.triangle_vertices()
        if tv.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        e1 = tv[:, 1] - tv[:, 0]
        e2 = tv[:, 2] - tv[:, 0]
        return 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)

    def area(self) -> float:
        """Total surface area."""
        return float(self.triangle_areas().sum())

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """(min_corner, max_corner) of the vertex cloud (zeros when empty)."""
        if self.nvertices == 0:
            zero = np.zeros(3, dtype=np.float64)
            return zero, zero.copy()
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_triangle_soup(cls, soup: np.ndarray) -> "TriangleMesh":
        """Build a mesh from an ``(ntriangles, 3, 3)`` array of vertex positions.

        Vertices are not merged (each triangle keeps its own three vertices) —
        sufficient for rendering, load accounting, and area computations.
        """
        soup = np.asarray(soup, dtype=np.float64)
        if soup.ndim != 3 or soup.shape[1:] != (3, 3):
            raise ValueError(f"soup must have shape (n, 3, 3), got {soup.shape}")
        n = soup.shape[0]
        vertices = soup.reshape(n * 3, 3)
        triangles = np.arange(n * 3, dtype=np.int64).reshape(n, 3)
        return cls(vertices=vertices, triangles=triangles)

    @classmethod
    def merge(cls, meshes: Iterable["TriangleMesh"]) -> "TriangleMesh":
        """Concatenate several meshes into one."""
        verts: List[np.ndarray] = []
        tris: List[np.ndarray] = []
        offset = 0
        for mesh in meshes:
            if mesh.nvertices == 0:
                continue
            verts.append(mesh.vertices)
            tris.append(mesh.triangles + offset)
            offset += mesh.nvertices
        if not verts:
            return cls()
        return cls(vertices=np.vstack(verts), triangles=np.vstack(tris))

    def translated(self, offset: np.ndarray) -> "TriangleMesh":
        """Return a copy of the mesh translated by ``offset`` (3-vector)."""
        offset = np.asarray(offset, dtype=np.float64).reshape(3)
        return TriangleMesh(vertices=self.vertices + offset, triangles=self.triangles.copy())
