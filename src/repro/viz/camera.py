"""A minimal pinhole camera for the software rasterizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


def _normalise(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v)
    if norm == 0:
        raise ValueError("cannot normalise a zero vector")
    return v / norm


@dataclass
class Camera:
    """A look-at pinhole camera.

    Attributes
    ----------
    position:
        Camera position in world coordinates.
    target:
        Point the camera looks at.
    up:
        Approximate up direction.
    fov_degrees:
        Vertical field of view.
    near:
        Near-plane distance; geometry closer than this is discarded.
    """

    position: np.ndarray
    target: np.ndarray
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 1.0]))
    fov_degrees: float = 45.0
    near: float = 1e-3

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64).reshape(3)
        self.target = np.asarray(self.target, dtype=np.float64).reshape(3)
        self.up = np.asarray(self.up, dtype=np.float64).reshape(3)
        if not (0.0 < self.fov_degrees < 180.0):
            raise ValueError(f"fov_degrees must be in (0, 180), got {self.fov_degrees}")
        if self.near <= 0:
            raise ValueError(f"near must be > 0, got {self.near}")
        if np.allclose(self.position, self.target):
            raise ValueError("camera position and target coincide")

    # -- view basis ------------------------------------------------------------

    def basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the (right, up, forward) orthonormal camera basis."""
        forward = _normalise(self.target - self.position)
        right = np.cross(forward, self.up)
        if np.linalg.norm(right) < 1e-12:
            # Up is parallel to the view direction; pick any perpendicular.
            alt = np.array([1.0, 0.0, 0.0])
            if abs(forward[0]) > 0.9:
                alt = np.array([0.0, 1.0, 0.0])
            right = np.cross(forward, alt)
        right = _normalise(right)
        true_up = np.cross(right, forward)
        return right, true_up, forward

    # -- projection -------------------------------------------------------------

    def project(
        self, points: np.ndarray, width: int, height: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Project world-space ``points`` to pixel coordinates.

        Returns ``(pixels, depth)``: ``pixels`` is ``(n, 2)`` (x, y) in pixel
        units (not necessarily inside the viewport), ``depth`` is the distance
        along the viewing direction (used for z-buffering; points behind the
        near plane get ``inf`` depth so they are never drawn).
        """
        if width < 1 or height < 1:
            raise ValueError("viewport must be at least 1x1 pixel")
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        right, true_up, forward = self.basis()
        rel = pts - self.position
        x_cam = rel @ right
        y_cam = rel @ true_up
        z_cam = rel @ forward
        focal = 0.5 * height / np.tan(np.radians(self.fov_degrees) / 2.0)
        safe_z = np.where(z_cam > self.near, z_cam, np.inf)
        px = width / 2.0 + focal * x_cam / safe_z
        py = height / 2.0 - focal * y_cam / safe_z
        depth = np.where(z_cam > self.near, z_cam, np.inf)
        return np.stack([px, py], axis=1), depth

    # -- convenience -----------------------------------------------------------

    @classmethod
    def fit_bounds(
        cls,
        lo: np.ndarray,
        hi: np.ndarray,
        direction: np.ndarray = (1.0, -0.8, 0.5),
        fov_degrees: float = 45.0,
        margin: float = 1.4,
    ) -> "Camera":
        """Build a camera that frames the axis-aligned box [lo, hi]."""
        lo = np.asarray(lo, dtype=np.float64).reshape(3)
        hi = np.asarray(hi, dtype=np.float64).reshape(3)
        center = 0.5 * (lo + hi)
        radius = 0.5 * float(np.linalg.norm(hi - lo))
        if radius <= 0:
            radius = 1.0
        direction = _normalise(np.asarray(direction, dtype=np.float64).reshape(3))
        distance = margin * radius / np.tan(np.radians(fov_degrees) / 2.0)
        return cls(
            position=center - direction * distance,
            target=center,
            fov_degrees=fov_degrees,
        )
