"""Software triangle rasterizer (z-buffer + Lambert shading).

This is the "render the isosurface mesh" half of the paper's visualization
pipeline.  The rasterizer is deliberately simple — per-triangle bounding-box
scan with barycentric coverage tests, vectorised per triangle — because the
paper's argument depends only on rendering cost growing with the number of
mesh elements, which it does here as in any rasterizer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.viz.camera import Camera
from repro.viz.framebuffer import Framebuffer
from repro.viz.mesh import TriangleMesh


def rasterize_mesh(
    mesh: TriangleMesh,
    camera: Camera,
    framebuffer: Framebuffer,
    light_direction: Optional[np.ndarray] = None,
    ambient: float = 0.15,
) -> Framebuffer:
    """Rasterize ``mesh`` into ``framebuffer`` with Lambertian shading.

    Parameters
    ----------
    mesh:
        The triangle mesh (world coordinates).
    camera:
        Viewing camera.
    framebuffer:
        Render target (modified in place and returned).
    light_direction:
        Direction towards the light; defaults to the viewing direction
        (head-light).  Shading uses the absolute cosine so triangle winding
        does not matter.
    ambient:
        Ambient intensity floor in [0, 1).
    """
    if not (0.0 <= ambient < 1.0):
        raise ValueError(f"ambient must be in [0, 1), got {ambient}")
    if mesh.is_empty:
        return framebuffer

    width, height = framebuffer.width, framebuffer.height
    pixels, depth = camera.project(mesh.vertices, width, height)
    tv_pix = pixels[mesh.triangles]          # (ntri, 3, 2)
    tv_depth = depth[mesh.triangles]         # (ntri, 3)

    if light_direction is None:
        _, _, forward = camera.basis()
        light = forward
    else:
        light = np.asarray(light_direction, dtype=np.float64).reshape(3)
        norm = np.linalg.norm(light)
        if norm == 0:
            raise ValueError("light_direction must be non-zero")
        light = light / norm
    normals = mesh.triangle_normals()
    shades = ambient + (1.0 - ambient) * np.abs(normals @ light)

    color = framebuffer.color
    zbuf = framebuffer.depth

    finite = np.all(np.isfinite(tv_depth), axis=1)
    order = np.argsort([d.mean() for d in tv_depth])  # near-to-far not required; z-buffer handles it
    for idx in order:
        if not finite[idx]:
            continue
        tri = tv_pix[idx]
        zs = tv_depth[idx]
        min_x = max(int(np.floor(tri[:, 0].min())), 0)
        max_x = min(int(np.ceil(tri[:, 0].max())), width - 1)
        min_y = max(int(np.floor(tri[:, 1].min())), 0)
        max_y = min(int(np.ceil(tri[:, 1].max())), height - 1)
        if min_x > max_x or min_y > max_y:
            continue
        xs = np.arange(min_x, max_x + 1)
        ys = np.arange(min_y, max_y + 1)
        gx, gy = np.meshgrid(xs + 0.5, ys + 0.5)

        x0, y0 = tri[0]
        x1, y1 = tri[1]
        x2, y2 = tri[2]
        denom = (y1 - y2) * (x0 - x2) + (x2 - x1) * (y0 - y2)
        if abs(denom) < 1e-12:
            continue
        w0 = ((y1 - y2) * (gx - x2) + (x2 - x1) * (gy - y2)) / denom
        w1 = ((y2 - y0) * (gx - x2) + (x0 - x2) * (gy - y2)) / denom
        w2 = 1.0 - w0 - w1
        covered = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not np.any(covered):
            continue
        z = w0 * zs[0] + w1 * zs[1] + w2 * zs[2]
        zslice = zbuf[min_y : max_y + 1, min_x : max_x + 1]
        cslice = color[min_y : max_y + 1, min_x : max_x + 1]
        update = covered & (z < zslice)
        if not np.any(update):
            continue
        zslice[update] = z[update]
        cslice[update] = shades[idx]
    return framebuffer
