"""The stepping synthetic CM1 simulation.

:class:`CM1Simulation` alternates (as the real CM1 does) between a
"computation phase" — here, generating the next snapshot of the synthetic
storm — and an "I/O / in situ phase" where the produced
:class:`~repro.grid.domain.Domain` is handed to the visualization pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.cm1.config import CM1Config
from repro.cm1.dynamics import WindField
from repro.cm1.microphysics import Microphysics
from repro.cm1.reflectivity import reflectivity_dbz
from repro.cm1.state import ModelState
from repro.cm1.storm import make_storm
from repro.grid.domain import Domain
from repro.grid.rectilinear import RectilinearGrid


class CM1Simulation:
    """Generates a sequence of synthetic CM1 snapshots.

    Parameters
    ----------
    config:
        Run configuration.  ``config.fields`` selects which fields each
        snapshot carries; ``"dbz"`` is always present.

    Examples
    --------
    >>> sim = CM1Simulation(CM1Config.tiny())
    >>> domain = sim.snapshot(0)
    >>> sorted(domain.fields)
    ['dbz']
    """

    def __init__(self, config: Optional[CM1Config] = None) -> None:
        self.config = config or CM1Config()
        self.grid = RectilinearGrid.cm1_like(
            self.config.shape,
            horizontal_extent_km=self.config.horizontal_extent_km,
            vertical_extent_km=self.config.vertical_extent_km,
        )
        self.storm = make_storm(self.config.storm)
        self.microphysics = Microphysics(self.storm, seed=self.config.seed)
        self.wind = WindField(self.storm)
        self._mesh_cache: Optional[tuple] = None

    # -- coordinates -----------------------------------------------------------

    def _normalised_mesh(self) -> tuple:
        """Normalised coordinate mesh, cached (it never changes)."""
        if self._mesh_cache is None:
            x, y, z = self.grid.x, self.grid.y, self.grid.z

            def normalise(axis: np.ndarray) -> np.ndarray:
                span = axis[-1] - axis[0]
                if span <= 0:
                    return np.zeros_like(axis)
                return (axis - axis[0]) / span

            self._mesh_cache = np.meshgrid(
                normalise(x), normalise(y), normalise(z), indexing="ij"
            )
        return self._mesh_cache

    # -- snapshot generation ---------------------------------------------------------

    def model_iteration(self, snapshot_index: int) -> int:
        """Convert a snapshot index into the model's internal iteration counter."""
        if snapshot_index < 0:
            raise ValueError(f"snapshot_index must be >= 0, got {snapshot_index}")
        return self.config.start_iteration + snapshot_index * self.config.iteration_stride

    def state(self, snapshot_index: int) -> ModelState:
        """Compute the full model state for ``snapshot_index``."""
        xn, yn, zn = self._normalised_mesh()
        state = ModelState(
            iteration=self.model_iteration(snapshot_index), shape=self.config.shape
        )
        ratios = self.microphysics.mixing_ratios(xn, yn, zn, snapshot_index)
        dbz = reflectivity_dbz(ratios)
        state.add("dbz", dbz)
        wanted = set(self.config.fields)
        for name, arr in ratios.items():
            if name in wanted:
                state.add(name, arr)
        if wanted & {"u", "v", "w", "theta"}:
            winds = self.wind.winds(xn, yn, zn, snapshot_index)
            for name, arr in winds.items():
                if name in wanted:
                    state.add(name, arr)
        return state

    def snapshot(self, snapshot_index: int) -> Domain:
        """Produce the :class:`Domain` for ``snapshot_index``."""
        state = self.state(snapshot_index)
        fields: Dict[str, np.ndarray] = {
            name: state.get(name)
            for name in state.names()
            if name in self.config.fields
        }
        return Domain(grid=self.grid, fields=fields, iteration=state.iteration)

    def iterate(self, nsnapshots: int, start: int = 0) -> Iterator[Domain]:
        """Yield ``nsnapshots`` successive snapshots starting at ``start``."""
        if nsnapshots < 0:
            raise ValueError(f"nsnapshots must be >= 0, got {nsnapshots}")
        for i in range(start, start + nsnapshots):
            yield self.snapshot(i)
