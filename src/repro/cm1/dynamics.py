"""Synthetic wind and thermodynamic fields.

The paper mentions streamline visualization of wind vectors as one of the 3-D
scenarios scientists use (Section IV-B); the wind field here provides that
capability for the examples and for multivariate scoring.  The construction is
a storm-relative flow: low-level inflow, a rotating updraft column (Rankine
vortex) collocated with the mesocyclone, and upper-level outflow feeding the
anvil.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cm1.storm import SupercellStorm


class WindField:
    """Diagnoses (u, v, w) and buoyancy-related fields from the storm structure."""

    #: Peak updraft speed (m/s) — strong supercell updrafts reach 50+ m/s.
    W_MAX = 55.0
    #: Environmental low-level inflow speed (m/s).
    INFLOW = 12.0
    #: Peak tangential speed of the mesocyclone (m/s).
    V_ROT = 35.0
    #: Peak potential-temperature perturbation in the updraft core (K).
    THETA_MAX = 8.0

    def __init__(self, storm: SupercellStorm) -> None:
        self.storm = storm

    def winds(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> Dict[str, np.ndarray]:
        """Return ``{"u", "v", "w", "theta"}`` on the normalised mesh."""
        geo = self.storm.geometry(iteration)
        env = self.storm.envelopes(xn, yn, zn, iteration)
        cx, cy = geo.center
        r_core = max(geo.radius * 0.45, 1e-6)

        dx = xn - cx
        dy = yn - cy
        rho = np.sqrt(dx**2 + dy**2)

        # Rankine vortex: solid-body rotation inside r_core, 1/r decay outside.
        with np.errstate(divide="ignore", invalid="ignore"):
            tangential = np.where(
                rho <= r_core,
                self.V_ROT * rho / r_core,
                self.V_ROT * r_core / np.maximum(rho, 1e-12),
            )
        # Rotation confined to low/mid levels, scaled by storm intensity.
        rot_profile = np.exp(-((zn / 0.5) ** 2)) * geo.intensity
        with np.errstate(divide="ignore", invalid="ignore"):
            ct = np.where(rho > 1e-12, dx / np.maximum(rho, 1e-12), 0.0)
            st = np.where(rho > 1e-12, dy / np.maximum(rho, 1e-12), 0.0)
        u_rot = -tangential * st * rot_profile
        v_rot = tangential * ct * rot_profile

        # Environmental inflow: easterly at low levels veering with height.
        u_env = -self.INFLOW * np.exp(-((zn / 0.3) ** 2)) + 18.0 * zn
        v_env = 6.0 * np.sin(np.pi * zn)

        # Updraft and compensating anvil outflow.
        w = self.W_MAX * env["updraft"]
        u_out = 20.0 * env["anvil"]

        theta = self.THETA_MAX * env["updraft"]

        return {
            "u": u_rot + u_env + u_out,
            "v": v_rot + v_env,
            "w": w,
            "theta": theta,
        }
