"""Synthetic microphysics: hydrometeor mixing ratios from storm envelopes.

Real CM1 predicts rain, snow, graupel/hail mixing ratios through a bulk
microphysics scheme.  Here the mixing ratios are *diagnosed* from the storm
envelope functions plus seeded, band-limited turbulence, calibrated so that
the resulting reflectivity spans the physical dBZ range and is spatially
turbulent inside the storm (high entropy / variance / poor compressibility)
and quiet outside — which is what the scoring metrics key on.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import ndimage

from repro.cm1.config import StormConfig
from repro.cm1.storm import SupercellStorm
from repro.utils.random import derive_seed, rng_from_seed


def correlated_noise(
    shape: Tuple[int, int, int], sigma_points: float, seed: int
) -> np.ndarray:
    """Band-limited (Gaussian-smoothed) unit-variance noise field.

    Parameters
    ----------
    shape:
        Output grid shape.
    sigma_points:
        Smoothing length in grid points; larger values give smoother fields.
    seed:
        RNG seed; the same seed always yields the same field.
    """
    rng = rng_from_seed(seed)
    white = rng.standard_normal(shape)
    if sigma_points > 0:
        smooth = ndimage.gaussian_filter(white, sigma=sigma_points, mode="nearest")
    else:
        smooth = white
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    return smooth.astype(np.float64)


class Microphysics:
    """Diagnoses hydrometeor mixing ratios for the synthetic supercell."""

    #: Peak rain mixing ratio inside the core (kg/kg).
    QR_MAX = 8.0e-3
    #: Peak snow mixing ratio in the anvil (kg/kg).
    QS_MAX = 3.0e-3
    #: Peak graupel/hail mixing ratio in the core (kg/kg).
    QG_MAX = 10.0e-3

    def __init__(self, storm: SupercellStorm, seed: int = 2016) -> None:
        self.storm = storm
        self.seed = int(seed)

    def mixing_ratios(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> Dict[str, np.ndarray]:
        """Return ``{"qr", "qs", "qg"}`` mixing-ratio fields on the mesh.

        The fields are non-negative, zero (to machine precision) far from the
        storm, and turbulent inside it.
        """
        cfg: StormConfig = self.storm.config
        env = self.storm.envelopes(xn, yn, zn, iteration)
        shape = np.broadcast(xn, yn, zn).shape
        geo = self.storm.geometry(iteration)

        # Turbulence correlation length in grid points along the first axis.
        sigma = max(1.0, cfg.turbulence_scale * geo.radius * shape[0])
        turb_r = correlated_noise(shape, sigma, derive_seed(self.seed, "qr", iteration))
        turb_s = correlated_noise(shape, sigma * 1.5, derive_seed(self.seed, "qs", iteration))
        turb_g = correlated_noise(shape, sigma * 0.7, derive_seed(self.seed, "qg", iteration))

        def perturb(envelope: np.ndarray, noise: np.ndarray) -> np.ndarray:
            # Multiplicative perturbation confined to where the envelope is
            # significant, so the far field stays exactly quiet.
            pert = 1.0 + cfg.turbulence * noise
            return np.clip(envelope * pert, 0.0, None)

        core = env["core"] * (1.0 - 0.85 * env["weak_echo"])
        hook = env["hook"]
        anvil = env["anvil"]

        qr = self.QR_MAX * perturb(core + 0.8 * hook, turb_r)
        qs = self.QS_MAX * perturb(anvil + 0.15 * core, turb_s)
        qg = self.QG_MAX * perturb(0.75 * core + 0.5 * hook, turb_g)
        return {"qr": qr, "qs": qs, "qg": qg}
