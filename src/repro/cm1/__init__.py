"""Synthetic CM1-like atmospheric model.

The paper drives its pipeline with the CM1 cloud model (Bryan & Fritsch 2002)
simulating a supercell thunderstorm, and in particular with CM1's simulated
radar **reflectivity** (dBZ) field, whose 45 dBZ isosurface reveals the weak
echo region associated with storm onset.

Running the real CM1 (Fortran, petascale data) is out of scope here, so this
package provides a synthetic but physically structured substitute:

* a time-evolving **supercell storm** description (updraft core, mesocyclone
  rotation, hook echo, anvil, storm motion) — :mod:`repro.cm1.storm` — plus
  parameterised **storm families** sharing its envelope contract: a squall
  line, a multi-cell cluster, a turbulence-only field, and a decaying storm
  (dispatched from their configs by :func:`~repro.cm1.storm.make_storm`);
* **microphysics** fields (rain / snow / graupel-hail mixing ratios) built
  from the storm structure plus seeded turbulence — :mod:`repro.cm1.microphysics`;
* the **reflectivity diagnostic** converting mixing ratios to dBZ in the
  physical [-60, 80] range — :mod:`repro.cm1.reflectivity`;
* a **wind field** (inflow + rotating updraft) — :mod:`repro.cm1.dynamics`;
* a stepping :class:`~repro.cm1.simulation.CM1Simulation` and a replayable
  :class:`~repro.cm1.dataset.CM1Dataset` standing in for the paper's stored
  572-iteration Blue Waters dataset.

What matters for the reproduction is preserved: the interesting region is a
small, localised, turbulent fraction of a large mostly-quiet domain, its
values span the full dBZ range, and it grows/moves over iterations.
"""

from repro.cm1.config import (
    CM1Config,
    DecayingStormConfig,
    MultiCellConfig,
    SquallLineConfig,
    StormConfig,
    TurbulenceFieldConfig,
)
from repro.cm1.storm import (
    DecayingStorm,
    MultiCellStorm,
    SquallLineStorm,
    SupercellStorm,
    TurbulenceFieldStorm,
    make_storm,
)
from repro.cm1.state import ModelState
from repro.cm1.microphysics import Microphysics
from repro.cm1.reflectivity import reflectivity_dbz, DBZ_MIN, DBZ_MAX
from repro.cm1.dynamics import WindField
from repro.cm1.simulation import CM1Simulation
from repro.cm1.dataset import CM1Dataset

__all__ = [
    "CM1Config",
    "StormConfig",
    "SquallLineConfig",
    "MultiCellConfig",
    "TurbulenceFieldConfig",
    "DecayingStormConfig",
    "SupercellStorm",
    "SquallLineStorm",
    "MultiCellStorm",
    "TurbulenceFieldStorm",
    "DecayingStorm",
    "make_storm",
    "ModelState",
    "Microphysics",
    "reflectivity_dbz",
    "DBZ_MIN",
    "DBZ_MAX",
    "WindField",
    "CM1Simulation",
    "CM1Dataset",
]
