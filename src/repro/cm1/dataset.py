"""Pre-generated CM1 datasets (in-memory or on-disk).

The paper replays a stored 572-iteration dataset instead of running CM1's
computation phase for every experiment.  :class:`CM1Dataset` offers the same
workflow: generate ``n`` snapshots once (optionally persisting them through
:class:`~repro.io.store.DatasetStore`), then iterate over them as many times
as the experiments need.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional

from repro.cm1.config import CM1Config
from repro.cm1.simulation import CM1Simulation
from repro.grid.block import Block
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.domain import Domain
from repro.io.replay import equally_spaced
from repro.io.store import DatasetStore


class CM1Dataset:
    """A replayable sequence of synthetic CM1 snapshots.

    Parameters
    ----------
    config:
        CM1 configuration used to generate the snapshots.
    nsnapshots:
        Number of snapshots the dataset holds.
    cache:
        When True (default) generated domains are kept in memory so replaying
        them is free; otherwise they are regenerated on demand.
    """

    def __init__(
        self,
        config: Optional[CM1Config] = None,
        nsnapshots: int = 10,
        cache: bool = True,
    ) -> None:
        if nsnapshots < 1:
            raise ValueError(f"nsnapshots must be >= 1, got {nsnapshots}")
        self.config = config or CM1Config()
        self.simulation = CM1Simulation(self.config)
        self.nsnapshots = int(nsnapshots)
        self._cache_enabled = bool(cache)
        self._cache: dict[int, Domain] = {}

    # -- access ------------------------------------------------------------

    def snapshot(self, index: int) -> Domain:
        """Return snapshot ``index`` (0-based), generating it if needed."""
        if not (0 <= index < self.nsnapshots):
            raise IndexError(f"snapshot index {index} out of range [0, {self.nsnapshots})")
        if index in self._cache:
            return self._cache[index]
        domain = self.simulation.snapshot(index)
        if self._cache_enabled:
            self._cache[index] = domain
        return domain

    def __len__(self) -> int:
        return self.nsnapshots

    def __iter__(self) -> Iterator[Domain]:
        for i in range(self.nsnapshots):
            yield self.snapshot(i)

    def select(self, count: int) -> List[int]:
        """Equally spaced snapshot indices (the paper's iteration selection)."""
        return equally_spaced(list(range(self.nsnapshots)), count)

    def per_rank_blocks(
        self,
        decomposition: CartesianDecomposition,
        index: int,
        field_name: str = "dbz",
    ) -> List[List[Block]]:
        """Blocks of snapshot ``index`` split across the decomposition's ranks."""
        domain = self.snapshot(index)
        field = domain.get_field(field_name)
        return [
            decomposition.extract_blocks(rank, field, field_name)
            for rank in range(decomposition.nranks)
        ]

    # -- persistence ---------------------------------------------------------

    def save(
        self,
        directory: Path,
        extra_metadata: Optional[dict] = None,
        layout: str = "npz",
    ) -> DatasetStore:
        """Persist every snapshot into a :class:`DatasetStore` at ``directory``.

        ``extra_metadata`` entries are merged into the manifest metadata —
        the CLI records the scenario name this way.  ``layout="raw"`` writes
        the mmap-friendly flat-binary format (the replay cache uses it so
        repeated runs load snapshots zero-copy instead of re-simulating).
        """
        metadata = {
            "generator": "repro.cm1.CM1Dataset",
            "shape": list(self.config.shape),
            "seed": self.config.seed,
            "nsnapshots": self.nsnapshots,
        }
        metadata.update(extra_metadata or {})
        store = DatasetStore(Path(directory))
        store.create(self.simulation.grid, metadata=metadata, layout=layout)
        for domain in self:
            store.append(domain)
        return store

    @staticmethod
    def load(
        directory: Path, field_name: str = "dbz", mmap: bool = False
    ) -> "StoredCM1Dataset":
        """Open a previously saved dataset for replay."""
        return StoredCM1Dataset(
            DatasetStore(Path(directory)), field_name=field_name, mmap=mmap
        )


class StoredCM1Dataset:
    """Read-only view over a persisted CM1 dataset.

    Mirrors the :class:`CM1Dataset` access surface (``snapshot``,
    ``select``, ``per_rank_blocks``) so experiment scenarios can be backed
    by a stored dataset instead of a live simulation.  With ``mmap=True``
    (raw-layout stores) snapshot fields are read-only memory-mapped views —
    block extraction copies only the slices each rank needs.
    """

    def __init__(
        self, store: DatasetStore, field_name: str = "dbz", mmap: bool = False
    ) -> None:
        if not store.exists():
            raise FileNotFoundError(f"no dataset at {store.root}")
        self.store = store
        self.field_name = field_name
        self.mmap = bool(mmap)
        self._iterations = store.iterations()

    def __len__(self) -> int:
        return len(self._iterations)

    @property
    def nsnapshots(self) -> int:
        """Number of stored snapshots (CM1Dataset-compatible alias)."""
        return len(self._iterations)

    def snapshot(self, index: int) -> Domain:
        """Load snapshot ``index`` (0-based position in the stored sequence)."""
        if not (0 <= index < len(self._iterations)):
            raise IndexError(f"snapshot index {index} out of range")
        return self.store.load_iteration(
            self._iterations[index], fields=[self.field_name], mmap=self.mmap
        )

    def __iter__(self) -> Iterator[Domain]:
        for i in range(len(self)):
            yield self.snapshot(i)

    def select(self, count: int) -> List[int]:
        """Equally spaced snapshot indices (CM1Dataset-compatible)."""
        return equally_spaced(list(range(len(self._iterations))), count)

    def per_rank_blocks(
        self,
        decomposition: CartesianDecomposition,
        index: int,
        field_name: str = "dbz",
    ) -> List[List[Block]]:
        """Blocks of snapshot ``index`` split across the decomposition's ranks."""
        if not (0 <= index < len(self._iterations)):
            raise IndexError(f"snapshot index {index} out of range")
        domain = self.store.load_iteration(
            self._iterations[index], fields=[field_name], mmap=self.mmap
        )
        field = domain.get_field(field_name)
        return [
            decomposition.extract_blocks(rank, field, field_name)
            for rank in range(decomposition.nranks)
        ]
