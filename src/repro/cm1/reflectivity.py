"""Radar reflectivity diagnostic.

CM1 derives its ``dbz`` output from the rain, snow, and hail/graupel mixing
ratios ("It derives from a calculation based on cloud rain, hail, and snow
microphysical variables", Section II-A).  We follow the same structure as
CM1's ``dbzcalc`` (itself based on Smith, Myers & Orville 1975): each species
contributes an equivalent reflectivity factor ``Z`` proportional to a power of
its rain-water content, the contributions are summed, and the result is
converted to decibels.

The exact coefficients matter less than the structural properties the paper
relies on:

* values fall in a **known physical range** ([-60, 80] dBZ) — required by the
  histogram-entropy metric, which needs a common histogram range across all
  processes;
* the logarithmic transform compresses the quiet background to a constant
  floor (-60 dBZ) while the storm interior spans tens of dBZ, reproducing the
  strong contrast between interesting and uninteresting blocks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Physical clipping range of the reflectivity field (dBZ), as in the paper.
DBZ_MIN: float = -60.0
DBZ_MAX: float = 80.0

#: Reference air density (kg/m^3) used to convert mixing ratio to content.
RHO_AIR: float = 1.0

# Z = a * (rho * q)^b  with q in kg/kg and rho in kg/m^3 (so rho*q in kg/m^3,
# converted to g/m^3 inside).  Coefficients follow the classic Smith et al.
# formulation used by CM1 and WRF's dbzcalc for rain, dry snow, and hail.
_SPECIES_COEFFS = {
    "qr": (3.63e9, 1.75),   # rain
    "qs": (9.80e8, 1.75),   # dry snow (scaled for density ratio)
    "qg": (4.33e10, 1.75),  # hail / graupel
}


def equivalent_reflectivity(
    mixing_ratios: Dict[str, np.ndarray], rho_air: float = RHO_AIR
) -> np.ndarray:
    """Sum the per-species equivalent reflectivity factors (mm^6/m^3).

    Unknown species names in ``mixing_ratios`` are ignored so callers can pass
    a full state dictionary.
    """
    if rho_air <= 0:
        raise ValueError(f"rho_air must be > 0, got {rho_air}")
    z_total: np.ndarray | None = None
    for name, (a, b) in _SPECIES_COEFFS.items():
        q = mixing_ratios.get(name)
        if q is None:
            continue
        content = np.clip(np.asarray(q, dtype=np.float64), 0.0, None) * rho_air
        z = a * np.power(content, b)
        z_total = z if z_total is None else z_total + z
    if z_total is None:
        raise ValueError(
            f"no known hydrometeor species found; expected one of {list(_SPECIES_COEFFS)}"
        )
    return z_total


def reflectivity_dbz(
    mixing_ratios: Dict[str, np.ndarray],
    rho_air: float = RHO_AIR,
    clip: bool = True,
) -> np.ndarray:
    """Convert mixing ratios to radar reflectivity in dBZ.

    Parameters
    ----------
    mixing_ratios:
        Mapping with any of ``"qr"``, ``"qs"``, ``"qg"`` arrays (kg/kg).
    rho_air:
        Air density used for the mixing-ratio → content conversion.
    clip:
        Clip the result to the physical [-60, 80] dBZ range (default True).

    Returns
    -------
    numpy.ndarray
        dBZ field with the same shape as the inputs (float64).
    """
    z = equivalent_reflectivity(mixing_ratios, rho_air)
    # Floor at the value corresponding to DBZ_MIN to avoid log10(0).
    z_floor = 10.0 ** (DBZ_MIN / 10.0)
    dbz = 10.0 * np.log10(np.maximum(z, z_floor))
    if clip:
        dbz = np.clip(dbz, DBZ_MIN, DBZ_MAX)
    return dbz
