"""Configuration objects for the synthetic CM1 model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class StormConfig:
    """Parameters of the synthetic supercell.

    All positions and radii are in *normalised domain units*: the horizontal
    domain is [0, 1] × [0, 1], the vertical extent is [0, 1].  This keeps the
    storm description independent of the grid resolution so the same storm
    can be generated at the paper's 2200×2200×380 scale or at laptop scale.
    """

    #: Initial horizontal position of the storm core (normalised).
    initial_center: Tuple[float, float] = (0.42, 0.5)
    #: Horizontal storm motion per iteration (normalised units).
    motion_per_iteration: Tuple[float, float] = (0.0012, 0.0004)
    #: Initial horizontal radius of the precipitation core.
    initial_radius: float = 0.085
    #: Radius growth per iteration (the storm strengthens over time).
    radius_growth_per_iteration: float = 0.0009
    #: Maximum radius the storm saturates at.
    max_radius: float = 0.22
    #: Height (normalised) of the reflectivity maximum.
    core_height: float = 0.35
    #: Depth of the storm (vertical extent of significant reflectivity).
    core_depth: float = 0.55
    #: Strength of the mesocyclone rotation (controls the hook echo).
    rotation_strength: float = 1.0
    #: Normalised radius of the weak echo region (bounded weak echo vault).
    weak_echo_radius: float = 0.25
    #: Amplitude of the anvil (upper-level downwind spread), 0 disables it.
    anvil_strength: float = 0.6
    #: Turbulence intensity inside the storm (relative perturbation).
    turbulence: float = 0.35
    #: Correlation length of the turbulence, as a fraction of the core radius.
    turbulence_scale: float = 0.3

    def __post_init__(self) -> None:
        ensure_in_range(self.initial_center[0], (0.0, 1.0), "initial_center[0]")
        ensure_in_range(self.initial_center[1], (0.0, 1.0), "initial_center[1]")
        ensure_positive(self.initial_radius, "initial_radius")
        ensure_positive(self.max_radius, "max_radius")
        ensure_in_range(self.core_height, (0.0, 1.0), "core_height")
        ensure_positive(self.core_depth, "core_depth")
        if self.radius_growth_per_iteration < 0:
            raise ValueError("radius_growth_per_iteration must be >= 0")
        ensure_in_range(self.turbulence, (0.0, 2.0), "turbulence")
        ensure_positive(self.turbulence_scale, "turbulence_scale")


@dataclass(frozen=True)
class SquallLineConfig(StormConfig):
    """A squall line: an elongated band of embedded convective cores.

    The band is centred on the (moving) storm centre, oriented at
    ``orientation_deg`` from the x axis, ``line_length`` long and
    ``line_width`` wide (normalised units), with ``ncells`` reflectivity
    maxima embedded along it.  Mesocyclone rotation is weak (squall lines
    are multicellular, not supercellular), and the anvil spreads as a
    trailing stratiform region behind the band.
    """

    initial_center: Tuple[float, float] = (0.38, 0.5)
    rotation_strength: float = 0.15
    anvil_strength: float = 0.45
    #: Angle of the band relative to the x axis, degrees.
    orientation_deg: float = 25.0
    #: Length of the band along its axis (normalised units).
    line_length: float = 0.7
    #: Half-width scale of the band across its axis.
    line_width: float = 0.07
    #: Number of embedded convective cores along the band.
    ncells: int = 5
    #: Depth of the reflectivity modulation between cores (0 = uniform band).
    cell_contrast: float = 0.45

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive(self.line_length, "line_length")
        ensure_positive(self.line_width, "line_width")
        if self.ncells < 1:
            raise ValueError(f"ncells must be >= 1, got {self.ncells}")
        ensure_in_range(self.cell_contrast, (0.0, 1.0), "cell_contrast")


@dataclass(frozen=True)
class MultiCellConfig(StormConfig):
    """A cluster of ``ncells`` displaced supercells.

    Cell positions, sizes, and strengths are drawn deterministically from
    ``placement_seed`` (independent of the grid resolution and of the
    turbulence seed), so the same cluster is generated at any scale and a
    different ``placement_seed`` rearranges the cells.
    """

    initial_center: Tuple[float, float] = (0.5, 0.5)
    initial_radius: float = 0.07
    #: Number of cells in the cluster.
    ncells: int = 4
    #: Radius of the disc the cell centres are scattered over.
    cluster_radius: float = 0.26
    #: Relative spread of the per-cell core radii (0 = identical cells).
    cell_radius_spread: float = 0.35
    #: Relative spread of the per-cell intensities.
    cell_intensity_spread: float = 0.3
    #: Seed of the deterministic cell placement.
    placement_seed: int = 7

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ncells < 1:
            raise ValueError(f"ncells must be >= 1, got {self.ncells}")
        ensure_positive(self.cluster_radius, "cluster_radius")
        ensure_in_range(self.cell_radius_spread, (0.0, 1.0), "cell_radius_spread")
        ensure_in_range(self.cell_intensity_spread, (0.0, 1.0), "cell_intensity_spread")


@dataclass(frozen=True)
class TurbulenceFieldConfig(StormConfig):
    """A turbulence-only field: no coherent storm structure at all.

    Reflectivity fills ``fill_fraction`` of the horizontal domain with a
    flat envelope (smooth ``edge_softness`` taper at the borders) and is
    dominated by fine-grained turbulence, so every block carries a similar
    amount of information.  This is the adversarial workload for the
    score-sort-reduce machinery: with near-uniform scores the sorted order
    is decided by tie-breaking and the redistribution step has almost no
    load imbalance to exploit.
    """

    turbulence: float = 1.5
    turbulence_scale: float = 0.05
    rotation_strength: float = 0.0
    anvil_strength: float = 0.0
    #: Fraction of the horizontal domain the reflectivity fills.
    fill_fraction: float = 0.85
    #: Width of the smooth taper at the envelope borders (normalised units).
    edge_softness: float = 0.08

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_in_range(self.fill_fraction, (0.1, 1.0), "fill_fraction")
        ensure_positive(self.edge_softness, "edge_softness")


@dataclass(frozen=True)
class DecayingStormConfig(StormConfig):
    """A supercell past its peak: reflectivity shrinks across snapshots.

    Intensity decays exponentially (``decay_rate`` per iteration after
    ``peak_iteration``) and the core radius contracts towards
    ``min_radius``, so the rendering load falls over the course of a run —
    the mirror image of the growing storm the adaptation controller is
    usually tuned against.
    """

    initial_radius: float = 0.16
    radius_growth_per_iteration: float = 0.0
    #: Iteration at which the decay starts.
    peak_iteration: int = 0
    #: Exponential decay rate of the intensity per iteration past the peak.
    decay_rate: float = 0.18
    #: Core radius contraction per iteration past the peak.
    radius_shrink_per_iteration: float = 0.006
    #: Radius floor the storm decays towards.
    min_radius: float = 0.03

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.peak_iteration < 0:
            raise ValueError(f"peak_iteration must be >= 0, got {self.peak_iteration}")
        ensure_positive(self.decay_rate, "decay_rate")
        if self.radius_shrink_per_iteration < 0:
            raise ValueError("radius_shrink_per_iteration must be >= 0")
        ensure_positive(self.min_radius, "min_radius")


@dataclass(frozen=True)
class CM1Config:
    """Configuration of a synthetic CM1 run.

    Attributes
    ----------
    shape:
        Grid points along x, y, z.  The paper's dataset is 2200×2200×380; the
        default here is a laptop-scale 220×220×38 with the same aspect ratio.
    horizontal_extent_km, vertical_extent_km:
        Physical extents used to build the CM1-like stretched grid.
    start_iteration:
        Iteration number of the first produced snapshot (the paper's stored
        dataset starts after ~5,000 simulation iterations).
    iteration_stride:
        Number of internal model iterations between two produced snapshots.
    seed:
        Base seed for all stochastic components (turbulence phases).
    fields:
        Names of the fields produced per snapshot.  ``"dbz"`` is always
        produced; the others are optional extras used by multivariate scoring.
    """

    shape: Tuple[int, int, int] = (220, 220, 38)
    horizontal_extent_km: float = 120.0
    vertical_extent_km: float = 20.0
    start_iteration: int = 5000
    iteration_stride: int = 1
    seed: int = 2016
    storm: StormConfig = field(default_factory=StormConfig)
    fields: Tuple[str, ...] = ("dbz",)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(int(s) < 4 for s in self.shape):
            raise ValueError(f"shape must be 3 values >= 4, got {self.shape}")
        ensure_positive(self.horizontal_extent_km, "horizontal_extent_km")
        ensure_positive(self.vertical_extent_km, "vertical_extent_km")
        if self.start_iteration < 0:
            raise ValueError("start_iteration must be >= 0")
        if self.iteration_stride < 1:
            raise ValueError("iteration_stride must be >= 1")
        if "dbz" not in self.fields:
            object.__setattr__(self, "fields", ("dbz",) + tuple(self.fields))

    @classmethod
    def paper_scale(cls) -> "CM1Config":
        """The paper's dataset dimensions (2200×2200×380).

        Provided for documentation and for computing exact per-block sizes in
        the cost model; actually materialising a field at this size needs
        ~7.4 GB and is not done in tests.
        """
        return cls(shape=(2200, 2200, 380))

    @classmethod
    def laptop_scale(cls) -> "CM1Config":
        """Default laptop-scale configuration (1/10 resolution per axis)."""
        return cls(shape=(220, 220, 38))

    @classmethod
    def tiny(cls, seed: int = 2016) -> "CM1Config":
        """A very small configuration for unit tests (fast to generate)."""
        return cls(shape=(44, 44, 12), seed=seed)
