"""Configuration objects for the synthetic CM1 model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class StormConfig:
    """Parameters of the synthetic supercell.

    All positions and radii are in *normalised domain units*: the horizontal
    domain is [0, 1] × [0, 1], the vertical extent is [0, 1].  This keeps the
    storm description independent of the grid resolution so the same storm
    can be generated at the paper's 2200×2200×380 scale or at laptop scale.
    """

    #: Initial horizontal position of the storm core (normalised).
    initial_center: Tuple[float, float] = (0.42, 0.5)
    #: Horizontal storm motion per iteration (normalised units).
    motion_per_iteration: Tuple[float, float] = (0.0012, 0.0004)
    #: Initial horizontal radius of the precipitation core.
    initial_radius: float = 0.085
    #: Radius growth per iteration (the storm strengthens over time).
    radius_growth_per_iteration: float = 0.0009
    #: Maximum radius the storm saturates at.
    max_radius: float = 0.22
    #: Height (normalised) of the reflectivity maximum.
    core_height: float = 0.35
    #: Depth of the storm (vertical extent of significant reflectivity).
    core_depth: float = 0.55
    #: Strength of the mesocyclone rotation (controls the hook echo).
    rotation_strength: float = 1.0
    #: Normalised radius of the weak echo region (bounded weak echo vault).
    weak_echo_radius: float = 0.25
    #: Amplitude of the anvil (upper-level downwind spread), 0 disables it.
    anvil_strength: float = 0.6
    #: Turbulence intensity inside the storm (relative perturbation).
    turbulence: float = 0.35
    #: Correlation length of the turbulence, as a fraction of the core radius.
    turbulence_scale: float = 0.3

    def __post_init__(self) -> None:
        ensure_in_range(self.initial_center[0], (0.0, 1.0), "initial_center[0]")
        ensure_in_range(self.initial_center[1], (0.0, 1.0), "initial_center[1]")
        ensure_positive(self.initial_radius, "initial_radius")
        ensure_positive(self.max_radius, "max_radius")
        ensure_in_range(self.core_height, (0.0, 1.0), "core_height")
        ensure_positive(self.core_depth, "core_depth")
        if self.radius_growth_per_iteration < 0:
            raise ValueError("radius_growth_per_iteration must be >= 0")
        ensure_in_range(self.turbulence, (0.0, 2.0), "turbulence")
        ensure_positive(self.turbulence_scale, "turbulence_scale")


@dataclass(frozen=True)
class CM1Config:
    """Configuration of a synthetic CM1 run.

    Attributes
    ----------
    shape:
        Grid points along x, y, z.  The paper's dataset is 2200×2200×380; the
        default here is a laptop-scale 220×220×38 with the same aspect ratio.
    horizontal_extent_km, vertical_extent_km:
        Physical extents used to build the CM1-like stretched grid.
    start_iteration:
        Iteration number of the first produced snapshot (the paper's stored
        dataset starts after ~5,000 simulation iterations).
    iteration_stride:
        Number of internal model iterations between two produced snapshots.
    seed:
        Base seed for all stochastic components (turbulence phases).
    fields:
        Names of the fields produced per snapshot.  ``"dbz"`` is always
        produced; the others are optional extras used by multivariate scoring.
    """

    shape: Tuple[int, int, int] = (220, 220, 38)
    horizontal_extent_km: float = 120.0
    vertical_extent_km: float = 20.0
    start_iteration: int = 5000
    iteration_stride: int = 1
    seed: int = 2016
    storm: StormConfig = field(default_factory=StormConfig)
    fields: Tuple[str, ...] = ("dbz",)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(int(s) < 4 for s in self.shape):
            raise ValueError(f"shape must be 3 values >= 4, got {self.shape}")
        ensure_positive(self.horizontal_extent_km, "horizontal_extent_km")
        ensure_positive(self.vertical_extent_km, "vertical_extent_km")
        if self.start_iteration < 0:
            raise ValueError("start_iteration must be >= 0")
        if self.iteration_stride < 1:
            raise ValueError("iteration_stride must be >= 1")
        if "dbz" not in self.fields:
            object.__setattr__(self, "fields", ("dbz",) + tuple(self.fields))

    @classmethod
    def paper_scale(cls) -> "CM1Config":
        """The paper's dataset dimensions (2200×2200×380).

        Provided for documentation and for computing exact per-block sizes in
        the cost model; actually materialising a field at this size needs
        ~7.4 GB and is not done in tests.
        """
        return cls(shape=(2200, 2200, 380))

    @classmethod
    def laptop_scale(cls) -> "CM1Config":
        """Default laptop-scale configuration (1/10 resolution per axis)."""
        return cls(shape=(220, 220, 38))

    @classmethod
    def tiny(cls, seed: int = 2016) -> "CM1Config":
        """A very small configuration for unit tests (fast to generate)."""
        return cls(shape=(44, 44, 12), seed=seed)
