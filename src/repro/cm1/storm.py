"""Analytic description of a time-evolving supercell storm.

The storm is described in *normalised* coordinates (the horizontal domain is
the unit square, the vertical axis the unit interval) by a set of smooth
envelope functions:

* a precipitation **core** centred at the (moving) storm centre;
* a **hook echo** — a curved appendage wrapping around the mesocyclone,
  characteristic of supercells and of the vortex region the paper's
  scientists care about;
* a **weak echo region** (bounded weak echo vault) — a reflectivity minimum
  just above the low-level inflow, carved out of the core (the 45 dBZ
  isosurface around it is exactly what the paper renders);
* an **anvil** — upper-level reflectivity spread downwind of the core.

These envelopes are combined by the microphysics into hydrometeor mixing
ratios.  All functions are vectorised over full coordinate meshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cm1.config import StormConfig


@dataclass(frozen=True)
class StormGeometry:
    """The storm's geometric state at one iteration."""

    center: Tuple[float, float]
    radius: float
    intensity: float
    rotation_angle: float


class SupercellStorm:
    """Time-evolving synthetic supercell.

    Parameters
    ----------
    config:
        Storm parameters (initial position, motion, growth, rotation, ...).
    """

    def __init__(self, config: StormConfig) -> None:
        self.config = config

    # -- geometric evolution -------------------------------------------------

    def geometry(self, iteration: int) -> StormGeometry:
        """Return the storm geometry at ``iteration`` (0-based snapshot index)."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        cfg = self.config
        cx = cfg.initial_center[0] + cfg.motion_per_iteration[0] * iteration
        cy = cfg.initial_center[1] + cfg.motion_per_iteration[1] * iteration
        # Keep the storm inside the domain: reflect at the borders.
        cx = float(np.clip(cx, 0.1, 0.9))
        cy = float(np.clip(cy, 0.1, 0.9))
        radius = min(
            cfg.max_radius,
            cfg.initial_radius + cfg.radius_growth_per_iteration * iteration,
        )
        # Intensity ramps up over the first iterations then saturates.
        intensity = float(1.0 - np.exp(-(iteration + 5) / 12.0))
        rotation_angle = 0.15 * iteration
        return StormGeometry((cx, cy), float(radius), intensity, float(rotation_angle))

    # -- envelope fields -------------------------------------------------------

    def envelopes(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> dict:
        """Evaluate the storm envelope fields on a normalised coordinate mesh.

        Parameters
        ----------
        xn, yn, zn:
            Broadcastable normalised coordinates in [0, 1] (typically the
            output of ``np.meshgrid(..., indexing="ij")`` on normalised axes).
        iteration:
            Snapshot index.

        Returns
        -------
        dict
            ``{"core", "hook", "weak_echo", "anvil", "updraft"}`` — arrays
            broadcast to the mesh shape, each in [0, 1].
        """
        geo = self.geometry(iteration)
        cfg = self.config
        cx, cy = geo.center
        r = geo.radius

        dx = xn - cx
        dy = yn - cy
        rho = np.sqrt(dx**2 + dy**2)
        theta = np.arctan2(dy, dx)

        # Vertical profile: maximum at core_height, decaying over core_depth.
        zprof = np.exp(-(((zn - cfg.core_height) / (0.5 * cfg.core_depth)) ** 2))
        # Low-level profile used by the hook (hook echoes are low-level features).
        zlow = np.exp(-((zn / (0.35 * cfg.core_depth)) ** 2))
        # Upper-level profile for the anvil.
        zhigh = np.exp(-(((zn - 0.8) / 0.18) ** 2))

        # Precipitation core: smooth radial falloff.
        core = np.exp(-((rho / r) ** 2)) * zprof

        # Hook echo: a logarithmic-spiral ridge wrapping around the mesocyclone.
        spiral_r = r * (0.55 + 0.35 * ((theta + geo.rotation_angle) % (2 * np.pi)) / (2 * np.pi))
        hook = (
            cfg.rotation_strength
            * np.exp(-(((rho - spiral_r) / (0.25 * r)) ** 2))
            * np.exp(-((rho / (1.6 * r)) ** 2))
            * zlow
        )

        # Weak echo region: a vault carved out on the inflow flank, slightly
        # below the core maximum.
        wx = cx + 0.35 * r
        wy = cy - 0.2 * r
        wrad = cfg.weak_echo_radius * r
        wdist2 = ((xn - wx) ** 2 + (yn - wy) ** 2) / max(wrad**2, 1e-12)
        wvert = np.exp(-(((zn - 0.22) / 0.16) ** 2))
        weak_echo = np.exp(-wdist2) * wvert

        # Anvil: elongated downwind (positive x) at upper levels.
        anvil = (
            cfg.anvil_strength
            * np.exp(-((dy / (1.2 * r)) ** 2))
            * np.exp(-(((dx - 1.2 * r) / (2.5 * r)) ** 2))
            * zhigh
        )

        # Updraft envelope (used by the wind field): narrow column through the
        # core, tilted slightly downshear with height.
        ux = cx + 0.15 * r * zn
        uy = cy
        udist2 = ((xn - ux) ** 2 + (yn - uy) ** 2) / max((0.45 * r) ** 2, 1e-12)
        updraft = np.exp(-udist2) * np.sin(np.pi * np.clip(zn, 0.0, 1.0))

        scale = geo.intensity
        return {
            "core": scale * core,
            "hook": scale * hook,
            "weak_echo": weak_echo,
            "anvil": scale * anvil,
            "updraft": scale * updraft,
        }

    def interest_mask(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
        threshold: float = 0.05,
    ) -> np.ndarray:
        """Boolean mask of the region of scientific interest.

        Used by tests to check that the interesting region is a small fraction
        of the domain and that content-based metrics give it high scores.
        """
        env = self.envelopes(xn, yn, zn, iteration)
        combined = env["core"] + env["hook"] + env["anvil"]
        return combined > threshold
