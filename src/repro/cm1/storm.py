"""Analytic descriptions of time-evolving storm structures.

Every storm family is described in *normalised* coordinates (the horizontal
domain is the unit square, the vertical axis the unit interval) by a set of
smooth envelope functions:

* a precipitation **core** centred at the (moving) storm centre;
* a **hook echo** — a curved appendage wrapping around the mesocyclone,
  characteristic of supercells and of the vortex region the paper's
  scientists care about;
* a **weak echo region** (bounded weak echo vault) — a reflectivity minimum
  just above the low-level inflow, carved out of the core (the 45 dBZ
  isosurface around it is exactly what the paper renders);
* an **anvil** — upper-level reflectivity spread downwind of the core.

These envelopes are combined by the microphysics into hydrometeor mixing
ratios.  All functions are vectorised over full coordinate meshes.

Beyond the paper's single supercell, this module provides parameterised
generators for other storm *families* — a squall line
(:class:`SquallLineStorm`), a multi-cell cluster (:class:`MultiCellStorm`),
a turbulence-only field (:class:`TurbulenceFieldStorm`), and a decaying
supercell (:class:`DecayingStorm`) — all sharing the supercell's envelope
contract, so microphysics, winds, and every downstream pipeline step work
unchanged on any family.  :func:`make_storm` dispatches a
:class:`~repro.cm1.config.StormConfig` (or subclass) to its generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

import numpy as np

from repro.cm1.config import (
    DecayingStormConfig,
    MultiCellConfig,
    SquallLineConfig,
    StormConfig,
    TurbulenceFieldConfig,
)
from repro.utils.random import derive_seed, rng_from_seed


@dataclass(frozen=True)
class StormGeometry:
    """The storm's geometric state at one iteration."""

    center: Tuple[float, float]
    radius: float
    intensity: float
    rotation_angle: float


class SupercellStorm:
    """Time-evolving synthetic supercell.

    Parameters
    ----------
    config:
        Storm parameters (initial position, motion, growth, rotation, ...).
    """

    def __init__(self, config: StormConfig) -> None:
        self.config = config

    # -- geometric evolution -------------------------------------------------

    def geometry(self, iteration: int) -> StormGeometry:
        """Return the storm geometry at ``iteration`` (0-based snapshot index)."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        cfg = self.config
        cx = cfg.initial_center[0] + cfg.motion_per_iteration[0] * iteration
        cy = cfg.initial_center[1] + cfg.motion_per_iteration[1] * iteration
        # Keep the storm inside the domain: reflect at the borders.
        cx = float(np.clip(cx, 0.1, 0.9))
        cy = float(np.clip(cy, 0.1, 0.9))
        radius = min(
            cfg.max_radius,
            cfg.initial_radius + cfg.radius_growth_per_iteration * iteration,
        )
        # Intensity ramps up over the first iterations then saturates.
        intensity = float(1.0 - np.exp(-(iteration + 5) / 12.0))
        rotation_angle = 0.15 * iteration
        return StormGeometry((cx, cy), float(radius), intensity, float(rotation_angle))

    # -- envelope fields -------------------------------------------------------

    def envelopes(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> dict:
        """Evaluate the storm envelope fields on a normalised coordinate mesh.

        Parameters
        ----------
        xn, yn, zn:
            Broadcastable normalised coordinates in [0, 1] (typically the
            output of ``np.meshgrid(..., indexing="ij")`` on normalised axes).
        iteration:
            Snapshot index.

        Returns
        -------
        dict
            ``{"core", "hook", "weak_echo", "anvil", "updraft"}`` — arrays
            broadcast to the mesh shape, each in [0, 1].
        """
        geo = self.geometry(iteration)
        cfg = self.config
        cx, cy = geo.center
        r = geo.radius

        dx = xn - cx
        dy = yn - cy
        rho = np.sqrt(dx**2 + dy**2)
        theta = np.arctan2(dy, dx)

        # Vertical profile: maximum at core_height, decaying over core_depth.
        zprof = np.exp(-(((zn - cfg.core_height) / (0.5 * cfg.core_depth)) ** 2))
        # Low-level profile used by the hook (hook echoes are low-level features).
        zlow = np.exp(-((zn / (0.35 * cfg.core_depth)) ** 2))
        # Upper-level profile for the anvil.
        zhigh = np.exp(-(((zn - 0.8) / 0.18) ** 2))

        # Precipitation core: smooth radial falloff.
        core = np.exp(-((rho / r) ** 2)) * zprof

        # Hook echo: a logarithmic-spiral ridge wrapping around the mesocyclone.
        spiral_r = r * (0.55 + 0.35 * ((theta + geo.rotation_angle) % (2 * np.pi)) / (2 * np.pi))
        hook = (
            cfg.rotation_strength
            * np.exp(-(((rho - spiral_r) / (0.25 * r)) ** 2))
            * np.exp(-((rho / (1.6 * r)) ** 2))
            * zlow
        )

        # Weak echo region: a vault carved out on the inflow flank, slightly
        # below the core maximum.
        wx = cx + 0.35 * r
        wy = cy - 0.2 * r
        wrad = cfg.weak_echo_radius * r
        wdist2 = ((xn - wx) ** 2 + (yn - wy) ** 2) / max(wrad**2, 1e-12)
        wvert = np.exp(-(((zn - 0.22) / 0.16) ** 2))
        weak_echo = np.exp(-wdist2) * wvert

        # Anvil: elongated downwind (positive x) at upper levels.
        anvil = (
            cfg.anvil_strength
            * np.exp(-((dy / (1.2 * r)) ** 2))
            * np.exp(-(((dx - 1.2 * r) / (2.5 * r)) ** 2))
            * zhigh
        )

        # Updraft envelope (used by the wind field): narrow column through the
        # core, tilted slightly downshear with height.
        ux = cx + 0.15 * r * zn
        uy = cy
        udist2 = ((xn - ux) ** 2 + (yn - uy) ** 2) / max((0.45 * r) ** 2, 1e-12)
        updraft = np.exp(-udist2) * np.sin(np.pi * np.clip(zn, 0.0, 1.0))

        scale = geo.intensity
        return {
            "core": scale * core,
            "hook": scale * hook,
            "weak_echo": weak_echo,
            "anvil": scale * anvil,
            "updraft": scale * updraft,
        }

    def interest_mask(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
        threshold: float = 0.05,
    ) -> np.ndarray:
        """Boolean mask of the region of scientific interest.

        Used by tests to check that the interesting region is a small fraction
        of the domain and that content-based metrics give it high scores.
        """
        env = self.envelopes(xn, yn, zn, iteration)
        combined = env["core"] + env["hook"] + env["anvil"]
        return combined > threshold


class SquallLineStorm(SupercellStorm):
    """An elongated multi-core band (squall line).

    The precipitation core is a flat-topped band through the storm centre,
    oriented at ``config.orientation_deg``, with ``config.ncells``
    reflectivity maxima embedded along it.  The weak echo region sits along
    the band's leading edge (the squall line's inflow notch), and the anvil
    trails behind the band as a stratiform region.
    """

    config: SquallLineConfig

    def envelopes(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> dict:
        geo = self.geometry(iteration)
        cfg = self.config
        cx, cy = geo.center

        phi = np.deg2rad(cfg.orientation_deg)
        cphi, sphi = np.cos(phi), np.sin(phi)
        # Along-band (s) and across-band (t) coordinates.
        s = (xn - cx) * cphi + (yn - cy) * sphi
        t = -(xn - cx) * sphi + (yn - cy) * cphi

        half = 0.5 * cfg.line_length
        # Flat-topped along-band envelope (quartic falloff past the ends).
        along = np.exp(-((s / (0.8 * half)) ** 4))
        across = np.exp(-((t / cfg.line_width) ** 2))

        zprof = np.exp(-(((zn - cfg.core_height) / (0.5 * cfg.core_depth)) ** 2))
        zlow = np.exp(-((zn / (0.35 * cfg.core_depth)) ** 2))
        zhigh = np.exp(-(((zn - 0.8) / 0.18) ** 2))

        # Embedded cores: a cosine modulation drifting slowly along the band
        # (new cells form at one end as old ones decay, as real lines do).
        cell_phase = 2.0 * np.pi * cfg.ncells * (s + half) / cfg.line_length
        cells = 0.5 * (1.0 + np.cos(cell_phase - 0.4 * geo.rotation_angle))
        core = along * across * zprof * (1.0 - cfg.cell_contrast * (1.0 - cells))

        # Weak mesocyclones on the embedded cores (line-end vortices).
        hook = cfg.rotation_strength * core * cells * zlow

        # Inflow notch ahead of the band (positive t side), low levels.
        notch = np.exp(-(((t - 2.0 * cfg.line_width) / cfg.line_width) ** 2))
        weak_echo = notch * along * np.exp(-(((zn - 0.22) / 0.16) ** 2))

        # Trailing stratiform anvil behind the band (negative t side).
        anvil = (
            cfg.anvil_strength
            * along
            * np.exp(-(((t + 3.0 * cfg.line_width) / (4.0 * cfg.line_width)) ** 2))
            * zhigh
        )

        # Sheet-like updraft along the leading edge, tilted rearward.
        updraft = (
            along
            * np.exp(-(((t - 0.5 * cfg.line_width * zn) / (0.8 * cfg.line_width)) ** 2))
            * np.sin(np.pi * np.clip(zn, 0.0, 1.0))
        )

        scale = geo.intensity
        return {
            "core": scale * core,
            "hook": scale * hook,
            "weak_echo": weak_echo,
            "anvil": scale * anvil,
            "updraft": scale * updraft,
        }


class MultiCellStorm(SupercellStorm):
    """``config.ncells`` displaced supercells evolving as one cluster.

    Each cell is a full :class:`SupercellStorm` whose centre, radius, and
    intensity are drawn deterministically from ``config.placement_seed``;
    the cluster shares the configured storm motion, so the cells translate
    together while keeping their relative offsets.  Envelopes are combined
    with an elementwise maximum, which keeps them in [0, 1] and preserves
    each cell's internal structure (hook, vault) where cells do not overlap.
    """

    config: MultiCellConfig

    def __init__(self, config: MultiCellConfig) -> None:
        super().__init__(config)
        self._cells = self._build_cells(config)

    @staticmethod
    def _build_cells(cfg: MultiCellConfig) -> List[SupercellStorm]:
        rng = rng_from_seed(derive_seed(cfg.placement_seed, "multicell", cfg.ncells))
        cells: List[SupercellStorm] = []
        for index in range(cfg.ncells):
            # Scatter cell centres over a disc around the cluster centre.
            angle = rng.uniform(0.0, 2.0 * np.pi)
            dist = cfg.cluster_radius * np.sqrt(rng.uniform(0.0, 1.0))
            center = (
                float(np.clip(cfg.initial_center[0] + dist * np.cos(angle), 0.12, 0.88)),
                float(np.clip(cfg.initial_center[1] + dist * np.sin(angle), 0.12, 0.88)),
            )
            radius_factor = 1.0 + cfg.cell_radius_spread * rng.uniform(-1.0, 1.0)
            intensity = 1.0 + cfg.cell_intensity_spread * rng.uniform(-1.0, 1.0)
            cell_cfg = StormConfig(
                initial_center=center,
                motion_per_iteration=cfg.motion_per_iteration,
                initial_radius=cfg.initial_radius * radius_factor,
                radius_growth_per_iteration=cfg.radius_growth_per_iteration,
                max_radius=cfg.max_radius,
                core_height=cfg.core_height,
                core_depth=cfg.core_depth,
                # Only the strongest-rotation cell develops a real hook.
                rotation_strength=cfg.rotation_strength * (1.0 if index == 0 else 0.4),
                weak_echo_radius=cfg.weak_echo_radius,
                # _ScaledCell already multiplies the cell intensity into
                # every envelope (anvil included) — scale it exactly once.
                anvil_strength=cfg.anvil_strength,
                turbulence=cfg.turbulence,
                turbulence_scale=cfg.turbulence_scale,
            )
            cells.append(_ScaledCell(cell_cfg, intensity=float(np.clip(intensity, 0.3, 1.5))))
        return cells

    def envelopes(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> dict:
        combined: Dict[str, np.ndarray] = {}
        for cell in self._cells:
            env = cell.envelopes(xn, yn, zn, iteration)
            for name, arr in env.items():
                if name in combined:
                    np.maximum(combined[name], arr, out=combined[name])
                else:
                    combined[name] = np.array(arr, copy=True)
        return combined


class _ScaledCell(SupercellStorm):
    """A supercell whose overall intensity is scaled by a constant factor."""

    def __init__(self, config: StormConfig, intensity: float) -> None:
        super().__init__(config)
        self._intensity_factor = float(intensity)

    def geometry(self, iteration: int) -> StormGeometry:
        base = super().geometry(iteration)
        return StormGeometry(
            base.center,
            base.radius,
            base.intensity * self._intensity_factor,
            base.rotation_angle,
        )


class TurbulenceFieldStorm(SupercellStorm):
    """A structureless turbulence field: reflectivity without a storm.

    The core envelope is a flat plateau filling ``config.fill_fraction`` of
    the horizontal domain (smooth taper at the borders) through most of the
    vertical column; hook, vault, anvil, and updraft are all zero.  The
    microphysics' turbulence then dominates the field completely, which
    makes every block carry a similar score — the degenerate input for the
    sort/reduce/redistribute machinery.
    """

    config: TurbulenceFieldConfig

    def geometry(self, iteration: int) -> StormGeometry:
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        # Static and at full intensity from the first snapshot: no growth
        # transient, so consecutive snapshots differ only by their turbulence.
        return StormGeometry(
            (0.5, 0.5), 0.5 * self.config.fill_fraction, 1.0, 0.0
        )

    @staticmethod
    def _taper(coord: np.ndarray, margin: float, softness: float) -> np.ndarray:
        """Smoothstep from 0 at ``margin`` to 1 at ``margin + softness``."""
        t = np.clip((coord - margin) / softness, 0.0, 1.0)
        return t * t * (3.0 - 2.0 * t)

    def envelopes(
        self,
        xn: np.ndarray,
        yn: np.ndarray,
        zn: np.ndarray,
        iteration: int,
    ) -> dict:
        self.geometry(iteration)  # validates the iteration index
        cfg = self.config
        margin = 0.5 * (1.0 - cfg.fill_fraction)
        soft = cfg.edge_softness
        plateau = (
            self._taper(xn, margin, soft)
            * self._taper(1.0 - xn, margin, soft)
            * self._taper(yn, margin, soft)
            * self._taper(1.0 - yn, margin, soft)
        )
        # Flat through the vertical column too (thin taper at the model top
        # and bottom): blocks at every height carry the same signal, which is
        # what makes the block scores near-uniform.
        zprof = self._taper(zn, 0.0, 0.15) * self._taper(1.0 - zn, 0.0, 0.15)
        core = plateau * zprof
        zero = np.zeros(np.broadcast(xn, yn, zn).shape)
        return {
            "core": core,
            "hook": zero,
            "weak_echo": zero,
            "anvil": zero,
            "updraft": zero,
        }


class DecayingStorm(SupercellStorm):
    """A supercell past its peak: intensity and radius shrink over time.

    The geometric evolution replaces the growth law of the parent class
    with exponential intensity decay and linear radius contraction past
    ``config.peak_iteration``; the envelope structure is inherited
    unchanged, so the storm keeps its hook and vault while fading.
    """

    config: DecayingStormConfig

    def geometry(self, iteration: int) -> StormGeometry:
        base = super().geometry(iteration)
        cfg = self.config
        age = max(0, iteration - cfg.peak_iteration)
        intensity = float(np.exp(-cfg.decay_rate * age))
        radius = max(
            cfg.min_radius,
            cfg.initial_radius - cfg.radius_shrink_per_iteration * age,
        )
        return StormGeometry(base.center, float(radius), intensity, base.rotation_angle)


#: Storm-config types mapped to their generator classes; :func:`make_storm`
#: walks the config's MRO so a subclassed config inherits its parent's
#: generator unless it registers its own.
STORM_FAMILIES: Dict[Type[StormConfig], Type[SupercellStorm]] = {
    StormConfig: SupercellStorm,
    SquallLineConfig: SquallLineStorm,
    MultiCellConfig: MultiCellStorm,
    TurbulenceFieldConfig: TurbulenceFieldStorm,
    DecayingStormConfig: DecayingStorm,
}


def make_storm(config: StormConfig) -> SupercellStorm:
    """Build the storm generator matching ``config``'s family."""
    for cls in type(config).__mro__:
        generator = STORM_FAMILIES.get(cls)
        if generator is not None:
            return generator(config)
    raise TypeError(
        f"no storm family registered for config type {type(config).__name__}"
    )
