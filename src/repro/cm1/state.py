"""Model state container for one CM1 iteration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


#: Field names a full state may carry, with a one-line description each.
KNOWN_FIELDS: Dict[str, str] = {
    "dbz": "simulated radar reflectivity (dBZ)",
    "qr": "rain water mixing ratio (kg/kg)",
    "qs": "snow mixing ratio (kg/kg)",
    "qg": "graupel/hail mixing ratio (kg/kg)",
    "u": "zonal wind (m/s)",
    "v": "meridional wind (m/s)",
    "w": "vertical wind (m/s)",
    "theta": "potential temperature perturbation (K)",
    "prs": "pressure perturbation (Pa)",
}


@dataclass
class ModelState:
    """The prognostic/diagnostic fields of one iteration of the synthetic model.

    Attributes
    ----------
    iteration:
        Simulation iteration number (in internal model iterations, i.e. the
        paper-style counter that starts around 5,000 for the stored dataset).
    shape:
        Grid shape shared by all fields.
    fields:
        Mapping of field name to 3-D float32 array.
    """

    iteration: int
    shape: Tuple[int, int, int]
    fields: Dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, values: np.ndarray) -> None:
        """Add a field, validating its shape and converting to float32."""
        arr = np.asarray(values, dtype=np.float32)
        if tuple(arr.shape) != tuple(self.shape):
            raise ValueError(
                f"field {name!r} has shape {arr.shape}, expected {self.shape}"
            )
        self.fields[name] = arr

    def get(self, name: str) -> np.ndarray:
        """Return field ``name`` (raises ``KeyError`` if missing)."""
        return self.fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def names(self):
        """Names of the fields present in this state."""
        return list(self.fields.keys())

    def nbytes(self) -> int:
        """Total memory footprint of the stored fields."""
        return int(sum(a.nbytes for a in self.fields.values()))
