"""Calibration of the performance model against the paper's published numbers.

Three groups of reference values are encoded here:

* **Table I** — seconds to score 16,000 blocks of 55×55×38 floats with each
  metric, on 64 and on 400 cores.  Dividing by the per-core number of points
  gives the per-point coefficients used by :class:`repro.metrics.base.MetricCost`.
* **Rendering baselines** (Sections II-C, V-C, V-D) — 160 s on 64 cores and
  50 s on 400 cores to render everything with no redistribution; ~1 s when
  every block is reduced; 4×/5× speedup from redistribution alone.
* **Redistribution communication** (Section V-C) — about 1.2 s on 64 cores
  and 0.6 s on 400 cores.

:func:`calibrate_render_model` fits the per-triangle coefficient of a
:class:`~repro.perfmodel.render_model.RenderCostModel` so that a reference
workload (the slowest rank's triangle count on *this* repository's synthetic
data) reproduces the paper's baseline seconds — after which every other
experiment re-uses the fitted model and its results emerge from the data.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.metrics.base import MetricCost
from repro.perfmodel.render_model import RenderCostModel

#: Paper Table I: metric evaluation seconds for 16,000 blocks of 55x55x38
#: values on 64 and 400 cores.
TABLE1_SECONDS: Dict[str, Dict[int, float]] = {
    "LEA": {64: 2.03, 400: 0.32},
    "FPZIP": {64: 8.85, 400: 1.42},
    "ITL": {64: 13.30, 400: 1.97},
    "RANGE": {64: 7.03, 400: 1.12},
    "VAR": {64: 1.41, 400: 0.23},
    "TRILIN": {64: 14.30, 400: 2.28},
}

#: Block geometry of the paper's runs.
PAPER_BLOCK_SHAPE = (55, 55, 38)
PAPER_NBLOCKS = 16_000

#: Headline timing baselines from the paper (seconds).
PAPER_BASELINES: Dict[str, Dict[int, float]] = {
    # Rendering everything, no redistribution, no reduction (Fig. 5 "NONE",
    # Fig. 6 "0 percent").
    "render_none": {64: 160.0, 400: 50.0},
    # Rendering when every block is reduced to 2x2x2 (Section II-C, Fig. 6).
    "render_all_reduced": {64: 1.0, 400: 1.0},
    # Redistribution communication time at 0 percent reduced (Section V-C).
    "redistribution_comm": {64: 1.2, 400: 0.6},
    # Speedup of rendering from redistribution alone (Section V-C).
    "redistribution_speedup": {64: 4.0, 400: 5.0},
}


def paper_points_per_core(ncores: int) -> float:
    """Points each core scores in the Table I experiment."""
    if ncores < 1:
        raise ValueError(f"ncores must be >= 1, got {ncores}")
    bx, by, bz = PAPER_BLOCK_SHAPE
    total_points = PAPER_NBLOCKS * bx * by * bz
    return total_points / ncores


def metric_cost_from_table1(metric_name: str, ncores: int = 64) -> MetricCost:
    """Per-point metric cost derived from Table I.

    The coefficients derived from the 64-core and 400-core columns agree to
    within a few percent (the metric evaluation is embarrassingly parallel),
    which is the consistency check ``tests/perfmodel`` performs.
    """
    name = metric_name.strip().upper()
    if name not in TABLE1_SECONDS:
        raise KeyError(
            f"no Table I entry for metric {metric_name!r}; "
            f"available: {sorted(TABLE1_SECONDS)}"
        )
    if ncores not in TABLE1_SECONDS[name]:
        raise KeyError(f"Table I has no column for {ncores} cores")
    seconds = TABLE1_SECONDS[name][ncores]
    return MetricCost(per_point=seconds / paper_points_per_core(ncores))


def calibrate_render_model(
    max_rank_triangles: int,
    max_rank_points: int,
    max_rank_blocks: int,
    target_seconds: float,
    base_model: RenderCostModel | None = None,
) -> RenderCostModel:
    """Fit ``per_triangle`` so the slowest rank's workload costs ``target_seconds``.

    Parameters
    ----------
    max_rank_triangles, max_rank_points, max_rank_blocks:
        Workload of the slowest rank in the reference scenario (typically:
        no reduction, no redistribution, iteration 0 of the synthetic
        dataset).
    target_seconds:
        The paper's baseline for that scenario (160 s at 64 cores, 50 s at
        400 cores).
    base_model:
        Model providing the non-triangle coefficients; defaults to
        :class:`RenderCostModel`'s defaults.

    Returns
    -------
    RenderCostModel
        A copy of ``base_model`` with the fitted per-triangle coefficient.
    """
    if max_rank_triangles <= 0:
        raise ValueError("the reference workload must contain at least one triangle")
    if target_seconds <= 0:
        raise ValueError(f"target_seconds must be > 0, got {target_seconds}")
    model = base_model or RenderCostModel()
    fixed = (
        model.per_rank_overhead
        + model.per_block * max_rank_blocks
        + model.per_point * max_rank_points
    )
    if fixed >= target_seconds:
        raise ValueError(
            f"fixed costs ({fixed:.3f} s) already exceed the target {target_seconds} s; "
            "reduce the overhead coefficients"
        )
    per_triangle = (target_seconds - fixed) / max_rank_triangles
    return model.with_per_triangle(per_triangle)
