"""Platform performance model ("Blue Waters seconds").

The algorithms in this repository are real — scores, reductions, isosurfaces
and redistributions are actually computed — but the wall-clock of a laptop
Python process says nothing about the timing behaviour the paper measured on
Blue Waters.  The performance model closes that gap: it converts *measured
work counts* (triangles rendered, points scored, bytes exchanged) into
modelled platform seconds using analytic cost functions calibrated against the
paper's published numbers (Table I, the 160 s / 50 s / 1 s rendering
baselines, and the ~1.2 s / 0.6 s redistribution costs).

Every experiment driver reports modelled seconds, which is what makes the
reproduced figures comparable in *shape* to the paper's.
"""

from repro.perfmodel.render_model import RenderCostModel
from repro.perfmodel.platform import PlatformModel
from repro.perfmodel.calibration import (
    TABLE1_SECONDS,
    PAPER_BASELINES,
    metric_cost_from_table1,
    calibrate_render_model,
)

__all__ = [
    "RenderCostModel",
    "PlatformModel",
    "TABLE1_SECONDS",
    "PAPER_BASELINES",
    "metric_cost_from_table1",
    "calibrate_render_model",
]
