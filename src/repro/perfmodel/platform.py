"""Platform model: network + rendering + scoring costs for one configuration.

A :class:`PlatformModel` bundles everything the pipeline needs to convert work
counts into "Blue Waters seconds" for a given core count, and provides the two
configurations the paper evaluates (64 and 400 cores) as ready-made presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.metrics.base import MetricCost, ScoreMetric
from repro.perfmodel.calibration import TABLE1_SECONDS, metric_cost_from_table1
from repro.perfmodel.render_model import RenderCostModel
from repro.simmpi.costmodel import NetworkCostModel


@dataclass
class PlatformModel:
    """Cost model of one platform configuration.

    Attributes
    ----------
    name:
        Human-readable configuration name (e.g. ``"blue-waters-64"``).
    ncores:
        Number of cores (virtual ranks) of the configuration.
    network:
        Communication cost model.
    render:
        Rendering cost model (possibly re-calibrated by the experiment
        drivers against the paper's baselines).
    metric_costs:
        Optional per-metric cost overrides; metrics not listed fall back to
        their class-level calibrated cost.
    seconds_per_reduced_block:
        Modelled cost of reducing one block to its 8 corner values (a strided
        copy of 8 values); the reduction step prices its work through
        :meth:`reduction_seconds` exactly like scoring and rendering price
        theirs through the platform.
    """

    name: str
    ncores: int
    network: NetworkCostModel = field(default_factory=NetworkCostModel.blue_waters)
    render: RenderCostModel = field(default_factory=RenderCostModel)
    metric_costs: Mapping[str, MetricCost] = field(default_factory=dict)
    seconds_per_reduced_block: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.ncores < 1:
            raise ValueError(f"ncores must be >= 1, got {self.ncores}")
        if self.seconds_per_reduced_block < 0:
            raise ValueError(
                f"seconds_per_reduced_block must be >= 0, "
                f"got {self.seconds_per_reduced_block}"
            )

    # -- scoring cost ----------------------------------------------------------

    def metric_cost(self, metric: ScoreMetric) -> MetricCost:
        """Cost description for ``metric`` on this platform."""
        override = self.metric_costs.get(metric.name)
        return override if override is not None else metric.cost

    def scoring_seconds(self, metric: ScoreMetric, npoints_per_rank: int, nblocks_per_rank: int) -> float:
        """Modelled seconds for one rank to score its blocks with ``metric``."""
        if npoints_per_rank < 0 or nblocks_per_rank < 0:
            raise ValueError("work counts must be >= 0")
        cost = self.metric_cost(metric)
        return cost.per_point * npoints_per_rank + cost.per_block * nblocks_per_rank

    # -- reduction cost --------------------------------------------------------

    def reduction_seconds(
        self, nreduced_per_rank: int, points_copied: Optional[int] = None
    ) -> float:
        """Modelled seconds for one rank to reduce its selected blocks.

        Without ``points_copied`` every reduced block is priced as one corner
        gather (the pre-ladder behavior).  With it, cost scales with the
        actual payload points retained, in corner-block units of 8 points —
        a level-1 strided downsample copies more than a corner block and is
        priced accordingly.  When every reduced block is a corner block the
        two forms are bitwise identical
        (``points_copied == 8 * nreduced_per_rank``).
        """
        if nreduced_per_rank < 0:
            raise ValueError("work counts must be >= 0")
        if points_copied is None:
            return self.seconds_per_reduced_block * nreduced_per_rank
        if points_copied < 0:
            raise ValueError("work counts must be >= 0")
        return self.seconds_per_reduced_block * (points_copied / 8.0)

    # -- presets -----------------------------------------------------------------

    @classmethod
    def blue_waters(cls, ncores: int) -> "PlatformModel":
        """Blue Waters-like configuration with Table I metric costs.

        ``ncores`` is typically 64 or 400, matching the paper's runs; other
        values reuse the 64-core per-point coefficients (they are scale-free).
        """
        reference = ncores if ncores in (64, 400) else 64
        costs = {
            name: metric_cost_from_table1(name, reference) for name in TABLE1_SECONDS
        }
        return cls(
            name=f"blue-waters-{ncores}",
            ncores=ncores,
            network=NetworkCostModel.blue_waters(),
            render=RenderCostModel(),
            metric_costs=costs,
        )

    @classmethod
    def slow_cluster(cls, ncores: int) -> "PlatformModel":
        """A commodity-cluster configuration (slower network), for ablations.

        The paper's conclusion asks whether more elaborate redistribution is
        needed "on platforms with lower network performance"; this preset is
        what the corresponding ablation benchmark uses.
        """
        costs = {name: metric_cost_from_table1(name, 64) for name in TABLE1_SECONDS}
        return cls(
            name=f"slow-cluster-{ncores}",
            ncores=ncores,
            network=NetworkCostModel.slow_cluster(),
            render=RenderCostModel(),
            metric_costs=costs,
        )

    def with_render(self, render: RenderCostModel) -> "PlatformModel":
        """Return a copy of the platform with a re-calibrated render model."""
        return PlatformModel(
            name=self.name,
            ncores=self.ncores,
            network=self.network,
            render=render,
            metric_costs=dict(self.metric_costs),
            seconds_per_reduced_block=self.seconds_per_reduced_block,
        )
