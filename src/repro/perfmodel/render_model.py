"""Rendering cost model.

The paper's isosurface scenario computes a marching-cubes mesh and renders it;
"the rendering time in one process therefore depends on the number of mesh
elements handled by this process" (Section V-A).  The model follows that
observation directly::

    seconds(rank) = per_rank_overhead
                  + per_block * nblocks
                  + per_point * npoints
                  + per_triangle * ntriangles

with the full pipeline's rendering step costing the *maximum* over ranks
(rendering is a synchronous collective operation ending in image composition).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Sequence

from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class RenderCostModel:
    """Analytic per-rank rendering cost.

    Attributes
    ----------
    per_triangle:
        Seconds per isosurface triangle (mesh generation + rasterisation +
        compositing share).  This is the dominant, data-dependent term.
    per_point:
        Seconds per input point fed to the visualization pipeline (marching
        cubes has to scan every cell even where no triangle is produced).
    per_block:
        Fixed cost per block handed to the pipeline (VTK dataset setup).
    per_rank_overhead:
        Fixed cost per rank per iteration (pipeline setup, compositing,
        image write) — this is what keeps the "everything reduced" case at
        about one second in the paper.
    """

    per_triangle: float = 2.0e-5
    per_point: float = 2.0e-8
    per_block: float = 1.0e-4
    per_rank_overhead: float = 0.9

    def __post_init__(self) -> None:
        ensure_positive(self.per_triangle, "per_triangle")
        if self.per_point < 0 or self.per_block < 0 or self.per_rank_overhead < 0:
            raise ValueError("cost coefficients must be >= 0")

    # -- per-rank costs ---------------------------------------------------------

    def rank_seconds(self, ntriangles: int, npoints: int, nblocks: int) -> float:
        """Modelled rendering seconds for one rank's workload."""
        if min(ntriangles, npoints, nblocks) < 0:
            raise ValueError("work counts must be >= 0")
        return (
            self.per_rank_overhead
            + self.per_block * nblocks
            + self.per_point * npoints
            + self.per_triangle * ntriangles
        )

    def block_seconds(self, ntriangles: int, npoints: int) -> float:
        """Modelled cost attributable to a single block (no per-rank overhead)."""
        if min(ntriangles, npoints) < 0:
            raise ValueError("work counts must be >= 0")
        return self.per_block + self.per_point * npoints + self.per_triangle * ntriangles

    def makespan(
        self, per_rank_work: Sequence[Mapping[str, int]]
    ) -> float:
        """Rendering time of the whole step: the slowest rank's time.

        ``per_rank_work[r]`` must provide ``"triangles"``, ``"points"`` and
        ``"blocks"`` counts for rank ``r``.
        """
        if not per_rank_work:
            raise ValueError("per_rank_work must not be empty")
        return max(
            self.rank_seconds(
                int(w.get("triangles", 0)), int(w.get("points", 0)), int(w.get("blocks", 0))
            )
            for w in per_rank_work
        )

    # -- calibration helpers -----------------------------------------------------

    def with_per_triangle(self, per_triangle: float) -> "RenderCostModel":
        """Return a copy with a different per-triangle coefficient."""
        return replace(self, per_triangle=float(per_triangle))

    def scaled(self, factor: float) -> "RenderCostModel":
        """Return a copy with all data-dependent coefficients scaled by ``factor``."""
        ensure_positive(factor, "factor")
        return replace(
            self,
            per_triangle=self.per_triangle * factor,
            per_point=self.per_point * factor,
            per_block=self.per_block * factor,
        )
