"""Bit-level utilities shared by the compressors.

* monotone float ↔ unsigned-int mapping (so integer prediction residuals
  reflect numerical closeness of the floats);
* zigzag mapping of signed residuals to unsigned ints (small magnitudes map
  to small codes);
* byte-length classification used by the length-grouped codec.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_FLOAT_TO_UINT = {
    np.dtype(np.float32): (np.uint32, np.int32, 32),
    np.dtype(np.float64): (np.uint64, np.int64, 64),
}


def _spec(dtype: np.dtype) -> Tuple[type, type, int]:
    spec = _FLOAT_TO_UINT.get(np.dtype(dtype))
    if spec is None:
        raise ValueError(f"unsupported float dtype: {dtype}")
    return spec


def float_to_ordered_uint(values: np.ndarray) -> np.ndarray:
    """Map floats to unsigned ints preserving numerical order.

    The classic trick: positive floats keep their bit pattern with the sign
    bit set; negative floats are bitwise inverted.  After the mapping,
    ``a < b`` (as floats) iff ``map(a) < map(b)`` (as unsigned ints), so
    integer differences are meaningful prediction residuals.
    """
    arr = np.asarray(values)
    utype, itype, bits = _spec(arr.dtype)
    raw = arr.view(utype)
    sign_mask = utype(1) << (bits - 1)
    negative = (raw & sign_mask) != 0
    out = np.where(negative, ~raw, raw | sign_mask)
    return out.astype(utype)


def ordered_uint_to_float(codes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`float_to_ordered_uint`."""
    utype, itype, bits = _spec(dtype)
    codes = np.asarray(codes, dtype=utype)
    sign_mask = utype(1) << (bits - 1)
    was_positive = (codes & sign_mask) != 0
    raw = np.where(was_positive, codes & ~sign_mask, ~codes)
    return raw.astype(utype).view(dtype).copy()


def zigzag_encode(values: np.ndarray, bits: int) -> np.ndarray:
    """Map signed residuals to unsigned codes: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4."""
    if bits not in (32, 64):
        raise ValueError(f"bits must be 32 or 64, got {bits}")
    itype = np.int32 if bits == 32 else np.int64
    utype = np.uint32 if bits == 32 else np.uint64
    v = np.asarray(values, dtype=itype)
    return ((v << 1) ^ (v >> (bits - 1))).astype(utype)


def zigzag_decode(codes: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    if bits not in (32, 64):
        raise ValueError(f"bits must be 32 or 64, got {bits}")
    utype = np.uint32 if bits == 32 else np.uint64
    itype = np.int32 if bits == 32 else np.int64
    c = np.asarray(codes, dtype=utype)
    return ((c >> 1).astype(itype)) ^ -((c & 1).astype(itype))


def byte_lengths(codes: np.ndarray, max_bytes: int) -> np.ndarray:
    """Number of little-endian bytes needed to represent each unsigned code.

    Zero needs 0 bytes; values below 256 need 1; and so on up to ``max_bytes``.
    """
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
    c = np.asarray(codes)
    lengths = np.zeros(c.shape, dtype=np.uint8)
    threshold = np.uint64(1)
    c64 = c.astype(np.uint64)
    for nbytes in range(1, max_bytes + 1):
        threshold = np.uint64(1) << np.uint64(8 * (nbytes - 1))
        lengths[c64 >= threshold] = nbytes
    return lengths


def pack_nibbles(values: np.ndarray) -> bytes:
    """Pack an array of 4-bit values (0..15) into a byte string (two per byte)."""
    v = np.asarray(values, dtype=np.uint8)
    if np.any(v > 15):
        raise ValueError("nibble values must be < 16")
    if v.size % 2 == 1:
        v = np.concatenate([v, np.zeros(1, dtype=np.uint8)])
    packed = (v[0::2] << 4) | v[1::2]
    return packed.tobytes()


def unpack_nibbles(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`; returns ``count`` nibble values."""
    packed = np.frombuffer(data, dtype=np.uint8)
    high = packed >> 4
    low = packed & 0x0F
    out = np.empty(packed.size * 2, dtype=np.uint8)
    out[0::2] = high
    out[1::2] = low
    if count > out.size:
        raise ValueError(f"requested {count} nibbles but only {out.size} stored")
    return out[:count]
