"""Lossy fixed-precision zfp-like coder.

ZFP (Lindstrom 2014) partitions the field into 4×4×4 cells and encodes each
cell with a block-floating-point representation, a decorrelating transform,
and bit-plane coding.  This implementation follows the same structure:

1. pad the block to a multiple of 4 along each axis and split into 4×4×4 cells;
2. per cell, align all values to the cell's largest exponent
   (block-floating-point) giving signed integers;
3. apply a separable smoothing/decorrelation transform (the zfp lifting
   transform approximated by a fixed integer filter);
4. keep only the top ``precision`` bit planes of the transformed
   coefficients; store the number of non-empty planes per cell (content
   adaptivity: smooth cells need very few planes).

The coder is lossy; :meth:`decompress` reconstructs the block within a bound
that shrinks as ``precision`` grows.  Tests exercise the error bound and the
monotone size/precision relationship.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compress.base import CompressionResult, Compressor

_MAGIC = b"ZFPL"
_HEADER = struct.Struct("<4sBBHIII")
_CELL = 4


def _pad_to_multiple(arr: np.ndarray, multiple: int) -> np.ndarray:
    pads = [(0, (-s) % multiple) for s in arr.shape]
    if any(p[1] for p in pads):
        arr = np.pad(arr, pads, mode="edge")
    return arr


def _to_cells(arr: np.ndarray) -> np.ndarray:
    """Reshape a padded array into (ncells, 4, 4, 4)."""
    nx, ny, nz = arr.shape
    cells = arr.reshape(nx // _CELL, _CELL, ny // _CELL, _CELL, nz // _CELL, _CELL)
    cells = cells.transpose(0, 2, 4, 1, 3, 5)
    return cells.reshape(-1, _CELL, _CELL, _CELL)


def _pad_to_multiple_batch(arr: np.ndarray, multiple: int) -> np.ndarray:
    """Batch variant of :func:`_pad_to_multiple` (spatial axes 1..3 only)."""
    pads = [(0, 0)] + [(0, (-s) % multiple) for s in arr.shape[1:]]
    if any(p[1] for p in pads):
        arr = np.pad(arr, pads, mode="edge")
    return arr


def _to_cells_batch(arr: np.ndarray) -> np.ndarray:
    """Reshape a padded ``(nblocks, nx, ny, nz)`` batch into (nblocks, ncells, 4, 4, 4).

    Cell order within each block matches :func:`_to_cells` exactly.
    """
    nb, nx, ny, nz = arr.shape
    cells = arr.reshape(
        nb, nx // _CELL, _CELL, ny // _CELL, _CELL, nz // _CELL, _CELL
    )
    cells = cells.transpose(0, 1, 3, 5, 2, 4, 6)
    return cells.reshape(nb, -1, _CELL, _CELL, _CELL)


def _from_cells(cells: np.ndarray, padded_shape: Tuple[int, int, int]) -> np.ndarray:
    nx, ny, nz = padded_shape
    grid = cells.reshape(nx // _CELL, ny // _CELL, nz // _CELL, _CELL, _CELL, _CELL)
    grid = grid.transpose(0, 3, 1, 4, 2, 5)
    return grid.reshape(nx, ny, nz)


class ZfpLikeCompressor(Compressor):
    """Fixed-precision transform coder (zfp-like).

    Parameters
    ----------
    precision:
        Number of bit planes kept per cell (1–30).  Higher precision means
        lower error and larger output.
    """

    name = "zfp"

    def __init__(self, precision: int = 16) -> None:
        if not (1 <= int(precision) <= 30):
            raise ValueError(f"precision must be in [1, 30], got {precision}")
        self.precision = int(precision)

    # -- forward / inverse cell transform -------------------------------------

    @staticmethod
    def _forward_transform(cells: np.ndarray) -> np.ndarray:
        """Separable decorrelating transform applied along each cell axis."""
        out = cells.astype(np.int64)
        for axis in (1, 2, 3):
            out = ZfpLikeCompressor._lift(out, axis)
        return out

    @staticmethod
    def _inverse_transform(cells: np.ndarray) -> np.ndarray:
        out = cells.astype(np.int64)
        for axis in (3, 2, 1):
            out = ZfpLikeCompressor._unlift(out, axis)
        return out

    @staticmethod
    def _lift(arr: np.ndarray, axis: int) -> np.ndarray:
        """Integer Haar-style lifting along ``axis`` (length 4 → 2 levels)."""
        a = np.moveaxis(arr, axis, -1).copy()
        x0, x1, x2, x3 = (a[..., i].copy() for i in range(4))
        # Level 1: pairwise sums/differences.
        s0, d0 = x0 + x1, x0 - x1
        s1, d1 = x2 + x3, x2 - x3
        # Level 2 on the sums.
        ss, ds = s0 + s1, s0 - s1
        a[..., 0], a[..., 1], a[..., 2], a[..., 3] = ss, ds, d0, d1
        return np.moveaxis(a, -1, axis)

    @staticmethod
    def _unlift(arr: np.ndarray, axis: int) -> np.ndarray:
        a = np.moveaxis(arr, axis, -1).copy()
        ss, ds, d0, d1 = (a[..., i].copy() for i in range(4))
        s0 = (ss + ds) // 2
        s1 = (ss - ds) // 2
        x0 = (s0 + d0) // 2
        x1 = (s0 - d0) // 2
        x2 = (s1 + d1) // 2
        x3 = (s1 - d1) // 2
        a[..., 0], a[..., 1], a[..., 2], a[..., 3] = x0, x1, x2, x3
        return np.moveaxis(a, -1, axis)

    # -- public API --------------------------------------------------------------

    def compress(self, block: np.ndarray) -> CompressionResult:
        """Encode ``block`` with fixed-precision bit-plane truncation."""
        prepared = self._prepare(block)
        # Like the other coders, the recorded original size is that of the
        # *prepared* (float32/float64) block — the buffer actually encoded —
        # so ratios are comparable across compressors for any input dtype.
        original_nbytes = int(prepared.nbytes)
        arr = prepared.astype(np.float64)
        shape = tuple(arr.shape)
        padded = _pad_to_multiple(arr, _CELL)
        cells = _to_cells(padded)
        ncells = cells.shape[0]

        # Block-floating-point: common exponent per cell (clipped to the int8
        # range it is stored in, so compress and decompress use the same scale).
        maxabs = np.abs(cells).reshape(ncells, -1).max(axis=1)
        exponents = np.zeros(ncells, dtype=np.int32)
        nonzero = maxabs > 0
        exponents[nonzero] = np.ceil(np.log2(maxabs[nonzero])).astype(np.int32)
        exponents = np.clip(exponents, -127, 127)
        scale = np.ldexp(1.0, (self.precision - 2) - exponents)  # leave headroom
        ints = np.rint(cells * scale[:, None, None, None]).astype(np.int64)

        coeffs = self._forward_transform(ints)

        # Serialise: per-cell exponent (int8), then every transformed
        # coefficient zigzag-mapped and stored with its minimal byte length
        # (a nibble per coefficient records the length).  Smooth cells
        # concentrate their energy in a handful of coefficients, so their
        # AC coefficients need 0–1 bytes and the cell compresses well; noisy
        # cells keep 2–3 bytes per coefficient — this is where the coder's
        # content sensitivity (and its use as a relevance score) comes from.
        exp_bytes = exponents.astype(np.int8).tobytes()
        from repro.compress.bitplane import (  # local import to avoid a cycle at module load
            byte_lengths,
            pack_nibbles,
            zigzag_encode,
        )

        flat = coeffs.reshape(-1)
        zz = zigzag_encode(flat.astype(np.int64), 64)
        lengths = byte_lengths(zz, 8)
        length_stream = pack_nibbles(lengths)
        flat_bytes = zz.astype("<u8").view(np.uint8).reshape(flat.size, 8)
        body_parts = []
        for w in range(1, 9):
            mask = lengths == w
            if not np.any(mask):
                body_parts.append(b"")
                continue
            body_parts.append(np.ascontiguousarray(flat_bytes[mask, :w]).tobytes())

        header = _HEADER.pack(_MAGIC, 8, self.precision, 0, *shape)
        sizes = struct.pack("<8I", *(len(p) for p in body_parts))
        payload = header + sizes + exp_bytes + length_stream + b"".join(body_parts)
        return CompressionResult(
            payload=payload,
            original_nbytes=original_nbytes,
            shape=shape,
            dtype=str(np.asarray(block).dtype),
        )

    def compressed_size_batch(self, batch: np.ndarray) -> np.ndarray:
        """Encoded sizes of a stacked batch, without materialising payloads.

        Mirrors :meth:`compress` exactly — pad, cell split, block-floating-
        point quantisation, lifting transform, zigzag, byte-length
        classification — but runs every stage over the whole
        ``(nblocks * ncells, 4, 4, 4)`` cell stack at once and only sums the
        byte lengths instead of gathering payload bytes.
        """
        arr = self._prepare_batch(batch).astype(np.float64)
        nblocks = arr.shape[0]
        if nblocks == 0:
            return np.zeros(0, dtype=np.int64)
        padded = _pad_to_multiple_batch(arr, _CELL)
        cells = _to_cells_batch(padded)
        ncells = cells.shape[1]
        flat_cells = cells.reshape(nblocks * ncells, _CELL, _CELL, _CELL)

        maxabs = np.abs(flat_cells).reshape(nblocks * ncells, -1).max(axis=1)
        exponents = np.zeros(nblocks * ncells, dtype=np.int32)
        nonzero = maxabs > 0
        exponents[nonzero] = np.ceil(np.log2(maxabs[nonzero])).astype(np.int32)
        exponents = np.clip(exponents, -127, 127)
        scale = np.ldexp(1.0, (self.precision - 2) - exponents)
        ints = np.rint(flat_cells * scale[:, None, None, None]).astype(np.int64)

        coeffs = self._forward_transform(ints)

        from repro.compress.bitplane import byte_lengths, zigzag_encode

        zz = zigzag_encode(coeffs.reshape(nblocks, -1).astype(np.int64), 64)
        lengths = byte_lengths(zz, 8)
        ncoeffs = ncells * _CELL**3
        fixed = _HEADER.size + 32 + ncells + (ncoeffs + 1) // 2
        return fixed + lengths.sum(axis=1, dtype=np.int64)

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Reconstruct the block (lossy, error bounded by the precision)."""
        payload = result.payload
        magic, _, precision, _, nx, ny, nz = _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise ValueError("not a zfp-like payload")
        offset = _HEADER.size
        sizes = struct.unpack_from("<8I", payload, offset)
        offset += 32
        padded_shape = tuple(s + ((-s) % _CELL) for s in (nx, ny, nz))
        ncells = (
            (padded_shape[0] // _CELL)
            * (padded_shape[1] // _CELL)
            * (padded_shape[2] // _CELL)
        )
        exponents = np.frombuffer(payload, dtype=np.int8, count=ncells, offset=offset).astype(
            np.int32
        )
        offset += ncells

        from repro.compress.bitplane import unpack_nibbles, zigzag_decode

        ncoeffs = ncells * _CELL**3
        nibble_bytes = (ncoeffs + 1) // 2
        lengths = unpack_nibbles(payload[offset : offset + nibble_bytes], ncoeffs)
        offset += nibble_bytes

        zz = np.zeros(ncoeffs, dtype=np.uint64)
        for w in range(1, 9):
            size = sizes[w - 1]
            chunk = payload[offset : offset + size]
            offset += size
            mask = lengths == w
            n_sel = int(mask.sum())
            if n_sel == 0:
                continue
            raw = np.frombuffer(chunk, dtype=np.uint8).reshape(n_sel, w)
            full = np.zeros((n_sel, 8), dtype=np.uint8)
            full[:, :w] = raw
            zz[mask] = full.view("<u8").reshape(-1)

        flat = zigzag_decode(zz, 64)
        coeffs = flat.reshape(ncells, _CELL, _CELL, _CELL)
        ints = self._inverse_transform(coeffs)
        scale = np.ldexp(1.0, (precision - 2) - exponents)
        with np.errstate(divide="ignore", invalid="ignore"):
            cells = ints.astype(np.float64) / scale[:, None, None, None]
        padded = _from_cells(cells, padded_shape)
        out = padded[:nx, :ny, :nz]
        return out.astype(np.dtype(result.dtype))

    def error_bound(self, block: np.ndarray) -> float:
        """Worst-case absolute reconstruction error for ``block`` at this precision.

        The block-floating-point quantisation step for a cell with exponent
        ``e`` is ``2**(e - (precision - 2))``; the separable transform can
        amplify rounding by at most a small constant, folded in here.
        """
        arr = self._prepare(block).astype(np.float64)
        maxabs = float(np.abs(arr).max())
        if maxabs == 0.0:
            return 0.0
        exponent = int(np.ceil(np.log2(maxabs)))
        return 8.0 * 2.0 ** (exponent - (self.precision - 2))
