"""Lossless fpzip-like floating-point coder.

Pipeline (mirroring Lindstrom & Isenburg's FPZIP at a coarse granularity):

1. map floats to order-preserving unsigned integers;
2. 3-D Lorenzo prediction → residuals;
3. zigzag-map residuals to unsigned codes (small magnitude → small code);
4. entropy-light encoding: store each code's byte length (packed nibbles) and
   its significant little-endian bytes, grouped by length so the whole codec
   stays vectorised.

Smooth blocks produce mostly zero-length codes and compress by an order of
magnitude; turbulent blocks keep most of their bytes.  The format is fully
self-contained and :meth:`decompress` reconstructs the input bit-exactly.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compress.base import CompressionResult, Compressor
from repro.compress.bitplane import (
    byte_lengths,
    float_to_ordered_uint,
    ordered_uint_to_float,
    pack_nibbles,
    unpack_nibbles,
    zigzag_decode,
    zigzag_encode,
)
from repro.compress.predictors import (
    lorenzo_reconstruct,
    lorenzo_residuals,
    lorenzo_residuals_batch,
)

_MAGIC = b"FPZL"
_HEADER = struct.Struct("<4sBBHIII")  # magic, dtype code, reserved, pad, nx, ny, nz


def _dtype_code(dtype: np.dtype) -> int:
    if np.dtype(dtype) == np.float32:
        return 4
    if np.dtype(dtype) == np.float64:
        return 8
    raise ValueError(f"unsupported dtype {dtype}")


def _code_dtype(code: int) -> np.dtype:
    if code == 4:
        return np.dtype(np.float32)
    if code == 8:
        return np.dtype(np.float64)
    raise ValueError(f"unsupported dtype code {code}")


class FpzipLikeCompressor(Compressor):
    """Lossless Lorenzo-predictive coder (fpzip-like)."""

    name = "fpzip"

    def compress(self, block: np.ndarray) -> CompressionResult:
        """Encode ``block`` losslessly; see the module docstring for the format."""
        arr = self._prepare(block)
        dtype = arr.dtype
        bits = 32 if dtype == np.float32 else 64
        max_bytes = bits // 8

        codes = float_to_ordered_uint(arr)
        residuals = lorenzo_residuals(codes)
        zz = zigzag_encode(residuals.view(np.int32 if bits == 32 else np.int64), bits)
        flat = zz.reshape(-1)

        lengths = byte_lengths(flat, max_bytes)
        length_stream = pack_nibbles(lengths)

        # Group values by byte length; within a group keep original order so
        # decompression can scatter them back deterministically.
        flat_bytes = flat.astype("<u4" if bits == 32 else "<u8").view(np.uint8)
        flat_bytes = flat_bytes.reshape(flat.size, max_bytes)
        groups = []
        for nbytes in range(1, max_bytes + 1):
            mask = lengths == nbytes
            if not np.any(mask):
                groups.append(b"")
                continue
            groups.append(flat_bytes[mask, :nbytes].tobytes())

        header = _HEADER.pack(
            _MAGIC, _dtype_code(dtype), 0, 0, arr.shape[0], arr.shape[1], arr.shape[2]
        )
        group_sizes = struct.pack(f"<{max_bytes}I", *(len(g) for g in groups))
        payload = header + group_sizes + length_stream + b"".join(groups)
        return CompressionResult(
            payload=payload,
            original_nbytes=int(arr.nbytes),
            shape=tuple(arr.shape),
            dtype=str(dtype),
        )

    def compressed_size_batch(self, batch: np.ndarray) -> np.ndarray:
        """Encoded sizes of a stacked batch, without materialising payloads.

        The payload layout is header + group-size table + packed nibble
        lengths + the significant bytes of every code, so its size is fully
        determined by the per-code byte lengths.  Computing those lengths for
        the whole batch in one vectorised pass (ordered-uint mapping, batched
        Lorenzo residuals, zigzag, byte-length classification) yields sizes
        identical to :meth:`compress` at a fraction of the per-block Python
        overhead — this is the scoring hot path of the FPZIP metric.
        """
        arr = self._prepare_batch(batch)
        nblocks = arr.shape[0]
        if nblocks == 0:
            return np.zeros(0, dtype=np.int64)
        bits = 32 if arr.dtype == np.float32 else 64
        max_bytes = bits // 8
        count = int(arr[0].size)

        codes = float_to_ordered_uint(arr)
        residuals = lorenzo_residuals_batch(codes)
        zz = zigzag_encode(residuals.view(np.int32 if bits == 32 else np.int64), bits)
        lengths = byte_lengths(zz.reshape(nblocks, -1), max_bytes)

        fixed = _HEADER.size + 4 * max_bytes + (count + 1) // 2
        return fixed + lengths.sum(axis=1, dtype=np.int64)

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Bit-exact reconstruction of the original block."""
        payload = result.payload
        magic, dcode, _, _, nx, ny, nz = _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise ValueError("not an fpzip-like payload")
        dtype = _code_dtype(dcode)
        bits = 32 if dtype == np.float32 else 64
        max_bytes = bits // 8
        offset = _HEADER.size
        group_sizes = struct.unpack_from(f"<{max_bytes}I", payload, offset)
        offset += 4 * max_bytes

        count = nx * ny * nz
        nibble_bytes = (count + 1) // 2
        lengths = unpack_nibbles(payload[offset : offset + nibble_bytes], count)
        offset += nibble_bytes

        flat = np.zeros(count, dtype=np.uint32 if bits == 32 else np.uint64)
        for nbytes in range(1, max_bytes + 1):
            size = group_sizes[nbytes - 1]
            group = payload[offset : offset + size]
            offset += size
            mask = lengths == nbytes
            n_in_group = int(mask.sum())
            if n_in_group == 0:
                continue
            raw = np.frombuffer(group, dtype=np.uint8).reshape(n_in_group, nbytes)
            padded = np.zeros((n_in_group, max_bytes), dtype=np.uint8)
            padded[:, :nbytes] = raw
            values = padded.view("<u4" if bits == 32 else "<u8").reshape(n_in_group)
            flat[mask] = values

        residuals = zigzag_decode(flat, bits).view(np.uint32 if bits == 32 else np.uint64)
        codes = lorenzo_reconstruct(residuals.reshape(nx, ny, nz))
        values = ordered_uint_to_float(codes, dtype)
        return values.reshape(nx, ny, nz)
