"""Prediction schemes for the fpzip-like coder.

FPZIP (Lindstrom & Isenburg 2006) predicts each sample with the 3-D Lorenzo
predictor — the alternating-sign sum of the already-decoded neighbours of the
sample's "lower corner" cube — and encodes the prediction residuals.  Smooth
fields predict almost perfectly (tiny residuals, small output); turbulent
fields do not, which is exactly the content sensitivity the scoring metric
needs.
"""

from __future__ import annotations

import numpy as np


def _shift(arr: np.ndarray, dx: int, dy: int, dz: int) -> np.ndarray:
    """Shift ``arr`` by (dx, dy, dz) with zero padding (prior-sample access)."""
    out = np.zeros_like(arr)
    src = [slice(None)] * 3
    dst = [slice(None)] * 3
    for axis, d in enumerate((dx, dy, dz)):
        if d == 0:
            continue
        src[axis] = slice(0, arr.shape[axis] - d)
        dst[axis] = slice(d, None)
    out[tuple(dst)] = arr[tuple(src)]
    return out


def lorenzo_residuals(values: np.ndarray) -> np.ndarray:
    """First-order 3-D Lorenzo prediction residuals (computed modulo 2^bits).

    The residual at each point is the value minus the Lorenzo prediction from
    its seven causal neighbours.  Equivalently it is the mixed first
    difference along the three axes, which is what this vectorised
    implementation computes.  Input must be an unsigned integer array (the
    ordered-uint mapping of the floats); arithmetic wraps modulo the dtype.
    """
    v = np.asarray(values)
    if v.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {v.shape}")
    if v.dtype not in (np.uint32, np.uint64):
        raise ValueError(f"expected uint32/uint64 input, got {v.dtype}")
    r = v.copy()
    # Mixed difference: successively difference along each axis.  With
    # wrap-around arithmetic this equals v - Lorenzo_prediction.
    for axis in range(3):
        shifted = np.zeros_like(r)
        idx_src = [slice(None)] * 3
        idx_dst = [slice(None)] * 3
        idx_src[axis] = slice(0, r.shape[axis] - 1)
        idx_dst[axis] = slice(1, None)
        shifted[tuple(idx_dst)] = r[tuple(idx_src)]
        r = r - shifted
    return r


def lorenzo_residuals_batch(values: np.ndarray) -> np.ndarray:
    """Lorenzo residuals of a stacked ``(nblocks, sx, sy, sz)`` batch.

    Identical arithmetic to :func:`lorenzo_residuals` applied independently to
    every block: the mixed differences run along the three spatial axes only,
    so ``lorenzo_residuals_batch(batch)[i]`` equals
    ``lorenzo_residuals(batch[i])`` bit for bit.
    """
    v = np.asarray(values)
    if v.ndim != 4:
        raise ValueError(f"expected a 4-D batch, got shape {v.shape}")
    if v.dtype not in (np.uint32, np.uint64):
        raise ValueError(f"expected uint32/uint64 input, got {v.dtype}")
    r = v.copy()
    for axis in (1, 2, 3):
        shifted = np.zeros_like(r)
        idx_src = [slice(None)] * 4
        idx_dst = [slice(None)] * 4
        idx_src[axis] = slice(0, r.shape[axis] - 1)
        idx_dst[axis] = slice(1, None)
        shifted[tuple(idx_dst)] = r[tuple(idx_src)]
        r = r - shifted
    return r


def lorenzo_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`lorenzo_residuals` (cumulative sums along each axis)."""
    r = np.asarray(residuals)
    if r.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {r.shape}")
    if r.dtype not in (np.uint32, np.uint64):
        raise ValueError(f"expected uint32/uint64 input, got {r.dtype}")
    out = r.copy()
    for axis in range(3):
        # Cumulative sum with wrap-around in the original dtype.
        np.cumsum(out, axis=axis, dtype=out.dtype, out=out)
    return out


def delta_residuals(values: np.ndarray) -> np.ndarray:
    """Simple 1-D delta prediction over the flattened array (baseline predictor)."""
    v = np.asarray(values)
    if v.dtype not in (np.uint32, np.uint64):
        raise ValueError(f"expected uint32/uint64 input, got {v.dtype}")
    flat = v.reshape(-1)
    out = flat.copy()
    out[1:] = flat[1:] - flat[:-1]
    return out.reshape(v.shape)


def delta_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_residuals`."""
    r = np.asarray(residuals)
    if r.dtype not in (np.uint32, np.uint64):
        raise ValueError(f"expected uint32/uint64 input, got {r.dtype}")
    flat = r.reshape(-1).copy()
    np.cumsum(flat, dtype=flat.dtype, out=flat)
    return flat.reshape(r.shape)
