"""Common compressor interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_3d


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one block.

    Attributes
    ----------
    payload:
        The encoded byte string.
    original_nbytes:
        Size of the uncompressed input buffer.
    shape:
        Shape of the original array (needed for decompression).
    dtype:
        Dtype string of the original array.
    """

    payload: bytes
    original_nbytes: int
    shape: Tuple[int, int, int]
    dtype: str

    @property
    def compressed_nbytes(self) -> int:
        """Size of the encoded payload in bytes."""
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio ``original / compressed`` (higher = more compressible)."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes


class Compressor(abc.ABC):
    """Abstract floating-point block compressor."""

    #: Short name used by the metric registry (e.g. ``"fpzip"``).
    name: str = "compressor"

    @abc.abstractmethod
    def compress(self, block: np.ndarray) -> CompressionResult:
        """Compress a 3-D floating-point block."""

    @abc.abstractmethod
    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Reconstruct a block from a :class:`CompressionResult`."""

    def ratio(self, block: np.ndarray) -> float:
        """Compression ratio of ``block`` (no need to keep the payload)."""
        return self.compress(block).ratio

    def compressed_size(self, block: np.ndarray) -> int:
        """Compressed size of ``block`` in bytes."""
        return self.compress(block).compressed_nbytes

    def compressed_size_batch(self, batch: np.ndarray) -> np.ndarray:
        """Compressed payload sizes of a stacked ``(nblocks, sx, sy, sz)`` batch.

        Returns an int64 array such that ``compressed_size_batch(batch)[i]``
        equals ``compress(batch[i]).compressed_nbytes`` exactly.  The base
        implementation compresses block by block; coders whose encoding cost
        can be computed without materialising the payload override this with
        a vectorised single-pass implementation (the scoring hot path of the
        compressor-based metrics).
        """
        arr = self._prepare_batch(batch)
        return np.array(
            [self.compress(arr[i]).compressed_nbytes for i in range(arr.shape[0])],
            dtype=np.int64,
        )

    # -- shared validation -------------------------------------------------

    @staticmethod
    def _prepare(block: np.ndarray) -> np.ndarray:
        """Validate and normalise an input block (3-D float32/float64)."""
        arr = ensure_3d(block, "block")
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        if not np.all(np.isfinite(arr)):
            raise ValueError("block contains non-finite values")
        return np.ascontiguousarray(arr)

    @staticmethod
    def _prepare_batch(batch: np.ndarray) -> np.ndarray:
        """Validate and normalise a stacked batch (4-D float32/float64).

        Applies the exact dtype policy of :meth:`_prepare` to the whole batch
        so that batched results match the per-block path bitwise.
        """
        arr = np.asarray(batch)
        if arr.ndim != 4:
            raise ValueError(
                f"batch must be 4-D (nblocks, sx, sy, sz), got shape {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        if not np.all(np.isfinite(arr)):
            raise ValueError("batch contains non-finite values")
        return np.ascontiguousarray(arr)
