"""Byte-mask + LZ77 floating-point coder (lz-like).

The paper's "LZ" scorer follows Bautista-Gomez & Cappello (2013): improve
dictionary compression of floats by first splitting them into byte planes
("binary masks") so that the slowly-varying high-order bytes form long
repetitive runs, then run a dictionary coder over the reorganised stream.

This module provides:

* :func:`lz77_compress` / :func:`lz77_decompress` — a from-scratch LZ77 with a
  hash-chain match finder and a compact (literal-run, match) token format;
* :class:`LzLikeCompressor` — XOR-delta per byte plane followed by LZ77 on the
  plane-concatenated stream.

Pure-Python LZ77 is not fast; the compressor therefore supports scoring from
a deterministic sample of the block (``sample_limit``), which is how the LZ
metric keeps its cost comparable to the other metrics.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compress.base import CompressionResult, Compressor

_MAGIC = b"LZBM"
_HEADER = struct.Struct("<4sBBHIIIQ")  # magic, dtype code, planes, pad, nx, ny, nz, nvalues

_MIN_MATCH = 4
# The match token stores ``length - MIN_MATCH + 1`` in one byte, so the
# longest representable match is MIN_MATCH + 254.
_MAX_MATCH = _MIN_MATCH + 254
_WINDOW = 1 << 14
_HASH_BITS = 15


def _hash4(data: bytes, pos: int) -> int:
    """Hash of the 4 bytes starting at ``pos`` (assumes pos+4 <= len)."""
    value = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return (value * 2654435761) >> (32 - _HASH_BITS) & ((1 << _HASH_BITS) - 1)


def _hash_all(data: bytes) -> list:
    """Hashes of every 4-byte window of ``data`` in one vectorised pass.

    ``_hash_all(data)[pos] == _hash4(data, pos)`` for every valid position;
    precomputing them removes the per-position byte assembly that used to
    dominate the compression loop.  Returned as a plain list because scalar
    list indexing is considerably faster than NumPy scalar indexing inside
    the remaining Python loop.
    """
    n = len(data)
    if n < 4:
        return []
    du = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    values = (
        du[: n - 3]
        | (du[1 : n - 2] << np.uint32(8))
        | (du[2 : n - 1] << np.uint32(16))
        | (du[3:] << np.uint32(24))
    )
    hashes = (values.astype(np.uint64) * np.uint64(2654435761)) >> np.uint64(
        32 - _HASH_BITS
    ) & np.uint64((1 << _HASH_BITS) - 1)
    return hashes.tolist()


#: Match lengths below this are cheaper to verify byte by byte than through a
#: NumPy slice comparison; both paths compute the identical greedy length.
_VECTOR_MATCH_THRESHOLD = 32


def lz77_compress(data: bytes) -> bytes:
    """Compress ``data`` with a greedy hash-chain LZ77.

    Token stream format (repeated until the input is consumed)::

        <literal_len: varint> <literal bytes>
        <match_len: 1 byte, 0 = end> <distance: 2 bytes little-endian>

    ``match_len`` stores ``length - MIN_MATCH + 1``; a value of 0 terminates
    the stream (no final match).
    """
    n = len(data)
    out = bytearray()
    head = {}  # hash -> most recent position
    pos = 0
    literal_start = 0
    hashes = _hash_all(data)
    d = np.frombuffer(data, dtype=np.uint8)

    def emit_literals(end: int) -> None:
        count = end - literal_start
        # varint literal length
        c = count
        while True:
            byte = c & 0x7F
            c >>= 7
            if c:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        out.extend(data[literal_start:end])

    while pos < n:
        match_len = 0
        match_dist = 0
        if pos + _MIN_MATCH <= n:
            h = hashes[pos]
            candidate = head.get(h)
            if candidate is not None and pos - candidate <= _WINDOW:
                # Extend the match as far as possible (greedy first mismatch).
                maxlen = min(_MAX_MATCH, n - pos)
                if maxlen >= _VECTOR_MATCH_THRESHOLD:
                    neq = d[candidate : candidate + maxlen] != d[pos : pos + maxlen]
                    first = int(np.argmax(neq))
                    length = first if neq[first] else maxlen
                else:
                    length = 0
                    while (
                        length < maxlen
                        and data[candidate + length] == data[pos + length]
                    ):
                        length += 1
                if length >= _MIN_MATCH:
                    match_len = length
                    match_dist = pos - candidate
            head[h] = pos
        if match_len:
            emit_literals(pos)
            out.append(match_len - _MIN_MATCH + 1)
            out.extend(struct.pack("<H", match_dist))
            # Insert hashes for a few positions inside the match to help later matches.
            end = pos + match_len
            step = max(1, match_len // 8)
            p = pos + 1
            while p + _MIN_MATCH <= min(end, n) :
                head[hashes[p]] = p
                p += step
            pos = end
            literal_start = pos
        else:
            pos += 1
    emit_literals(n)
    out.append(0)  # terminating match token
    out.extend(b"\x00\x00")
    return bytes(out)


def lz77_decompress(payload: bytes) -> bytes:
    """Inverse of :func:`lz77_compress`."""
    out = bytearray()
    pos = 0
    n = len(payload)
    while pos < n:
        # varint literal length
        shift = 0
        count = 0
        while True:
            byte = payload[pos]
            pos += 1
            count |= (byte & 0x7F) << shift
            if byte & 0x80:
                shift += 7
            else:
                break
        out.extend(payload[pos : pos + count])
        pos += count
        if pos >= n:
            break
        token = payload[pos]
        pos += 1
        (dist,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        if token == 0:
            break
        length = token + _MIN_MATCH - 1
        start = len(out) - dist
        if start < 0:
            raise ValueError("corrupt LZ77 stream: distance beyond output")
        for i in range(length):
            out.append(out[start + i])
    return bytes(out)


class LzLikeCompressor(Compressor):
    """Byte-plane masking + LZ77 coder.

    Parameters
    ----------
    sample_limit:
        Maximum number of float values actually fed to the LZ77 coder when
        scoring.  ``None`` compresses the whole block (used by the round-trip
        tests); the default keeps per-block scoring costs bounded, the ratio
        being estimated from a deterministic stride sample.
    """

    name = "lz"

    def __init__(self, sample_limit: int | None = 16384) -> None:
        if sample_limit is not None and sample_limit < 64:
            raise ValueError(f"sample_limit must be >= 64 or None, got {sample_limit}")
        self.sample_limit = sample_limit

    # -- byte-plane (binary mask) reorganisation --------------------------------

    @staticmethod
    def _to_planes(arr: np.ndarray) -> Tuple[bytes, int]:
        """Split the float buffer into XOR-delta byte planes."""
        raw = arr.reshape(-1)
        nbytes_per = raw.dtype.itemsize
        as_bytes = raw.view(np.uint8).reshape(raw.size, nbytes_per)
        planes = []
        for b in range(nbytes_per):
            plane = as_bytes[:, b]
            # XOR-delta within the plane: repeated values become zero runs.
            delta = plane.copy()
            delta[1:] = plane[1:] ^ plane[:-1]
            planes.append(delta.tobytes())
        return b"".join(planes), nbytes_per

    @staticmethod
    def _to_planes_batch(arr: np.ndarray) -> list:
        """Per-block XOR-delta byte-plane streams of a 4-D batch.

        One vectorised pass builds every block's plane-concatenated stream;
        ``_to_planes_batch(batch)[i]`` equals ``_to_planes(batch[i])[0]``
        byte for byte.
        """
        nblocks = arr.shape[0]
        flat = np.ascontiguousarray(arr).reshape(nblocks, -1)
        itemsize = flat.dtype.itemsize
        nvalues = flat.shape[1]
        as_bytes = flat.view(np.uint8).reshape(nblocks, nvalues, itemsize)
        planes = np.ascontiguousarray(as_bytes.transpose(0, 2, 1))
        delta = planes.copy()
        delta[:, :, 1:] = planes[:, :, 1:] ^ planes[:, :, :-1]
        return [delta[i].tobytes() for i in range(nblocks)]

    @staticmethod
    def _from_planes(data: bytes, nvalues: int, nplanes: int, dtype: np.dtype) -> np.ndarray:
        planes = np.frombuffer(data, dtype=np.uint8).reshape(nplanes, nvalues)
        undeltaed = np.empty_like(planes)
        for p in range(nplanes):
            undeltaed[p] = np.bitwise_xor.accumulate(planes[p])
        as_bytes = undeltaed.T.copy()
        return as_bytes.reshape(-1).view(dtype)[:nvalues].copy()

    # -- public API ------------------------------------------------------------------

    def compress(self, block: np.ndarray) -> CompressionResult:
        """Compress the full block losslessly (no sampling)."""
        arr = self._prepare(block)
        if arr.dtype == np.float64:
            dcode = 8
        else:
            dcode = 4
        stream, nplanes = self._to_planes(arr)
        compressed = lz77_compress(stream)
        header = _HEADER.pack(
            _MAGIC, dcode, nplanes, 0, arr.shape[0], arr.shape[1], arr.shape[2], arr.size
        )
        return CompressionResult(
            payload=header + compressed,
            original_nbytes=int(arr.nbytes),
            shape=tuple(arr.shape),
            dtype=str(arr.dtype),
        )

    def compressed_size_batch(self, batch: np.ndarray) -> np.ndarray:
        """Encoded sizes of a stacked batch.

        The byte-plane reorganisation (the vectorisable half of the coder) is
        done for the whole batch at once; the LZ77 token stream itself is
        inherently sequential per block, so each stream is measured with the
        NumPy-accelerated :func:`lz77_compress`.  Sizes equal
        ``compress(batch[i]).compressed_nbytes`` exactly.
        """
        arr = self._prepare_batch(batch)
        nblocks = arr.shape[0]
        if nblocks == 0:
            return np.zeros(0, dtype=np.int64)
        streams = self._to_planes_batch(arr)
        return np.array(
            [_HEADER.size + len(lz77_compress(s)) for s in streams], dtype=np.int64
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Bit-exact reconstruction of the original block."""
        payload = result.payload
        magic, dcode, nplanes, _, nx, ny, nz, nvalues = _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise ValueError("not an lz-like payload")
        dtype = np.dtype(np.float64 if dcode == 8 else np.float32)
        stream = lz77_decompress(payload[_HEADER.size :])
        values = self._from_planes(stream, nvalues, nplanes, dtype)
        return values.reshape(nx, ny, nz)

    def ratio(self, block: np.ndarray) -> float:
        """Estimated compression ratio, computed on a deterministic sample."""
        arr = self._prepare(block)
        flat = arr.reshape(-1)
        if self.sample_limit is not None and flat.size > self.sample_limit:
            stride = int(np.ceil(flat.size / self.sample_limit))
            flat = np.ascontiguousarray(flat[::stride])
        sample = flat.reshape(flat.size, 1, 1)
        result = self.compress(sample)
        return result.ratio
