"""Floating-point compressors used as block-relevance scorers.

The paper evaluates compression algorithms (FPZIP, ZFP, LZ-with-binary-masks)
as generic block-scoring metrics: the intuition is that the compressed size of
a block correlates with its information content, and compressors need no
tuning (no histogram range/bin count).  The original C libraries are not
available here, so this package implements pure-NumPy coders with the same
*structure* and, crucially, the same content sensitivity:

* :class:`FpzipLikeCompressor` — lossless: monotone float→int mapping,
  3-D Lorenzo prediction, zigzag residuals, byte-length-grouped encoding.
* :class:`ZfpLikeCompressor` — lossy fixed-precision: 4×4×4 cells,
  block-floating-point + separable lifting transform, bit-plane truncation.
* :class:`LzLikeCompressor` — byte-plane splitting masks (à la Bautista-Gomez
  & Cappello 2013) followed by a from-scratch LZ77 coder.

All compressors share the :class:`Compressor` interface; ``ratio(block)`` is
what the scoring metric consumes.
"""

from repro.compress.base import CompressionResult, Compressor
from repro.compress.predictors import lorenzo_residuals, lorenzo_reconstruct
from repro.compress.bitplane import (
    float_to_ordered_uint,
    ordered_uint_to_float,
    zigzag_encode,
    zigzag_decode,
)
from repro.compress.fpzip_like import FpzipLikeCompressor
from repro.compress.zfp_like import ZfpLikeCompressor
from repro.compress.lz_like import LzLikeCompressor, lz77_compress, lz77_decompress

__all__ = [
    "Compressor",
    "CompressionResult",
    "lorenzo_residuals",
    "lorenzo_reconstruct",
    "float_to_ordered_uint",
    "ordered_uint_to_float",
    "zigzag_encode",
    "zigzag_decode",
    "FpzipLikeCompressor",
    "ZfpLikeCompressor",
    "LzLikeCompressor",
    "lz77_compress",
    "lz77_decompress",
]
