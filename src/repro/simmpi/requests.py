"""Non-blocking communication requests for the SPMD runtime."""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional


class Request:
    """Handle for a non-blocking send or receive.

    Mirrors the mpi4py ``Request`` surface needed by the paper's pipeline
    (the redistribution step posts a series of non-blocking receives and
    sends, then waits for all of them).
    """

    def __init__(self, kind: str, resolve: Callable[[Optional[float]], Any]) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"kind must be 'send' or 'recv', got {kind!r}")
        self.kind = kind
        self._resolve = resolve
        self._done = False
        self._value: Any = None
        self._lock = threading.Lock()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the operation completes; return the received payload.

        Send requests return ``None``.  Raises ``TimeoutError`` if ``timeout``
        elapses first.
        """
        with self._lock:
            if self._done:
                return self._value
        value = self._resolve(timeout)
        with self._lock:
            self._done = True
            self._value = value
        return value

    def test(self) -> bool:
        """Non-blocking completion check.

        Returns True if the operation has completed (after which
        :meth:`wait` returns immediately).
        """
        with self._lock:
            if self._done:
                return True
        try:
            value = self._resolve(0.0)
        except TimeoutError:
            return False
        with self._lock:
            self._done = True
            self._value = value
        return True

    @property
    def done(self) -> bool:
        """Whether the request has already been completed by wait()/test()."""
        with self._lock:
            return self._done


def waitall(requests) -> list:
    """Wait for all ``requests``; return their values in order."""
    return [req.wait() for req in requests]
