"""Thread- and process-based SPMD runtime.

:class:`SimRuntime` runs the same Python function once per virtual rank,
handing every rank a communicator with mpi4py-lowercase semantics.  This
gives library users a programming model that looks like real MPI code (the
paper's pipeline is an SPMD program) without requiring an MPI installation.

Two execution modes share the same ``run(func, ...)`` API:

* ``mode="thread"`` (default) — one thread per rank with a
  :class:`~repro.simmpi.rankcomm.RankCommunicator` over shared memory.
  Cheap to spin up, payloads shared for free, but GIL-bound rank code
  serialises;
* ``mode="process"`` — one OS process per rank with a
  :class:`~repro.simmpi.processcomm.ProcessRankCommunicator` over
  ``multiprocessing`` queues.  Rank code truly runs concurrently across
  cores; ``func``'s arguments, return value, and any exception must be
  picklable (unpicklable ones are reported as
  :class:`~repro.simmpi.processcomm.RemoteRankError`).

It is intended for modest rank counts (tests and examples use 4–16 ranks);
large-scale experiments use the driver-side
:class:`~repro.simmpi.communicator.BSPCommunicator` instead.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simmpi.processcomm import RemoteRankError, _process_rank_main
from repro.simmpi.rankcomm import RankCommunicator, _SharedState


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    value: Any = None
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True if the rank completed without raising."""
        return self.exception is None


class SPMDError(RuntimeError):
    """Raised when one or more ranks of an SPMD run failed."""

    def __init__(self, failures: List[RankResult]) -> None:
        self.failures = failures
        msgs = "; ".join(f"rank {f.rank}: {f.exception!r}" for f in failures)
        super().__init__(f"{len(failures)} rank(s) failed: {msgs}")


class SimRuntime:
    """Runs SPMD functions over ``nranks`` virtual ranks.

    Parameters
    ----------
    nranks:
        Number of virtual ranks.
    timeout:
        Per-collective timeout handed to every rank's communicator.
    join_grace:
        Extra seconds granted beyond ``timeout`` for the whole run to wind
        down before hung ranks are reported.  The grace is shared by all
        ranks (one absolute deadline), so a run with N hung ranks still
        fails after ``timeout + join_grace`` seconds, not N times that.
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module docstring
        for the trade-off.
    """

    MODES: Tuple[str, ...] = ("thread", "process")

    def __init__(
        self,
        nranks: int,
        timeout: float = 60.0,
        join_grace: float = 5.0,
        mode: str = "thread",
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if join_grace < 0:
            raise ValueError(f"join_grace must be >= 0, got {join_grace}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.nranks = int(nranks)
        self.timeout = float(timeout)
        self.join_grace = float(join_grace)
        self.mode = mode

    def run(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Execute ``func(comm, *args, **kwargs)`` on every rank.

        ``comm`` is the rank's communicator (thread- or process-flavoured
        depending on :attr:`mode`; both expose the same API).  Returns the
        list of per-rank return values (indexed by rank).  If any rank
        raises or hangs, an :class:`SPMDError` carrying *all* failures —
        recorded exceptions and synthetic ``TimeoutError``s for hung ranks
        alike — is raised instead.
        """
        if self.mode == "process":
            return self._run_processes(func, args, kwargs)
        return self._run_threads(func, args, kwargs)

    # -- thread mode --------------------------------------------------------

    def _run_threads(
        self, func: Callable[..., Any], args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> List[Any]:
        shared = _SharedState(self.nranks)
        results: List[RankResult] = [RankResult(rank=r) for r in range(self.nranks)]

        def worker(rank: int) -> None:
            comm = RankCommunicator(rank, shared, timeout=self.timeout)
            try:
                results[rank].value = func(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagated via SPMDError
                results[rank].exception = exc

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
            for r in range(self.nranks)
        ]
        for t in threads:
            t.start()
        # One absolute deadline shared by every join: each thread only waits
        # for the time remaining, so N hung ranks cost timeout + grace once —
        # not N separate full timeouts.
        deadline = time.monotonic() + self.timeout + self.join_grace
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        hung = [r for r, t in enumerate(threads) if t.is_alive()]
        failures = [r for r in results if not r.ok]
        if hung:
            # A hung rank must not mask the real failures recorded so far —
            # the raiser is usually the root cause and the hang its symptom
            # (e.g. a sibling stuck in a collective the raiser abandoned).
            already_failed = {f.rank for f in failures}
            failures.extend(
                RankResult(rank=r, exception=TimeoutError("rank did not terminate"))
                for r in hung
                if r not in already_failed
            )
            failures.sort(key=lambda f: f.rank)
        if failures:
            raise SPMDError(failures)
        return [r.value for r in results]

    # -- process mode -------------------------------------------------------

    def _run_processes(
        self, func: Callable[..., Any], args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> List[Any]:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        inboxes = [ctx.Queue() for _ in range(self.nranks)]
        barrier = ctx.Barrier(self.nranks)
        result_queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_process_rank_main,
                args=(
                    r,
                    self.nranks,
                    inboxes,
                    barrier,
                    self.timeout,
                    result_queue,
                    func,
                    args,
                    kwargs,
                ),
                name=f"simmpi-rank-{r}",
                daemon=True,
            )
            for r in range(self.nranks)
        ]
        for p in procs:
            p.start()

        deadline = time.monotonic() + self.timeout + self.join_grace
        reported: Dict[int, RankResult] = {}
        while len(reported) < self.nranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                rank, ok, payload = result_queue.get(timeout=min(remaining, 0.25))
            except queue_module.Empty:
                # All processes dead with nothing queued: no more results
                # will ever arrive; stop waiting out the full deadline.
                if not any(p.is_alive() for p in procs):
                    break
                continue
            reported[rank] = RankResult(
                rank=rank,
                value=payload if ok else None,
                exception=None if ok else payload,
            )

        hung: List[int] = []
        for r, p in enumerate(procs):
            p.join(timeout=max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
                p.join(1.0)
                hung.append(r)

        failures = [res for res in reported.values() if not res.ok]
        for r in range(self.nranks):
            if r in reported:
                continue
            if r in hung:
                failures.append(
                    RankResult(rank=r, exception=TimeoutError("rank did not terminate"))
                )
            else:
                failures.append(
                    RankResult(
                        rank=r,
                        exception=RemoteRankError(
                            f"rank exited with code {procs[r].exitcode} "
                            "without reporting a result"
                        ),
                    )
                )
        if failures:
            failures.sort(key=lambda f: f.rank)
            raise SPMDError(failures)
        return [reported[r].value for r in range(self.nranks)]
