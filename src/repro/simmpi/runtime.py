"""Thread-based SPMD runtime.

:class:`SimRuntime` runs the same Python function once per virtual rank, each
in its own thread, handing every rank a
:class:`~repro.simmpi.rankcomm.RankCommunicator`.  This gives library users a
programming model that looks like real MPI code (the paper's pipeline is an
SPMD program) without requiring an MPI installation.

It is intended for modest rank counts (tests and examples use 4–16 ranks);
large-scale experiments use the driver-side
:class:`~repro.simmpi.communicator.BSPCommunicator` instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.simmpi.rankcomm import RankCommunicator, _SharedState


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    value: Any = None
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True if the rank completed without raising."""
        return self.exception is None


class SPMDError(RuntimeError):
    """Raised when one or more ranks of an SPMD run failed."""

    def __init__(self, failures: List[RankResult]) -> None:
        self.failures = failures
        msgs = "; ".join(f"rank {f.rank}: {f.exception!r}" for f in failures)
        super().__init__(f"{len(failures)} rank(s) failed: {msgs}")


class SimRuntime:
    """Runs SPMD functions over ``nranks`` virtual ranks (one thread each).

    Parameters
    ----------
    nranks:
        Number of virtual ranks.
    timeout:
        Per-collective timeout handed to every rank's communicator.
    join_grace:
        Extra seconds granted beyond ``timeout`` for the whole run to wind
        down before hung ranks are reported.  The grace is shared by all
        ranks (one absolute deadline), so a run with N hung ranks still
        fails after ``timeout + join_grace`` seconds, not N times that.
    """

    def __init__(
        self, nranks: int, timeout: float = 60.0, join_grace: float = 5.0
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if join_grace < 0:
            raise ValueError(f"join_grace must be >= 0, got {join_grace}")
        self.nranks = int(nranks)
        self.timeout = float(timeout)
        self.join_grace = float(join_grace)

    def run(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Execute ``func(comm, *args, **kwargs)`` on every rank.

        ``comm`` is the rank's :class:`RankCommunicator`.  Returns the list of
        per-rank return values (indexed by rank).  If any rank raises, an
        :class:`SPMDError` carrying all failures is raised instead.
        """
        shared = _SharedState(self.nranks)
        results: List[RankResult] = [RankResult(rank=r) for r in range(self.nranks)]

        def worker(rank: int) -> None:
            comm = RankCommunicator(rank, shared, timeout=self.timeout)
            try:
                results[rank].value = func(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagated via SPMDError
                results[rank].exception = exc

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
            for r in range(self.nranks)
        ]
        for t in threads:
            t.start()
        # One absolute deadline shared by every join: each thread only waits
        # for the time remaining, so N hung ranks cost timeout + grace once —
        # not N separate full timeouts.
        deadline = time.monotonic() + self.timeout + self.join_grace
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        hung = [t for t in threads if t.is_alive()]
        if hung:
            raise SPMDError(
                [
                    RankResult(rank=i, exception=TimeoutError("rank did not terminate"))
                    for i, t in enumerate(threads)
                    if t.is_alive()
                ]
            )
        failures = [r for r in results if not r.ok]
        if failures:
            raise SPMDError(failures)
        return [r.value for r in results]
