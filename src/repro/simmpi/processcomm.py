"""Per-rank communicator for the process-based SPMD runtime.

Process-mode twin of :mod:`repro.simmpi.rankcomm`: each virtual rank runs in
its own **OS process** (so GIL-bound rank code truly executes concurrently)
and talks through a :class:`ProcessRankCommunicator` exposing the same
mpi4py-lowercase API as the thread-mode :class:`RankCommunicator`.

Plumbing differences from the thread runtime, which shares one address
space:

* point-to-point traffic flows through one ``multiprocessing.Queue`` inbox
  per rank; envelopes are ``(src, tag, payload)`` triples and a per-rank
  stash preserves arrival order for messages received while waiting for a
  different ``(source, tag)`` channel;
* there are no shared staging slots, so the collectives are built from
  point-to-point messages on reserved negative tags (user code uses
  non-negative tags, mirroring MPI's reserved-tag convention) — the fan-in /
  fan-out shapes match the cost model's tree formulas in spirit, while the
  *semantics* (fold order, root conventions, validation errors) match the
  thread communicator exactly;
* the barrier is a ``multiprocessing.Barrier``; a timeout surfaces as the
  same ``TimeoutError`` the thread runtime raises.
"""

from __future__ import annotations

import collections
import pickle
import queue
import time
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.simmpi.requests import Request

__all__ = ["ProcessRankCommunicator", "RemoteRankError"]

# Reserved tags for the message-built collectives.  User tags are
# non-negative, so internal traffic can never collide with user traffic on
# the same (dst, src) channel.
_TAG_BCAST = -1
_TAG_GATHER = -2
_TAG_SCATTER = -3
_TAG_ALLTOALL = -4
_TAG_AGATHER = -5
_TAG_ABCAST = -6


class RemoteRankError(RuntimeError):
    """Stand-in for a worker-side failure that cannot cross the process
    boundary as-is (unpicklable exception or result, hard crash)."""


class ProcessRankCommunicator:
    """The view one virtual rank (an OS process) has of the communicator.

    Parameters
    ----------
    rank, nranks:
        This process's rank and the communicator size.
    inboxes:
        One ``multiprocessing.Queue`` per rank; ``inboxes[r]`` is rank
        ``r``'s receive queue.  Every rank may put into any inbox.
    barrier:
        A ``multiprocessing.Barrier`` sized for ``nranks``.
    timeout:
        Per-operation timeout in seconds (same contract as the thread
        communicator).
    """

    def __init__(
        self,
        rank: int,
        nranks: int,
        inboxes: Sequence[Any],
        barrier: Any,
        timeout: float = 60.0,
    ) -> None:
        self._rank = int(rank)
        self._nranks = int(nranks)
        self._inboxes = list(inboxes)
        self._barrier = barrier
        self._timeout = float(timeout)
        # Envelopes that arrived while waiting on a different channel.
        self._stash: Dict[Tuple[int, int], Deque[Any]] = collections.defaultdict(
            collections.deque
        )

    # -- introspection (mpi4py naming) ------------------------------------

    def Get_rank(self) -> int:
        """Rank of the calling virtual process."""
        return self._rank

    def Get_size(self) -> int:
        """Number of virtual processes in the communicator."""
        return self._nranks

    rank = property(Get_rank)
    size = property(Get_size)

    # -- point to point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (buffered: enqueues and returns)."""
        self._check_rank(dest)
        self._inboxes[dest].put((self._rank, tag, obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from ``source``."""
        self._check_rank(source)
        return self._recv(source, tag, self._timeout)

    def _recv(self, source: int, tag: int, timeout: float) -> Any:
        channel = (source, tag)
        stashed = self._stash.get(channel)
        if stashed:
            return stashed.popleft()
        deadline = time.monotonic() + timeout
        inbox = self._inboxes[self._rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self._rank}: recv from {source} tag {tag} timed out"
                )
            try:
                src, msg_tag, payload = inbox.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(
                    f"rank {self._rank}: recv from {source} tag {tag} timed out"
                ) from None
            if (src, msg_tag) == channel:
                return payload
            self._stash[(src, msg_tag)].append(payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (buffered semantics)."""
        self.send(obj, dest, tag)
        return Request("send", lambda timeout: None)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; the payload is produced by ``wait()``."""
        self._check_rank(source)

        def resolve(timeout: Optional[float]) -> Any:
            t = self._timeout if timeout is None else timeout
            return self._recv(source, tag, max(t, 1e-9))

        return Request("recv", resolve)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send to ``dest`` and receive from ``source``."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks."""
        try:
            self._barrier.wait(timeout=self._timeout)
        except Exception:
            raise TimeoutError(
                f"rank {self._rank}: barrier timed out or broke"
            ) from None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks."""
        return self._bcast(obj, root, _TAG_BCAST)

    def _bcast(self, obj: Any, root: int, tag: int) -> Any:
        self._check_rank(root)
        if self._rank == root:
            for dest in range(self._nranks):
                if dest != root:
                    self.send(obj, dest, tag)
            return obj
        return self._recv(root, tag, self._timeout)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (others get ``None``)."""
        return self._gather(obj, root, _TAG_GATHER)

    def _gather(self, obj: Any, root: int, tag: int) -> Optional[List[Any]]:
        self._check_rank(root)
        if self._rank != root:
            self.send(obj, root, tag)
            return None
        values: List[Any] = [None] * self._nranks
        values[root] = obj
        for src in range(self._nranks):
            if src != root:
                values[src] = self._recv(src, tag, self._timeout)
        return values

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank on every rank."""
        gathered = self._gather(obj, 0, _TAG_AGATHER)
        return self._bcast(gathered, 0, _TAG_ABCAST)

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Scatter ``objs`` (only meaningful at ``root``) so rank r gets objs[r]."""
        self._check_rank(root)
        if self._rank == root:
            if objs is None or len(objs) != self._nranks:
                raise ValueError("root must provide one object per rank")
            for dest in range(self._nranks):
                if dest != root:
                    self.send(objs[dest], dest, _TAG_SCATTER)
            return objs[root]
        return self._recv(root, _TAG_SCATTER, self._timeout)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any:
        """Reduce per-rank objects with ``op`` (default sum) at ``root``."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        return self._fold(gathered, op)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce per-rank objects with ``op`` (default sum) on every rank."""
        gathered = self.allgather(obj)
        return self._fold(gathered, op)

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Each rank provides one object per destination; receives one per source."""
        if len(objs) != self._nranks:
            raise ValueError(
                f"alltoall needs {self._nranks} objects, got {len(objs)}"
            )
        for dest in range(self._nranks):
            if dest != self._rank:
                self.send(objs[dest], dest, _TAG_ALLTOALL)
        received: List[Any] = [None] * self._nranks
        received[self._rank] = objs[self._rank]
        for src in range(self._nranks):
            if src != self._rank:
                received[src] = self._recv(src, _TAG_ALLTOALL, self._timeout)
        return received

    def scan(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Inclusive prefix reduction over ranks 0..self."""
        gathered = self.allgather(obj)
        return self._fold(gathered[: self._rank + 1], op)

    # -- helpers -----------------------------------------------------------------

    def _fold(self, values: List[Any], op: Optional[Callable[[Any, Any], Any]]) -> Any:
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self._nranks):
            raise ValueError(f"rank {rank} out of range [0, {self._nranks})")


def _portable_failure(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a :class:`RemoteRankError`."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RemoteRankError(f"{type(exc).__name__}: {exc}")


def _process_rank_main(
    rank: int,
    nranks: int,
    inboxes: Sequence[Any],
    barrier: Any,
    timeout: float,
    result_queue: Any,
    func: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
) -> None:
    """Entry point of one rank process: run ``func`` and report the outcome.

    The outcome envelope is ``(rank, ok, payload)``; unpicklable results and
    exceptions are replaced by :class:`RemoteRankError` so the envelope
    itself always crosses the boundary.
    """
    comm = ProcessRankCommunicator(rank, nranks, inboxes, barrier, timeout)
    try:
        value = func(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported via SPMDError
        result_queue.put((rank, False, _portable_failure(exc)))
        return
    try:
        pickle.dumps(value)
    except Exception as exc:
        result_queue.put(
            (
                rank,
                False,
                RemoteRankError(
                    f"rank {rank} returned an unpicklable value "
                    f"({type(value).__name__}): {exc}"
                ),
            )
        )
    else:
        result_queue.put((rank, True, value))
