"""Per-rank communicator for the thread-based SPMD runtime.

Each virtual rank executing inside :class:`~repro.simmpi.runtime.SimRuntime`
receives a :class:`RankCommunicator` whose API follows mpi4py's lowercase
(pickle-based) methods: ``send``/``recv``/``isend``/``irecv``, ``bcast``,
``gather``, ``allgather``, ``scatter``, ``reduce``, ``allreduce``,
``alltoall``, ``barrier``, and ``scan``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simmpi.requests import Request

_DEFAULT_TIMEOUT = 60.0


class _SharedState:
    """State shared by all ranks of one runtime: mailboxes and rendezvous slots."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        # mailboxes[(dst, src, tag)] -> queue of payloads
        self.mailboxes: Dict[Tuple[int, int, int], "queue.Queue[Any]"] = {}
        self.mailbox_lock = threading.Lock()
        self.barrier = threading.Barrier(nranks)
        # Collective staging area, guarded by the barrier on both sides.
        self.slots: List[Any] = [None] * nranks
        self.result: Any = None

    def mailbox(self, dst: int, src: int, tag: int) -> "queue.Queue[Any]":
        key = (dst, src, tag)
        with self.mailbox_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = queue.Queue()
                self.mailboxes[key] = q
            return q


class RankCommunicator:
    """The view one virtual rank has of the communicator."""

    def __init__(self, rank: int, shared: _SharedState, timeout: float = _DEFAULT_TIMEOUT) -> None:
        self._rank = rank
        self._shared = shared
        self._timeout = timeout

    # -- introspection (mpi4py naming) ------------------------------------

    def Get_rank(self) -> int:
        """Rank of the calling virtual process."""
        return self._rank

    def Get_size(self) -> int:
        """Number of virtual processes in the communicator."""
        return self._shared.nranks

    rank = property(Get_rank)
    size = property(Get_size)

    # -- point to point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (buffered: enqueues and returns)."""
        self._check_rank(dest)
        self._shared.mailbox(dest, self._rank, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from ``source``."""
        self._check_rank(source)
        q = self._shared.mailbox(self._rank, source, tag)
        try:
            return q.get(timeout=self._timeout)
        except queue.Empty:
            raise TimeoutError(
                f"rank {self._rank}: recv from {source} tag {tag} timed out"
            ) from None

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (buffered semantics)."""
        self.send(obj, dest, tag)
        return Request("send", lambda timeout: None)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; the payload is produced by ``wait()``."""
        self._check_rank(source)
        q = self._shared.mailbox(self._rank, source, tag)

        def resolve(timeout: Optional[float]) -> Any:
            t = self._timeout if timeout is None else timeout
            try:
                if t == 0.0:
                    return q.get_nowait()
                return q.get(timeout=t)
            except queue.Empty:
                raise TimeoutError(
                    f"rank {self._rank}: irecv from {source} tag {tag} timed out"
                ) from None

        return Request("recv", resolve)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send to ``dest`` and receive from ``source``."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._shared.barrier.wait(timeout=self._timeout)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks."""
        self._check_rank(root)
        self._stage(obj if self._rank == root else None)
        value = self._shared.slots[root]
        self.barrier()
        return value

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (others get ``None``)."""
        self._check_rank(root)
        self._stage(obj)
        result = list(self._shared.slots) if self._rank == root else None
        self.barrier()
        return result

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank on every rank."""
        self._stage(obj)
        result = list(self._shared.slots)
        self.barrier()
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Scatter ``objs`` (only meaningful at ``root``) so rank r gets objs[r]."""
        self._check_rank(root)
        if self._rank == root:
            if objs is None or len(objs) != self._shared.nranks:
                raise ValueError("root must provide one object per rank")
        self._stage(list(objs) if self._rank == root else None)
        staged = self._shared.slots[root]
        value = staged[self._rank]
        self.barrier()
        return value

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0) -> Any:
        """Reduce per-rank objects with ``op`` (default sum) at ``root``."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        return self._fold(gathered, op)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce per-rank objects with ``op`` (default sum) on every rank."""
        gathered = self.allgather(obj)
        return self._fold(gathered, op)

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Each rank provides one object per destination; receives one per source."""
        if len(objs) != self._shared.nranks:
            raise ValueError(
                f"alltoall needs {self._shared.nranks} objects, got {len(objs)}"
            )
        self._stage(list(objs))
        all_rows = list(self._shared.slots)
        self.barrier()
        return [all_rows[src][self._rank] for src in range(self._shared.nranks)]

    def scan(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Inclusive prefix reduction over ranks 0..self."""
        gathered = self.allgather(obj)
        return self._fold(gathered[: self._rank + 1], op)

    # -- helpers -----------------------------------------------------------------

    def _fold(self, values: List[Any], op: Optional[Callable[[Any, Any], Any]]) -> Any:
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def _stage(self, obj: Any) -> None:
        """Place this rank's contribution in the shared slots (barrier-delimited)."""
        self._shared.slots[self._rank] = obj
        self._shared.barrier.wait(timeout=self._timeout)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self._shared.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self._shared.nranks})")
