"""Distributed sorting of ``<block id, score>`` pairs.

The paper globally sorts the score pairs of all blocks by increasing score
(ties broken by id) and broadcasts the sorted list back to every process
(Section IV-C).  Two implementations are provided:

* :func:`parallel_sort_pairs` — the paper's gather–sort–broadcast scheme on a
  :class:`~repro.simmpi.communicator.BSPCommunicator` (rank 0 sorts); this is
  what the serial engine backend uses and what the cost model prices.

* :func:`parallel_sort_pairs_numpy` — the same scheme with the root's sort
  done by ``np.lexsort`` over the gathered ``(score, id)`` arrays instead of
  a Python ``sorted`` over tuples.  The communication pattern (one gather of
  per-rank ``(n, 2)`` float64 arrays, one broadcast of the sorted ``(N, 2)``
  array) is identical call for call and byte for byte, so the modelled
  communication seconds are unchanged; the result list is bitwise equal to
  :func:`parallel_sort_pairs`'s.  This is the vectorized/parallel backends'
  path.

* :func:`sample_sort` — a classic sample sort that keeps the data distributed,
  provided for the "larger scale / slower network" future-work ablation the
  paper mentions in its conclusion.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.simmpi.communicator import BSPCommunicator

ScorePair = Tuple[int, float]


def _sort_key(pairs: Sequence[ScorePair]) -> List[ScorePair]:
    """Sort pairs by (score, id) ascending — the paper's tie-break rule."""
    return sorted(pairs, key=lambda p: (p[1], p[0]))


def parallel_sort_pairs(
    comm: BSPCommunicator, per_rank_pairs: Sequence[Sequence[ScorePair]]
) -> List[List[ScorePair]]:
    """Globally sort per-rank ``(block_id, score)`` pairs and broadcast the result.

    Parameters
    ----------
    comm:
        Driver-side communicator.
    per_rank_pairs:
        ``per_rank_pairs[r]`` is the list of pairs contributed by rank ``r``.

    Returns
    -------
    list of list
        Per-rank copy of the fully sorted global list (every rank ends up with
        the same list, as required for the subsequent reduction and
        redistribution decisions).
    """
    if len(per_rank_pairs) != comm.nranks:
        raise ValueError(
            f"expected pairs for {comm.nranks} ranks, got {len(per_rank_pairs)}"
        )
    # Each rank contributes a compact float64 array (id, score) to the gather.
    arrays = [
        np.asarray([(int(i), float(s)) for i, s in pairs], dtype=np.float64).reshape(-1, 2)
        for pairs in per_rank_pairs
    ]
    gathered = comm.gather(arrays, root=0)
    root_arrays = gathered[0]
    assert root_arrays is not None
    merged: List[ScorePair] = []
    for arr in root_arrays:
        merged.extend((int(row[0]), float(row[1])) for row in arr)
    sorted_pairs = _sort_key(merged)
    sorted_arr = np.asarray(sorted_pairs, dtype=np.float64).reshape(-1, 2)
    received = comm.bcast(sorted_arr, root=0)
    out: List[List[ScorePair]] = []
    for arr in received:
        out.append([(int(row[0]), float(row[1])) for row in arr])
    return out


def parallel_sort_pairs_numpy(
    comm: BSPCommunicator, per_rank_pairs: Sequence[Sequence[ScorePair]]
) -> List[List[ScorePair]]:
    """NumPy variant of :func:`parallel_sort_pairs` (``np.lexsort`` at root).

    Same gather–sort–broadcast scheme, same communication payloads (so the
    cost model charges exactly the same modelled seconds), bitwise-identical
    sorted output — only the root's sort runs as one ``np.lexsort`` over the
    concatenated ``(score, id)`` arrays instead of a Python ``sorted`` over
    a quarter-million tuples, and the sorted list is materialised *once*:
    every rank receives the same list object, mirroring the broadcast's
    shared buffer (the list is treated as read-only downstream, as the
    per-rank copies of the Python path already were).
    """
    if len(per_rank_pairs) != comm.nranks:
        raise ValueError(
            f"expected pairs for {comm.nranks} ranks, got {len(per_rank_pairs)}"
        )
    # Identical wire format to parallel_sort_pairs: one (n, 2) float64 array
    # of (id, score) rows per rank.
    arrays = [
        np.asarray(pairs, dtype=np.float64).reshape(-1, 2)
        for pairs in per_rank_pairs
    ]
    gathered = comm.gather(arrays, root=0)
    root_arrays = gathered[0]
    assert root_arrays is not None
    merged = np.concatenate(root_arrays, axis=0) if root_arrays else np.empty((0, 2))
    # lexsort's last key is primary: ascending score, ties broken by id.
    order = np.lexsort((merged[:, 0], merged[:, 1]))
    sorted_arr = np.ascontiguousarray(merged[order])
    received = comm.bcast(sorted_arr, root=0)
    arr = received[0]
    shared: List[ScorePair] = list(
        zip(arr[:, 0].astype(np.int64).tolist(), arr[:, 1].tolist())
    )
    return [shared for _ in range(comm.nranks)]


def sample_sort(
    comm: BSPCommunicator,
    per_rank_pairs: Sequence[Sequence[ScorePair]],
    oversampling: int = 4,
) -> List[List[ScorePair]]:
    """Distributed sample sort of ``(block_id, score)`` pairs.

    Unlike :func:`parallel_sort_pairs`, the result stays distributed: rank
    ``r`` ends up with the ``r``-th contiguous chunk of the global ascending
    order.  Chunk sizes may differ by a few elements (they are determined by
    the sampled splitters), but concatenating the per-rank outputs in rank
    order yields the exact global sort.

    Parameters
    ----------
    oversampling:
        Number of local samples each rank contributes per splitter; larger
        values give better balance at slightly higher sampling cost.
    """
    nranks = comm.nranks
    if len(per_rank_pairs) != nranks:
        raise ValueError(f"expected pairs for {nranks} ranks, got {len(per_rank_pairs)}")
    if oversampling < 1:
        raise ValueError(f"oversampling must be >= 1, got {oversampling}")
    local_sorted = [_sort_key(pairs) for pairs in per_rank_pairs]
    if nranks == 1:
        return [list(local_sorted[0])]

    # 1. Each rank samples its local data.
    def take_samples(pairs: Sequence[ScorePair]) -> List[float]:
        if not pairs:
            return []
        count = min(len(pairs), oversampling * (nranks - 1))
        idx = np.linspace(0, len(pairs) - 1, count).astype(int)
        return [pairs[i][1] for i in idx]

    samples_per_rank = [take_samples(p) for p in local_sorted]
    all_samples = comm.allgather(samples_per_rank)[0]
    flat = sorted(s for rank_samples in all_samples for s in rank_samples)
    if not flat:
        return [list(p) for p in local_sorted]

    # 2. Choose nranks-1 splitters from the gathered samples.
    splitters = [
        flat[min(len(flat) - 1, (i + 1) * len(flat) // nranks)] for i in range(nranks - 1)
    ]

    # 3. Partition local data by splitter and exchange.
    def partition(pairs: Sequence[ScorePair]) -> List[List[ScorePair]]:
        buckets: List[List[ScorePair]] = [[] for _ in range(nranks)]
        for pair in pairs:
            dest = int(np.searchsorted(splitters, pair[1], side="right"))
            buckets[dest].append(pair)
        return buckets

    send_lists = [partition(p) for p in local_sorted]
    recv = comm.alltoallv(send_lists)

    # 4. Each rank merges what it received.
    out: List[List[ScorePair]] = []
    for r in range(nranks):
        merged: List[ScorePair] = []
        for src in range(nranks):
            payload = recv[r][src]
            if payload:
                merged.extend(payload)
        out.append(_sort_key(merged))
    return out
