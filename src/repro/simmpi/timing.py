"""Per-rank virtual clocks.

Each virtual rank owns a clock measured in *modelled platform seconds*.
Compute work advances a single rank's clock; collectives synchronise all
participating clocks to the maximum (plus the collective's own cost), which is
precisely the "slowest process drives the total run time" effect the paper's
load-redistribution step addresses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


class VirtualClocks:
    """A set of per-rank clocks in modelled seconds."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self._times = np.zeros(nranks, dtype=np.float64)

    @property
    def nranks(self) -> int:
        """Number of ranks tracked."""
        return int(self._times.size)

    def advance(self, rank: int, seconds: float) -> None:
        """Advance a single rank's clock by ``seconds`` of local work."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._times[rank] += seconds

    def advance_all(self, seconds_per_rank: Sequence[float]) -> None:
        """Advance every rank's clock by its own amount of local work."""
        arr = np.asarray(seconds_per_rank, dtype=np.float64)
        if arr.shape != self._times.shape:
            raise ValueError(
                f"expected {self.nranks} per-rank times, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise ValueError("cannot advance clocks by negative time")
        self._times += arr

    def synchronize(
        self, cost: float = 0.0, ranks: Optional[Iterable[int]] = None
    ) -> float:
        """Synchronise ranks at a collective costing ``cost`` modelled seconds.

        All participating clocks jump to ``max(participants) + cost``.
        Returns the post-synchronisation time.
        """
        if cost < 0:
            raise ValueError(f"collective cost must be >= 0, got {cost}")
        if ranks is None:
            idx = np.arange(self.nranks)
        else:
            idx = np.asarray(sorted(set(int(r) for r in ranks)), dtype=np.int64)
            if idx.size == 0:
                raise ValueError("cannot synchronise an empty set of ranks")
            for r in idx:
                self._check_rank(int(r))
        t = float(self._times[idx].max()) + cost
        self._times[idx] = t
        return t

    def time(self, rank: int) -> float:
        """Current clock of ``rank``."""
        self._check_rank(rank)
        return float(self._times[rank])

    def times(self) -> List[float]:
        """All clocks as a list indexed by rank."""
        return [float(t) for t in self._times]

    def max_time(self) -> float:
        """Clock of the slowest rank (the pipeline's makespan)."""
        return float(self._times.max())

    def min_time(self) -> float:
        """Clock of the fastest rank."""
        return float(self._times.min())

    def imbalance(self) -> float:
        """Load-imbalance factor ``max / mean`` (1.0 means perfectly balanced)."""
        mean = float(self._times.mean())
        if mean <= 0.0:
            return 1.0
        return float(self._times.max()) / mean

    def reset(self) -> None:
        """Reset all clocks to zero."""
        self._times[:] = 0.0

    def snapshot(self) -> np.ndarray:
        """Copy of the clock array."""
        return self._times.copy()

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
