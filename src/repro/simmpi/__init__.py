"""A simulated MPI runtime.

The paper runs on Blue Waters with real MPI; this environment has neither, so
``repro.simmpi`` provides two complementary substitutes:

* :class:`BSPCommunicator` — a bulk-synchronous, driver-side communicator.
  The caller holds per-rank values in Python lists indexed by rank and the
  communicator implements the MPI collective *semantics* over those lists
  while charging modelled communication time to per-rank virtual clocks
  through a latency/bandwidth :class:`NetworkCostModel`.  The core pipeline
  uses this layer: it scales to hundreds of virtual ranks in a single
  process and is fully deterministic.

* :class:`SimRuntime` / :class:`RankCommunicator` /
  :class:`ProcessRankCommunicator` — an SPMD runtime with an mpi4py-like API
  (``send``/``recv``/``isend``/``bcast``/``gather``/``allreduce``/...).
  Each virtual rank runs the same function in its own thread
  (``mode="thread"``, the default) or its own OS process
  (``mode="process"``, for GIL-bound rank code), which is convenient for
  writing code that looks like real MPI programs (examples and tests use it
  at small rank counts).

Both layers share :class:`NetworkCostModel` and :class:`VirtualClocks`.
"""

from repro.simmpi.costmodel import NetworkCostModel
from repro.simmpi.timing import VirtualClocks
from repro.simmpi.communicator import BSPCommunicator
from repro.simmpi.runtime import RankResult, SimRuntime, SPMDError
from repro.simmpi.rankcomm import RankCommunicator
from repro.simmpi.processcomm import ProcessRankCommunicator, RemoteRankError
from repro.simmpi.requests import Request
from repro.simmpi.sort import (
    parallel_sort_pairs,
    parallel_sort_pairs_numpy,
    sample_sort,
)

__all__ = [
    "NetworkCostModel",
    "VirtualClocks",
    "BSPCommunicator",
    "SimRuntime",
    "SPMDError",
    "RankResult",
    "RankCommunicator",
    "ProcessRankCommunicator",
    "RemoteRankError",
    "Request",
    "parallel_sort_pairs",
    "parallel_sort_pairs_numpy",
    "sample_sort",
]
