"""Latency/bandwidth network cost model.

The model is the classic ``alpha + n * beta`` (Hockney) model: a message of
``n`` bytes costs ``latency + n / bandwidth`` seconds.  Collectives are priced
with standard tree/ring algorithm formulas.  Default parameters approximate
the Cray Gemini interconnect of Blue Waters, which is what makes the paper's
observation reproducible that block redistribution costs ~1 s while rendering
costs tens to hundreds of seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class NetworkCostModel:
    """Analytic communication cost model.

    Attributes
    ----------
    latency:
        Per-message latency (seconds).  Blue Waters Gemini: ~1.5 microseconds.
    bandwidth:
        Point-to-point bandwidth in bytes/second.  Gemini: ~6 GB/s effective.
    per_rank_overhead:
        Fixed software overhead charged per participating rank per collective,
        accounting for MPI stack and Python-side marshalling.
    """

    latency: float = 1.5e-6
    bandwidth: float = 6.0e9
    per_rank_overhead: float = 5.0e-6

    def __post_init__(self) -> None:
        ensure_positive(self.latency, "latency")
        ensure_positive(self.bandwidth, "bandwidth")
        if self.per_rank_overhead < 0:
            raise ValueError("per_rank_overhead must be >= 0")

    # -- point-to-point -----------------------------------------------------

    def p2p(self, nbytes: int) -> float:
        """Cost of a single point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def p2p_batch(self, nbytes: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`p2p`: per-message costs of a byte-count array.

        Sweeps price thousands of messages per virtual iteration; this prices
        them all in one NumPy pass, elementwise identical to :meth:`p2p`.
        """
        arr = np.asarray(nbytes)
        if arr.size and arr.min() < 0:
            raise ValueError(f"nbytes must be >= 0, got {arr.min()}")
        return self.latency + arr / self.bandwidth

    # -- collectives ----------------------------------------------------------

    def _log2p(self, nranks: int) -> float:
        return max(1.0, math.ceil(math.log2(max(nranks, 2))))

    def barrier(self, nranks: int) -> float:
        """Dissemination barrier: ``ceil(log2 P)`` latency-bound rounds."""
        self._check_ranks(nranks)
        return self._log2p(nranks) * self.latency + self.per_rank_overhead

    def bcast(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree broadcast of ``nbytes`` to ``nranks`` ranks."""
        self._check_ranks(nranks)
        if nranks == 1:
            return 0.0
        rounds = self._log2p(nranks)
        return rounds * self.p2p(nbytes) + self.per_rank_overhead

    def reduce(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree reduction (same shape as broadcast)."""
        return self.bcast(nbytes, nranks)

    def allreduce(self, nbytes: int, nranks: int) -> float:
        """Reduce + broadcast (recursive doubling upper bound)."""
        self._check_ranks(nranks)
        if nranks == 1:
            return 0.0
        rounds = self._log2p(nranks)
        return 2.0 * rounds * self.p2p(nbytes) + self.per_rank_overhead

    def gather(self, nbytes_per_rank: int, nranks: int) -> float:
        """Gather of ``nbytes_per_rank`` from every rank to the root.

        The root receives ``(P-1) * nbytes`` in total; the binomial tree hides
        some latency but the root link is the bottleneck, so the cost is
        dominated by the root's ingest volume.
        """
        self._check_ranks(nranks)
        if nranks == 1:
            return 0.0
        total = nbytes_per_rank * (nranks - 1)
        return self._log2p(nranks) * self.latency + total / self.bandwidth + self.per_rank_overhead

    def allgather(self, nbytes_per_rank: int, nranks: int) -> float:
        """Ring allgather: every rank ends with ``P * nbytes`` of data."""
        self._check_ranks(nranks)
        if nranks == 1:
            return 0.0
        total = nbytes_per_rank * (nranks - 1)
        return (nranks - 1) * self.latency + total / self.bandwidth + self.per_rank_overhead

    def scatter(self, nbytes_per_rank: int, nranks: int) -> float:
        """Scatter from the root (mirror of gather)."""
        return self.gather(nbytes_per_rank, nranks)

    def alltoallv(self, send_matrix_bytes, nranks: int) -> float:
        """Personalised all-to-all given a ``P x P`` byte matrix.

        ``send_matrix_bytes[i][j]`` is the number of bytes rank ``i`` sends to
        rank ``j``.  The cost is bounded by the most loaded rank (its total
        send + receive volume) plus one latency per distinct partner.

        The matrix is priced in one NumPy pass — row sums give send volumes,
        column sums give receive volumes — so a 10,000-rank exchange (10⁸
        matrix cells) costs milliseconds instead of the minutes the
        equivalent Python loop takes.  :meth:`alltoallv_loop` keeps the loop
        as the reference; both paths return identical floats (byte counts
        are exact int64 sums and the per-rank cost expression is evaluated
        in the same order).
        """
        self._check_ranks(nranks)
        m = np.asarray(send_matrix_bytes)
        if m.shape != (nranks, nranks):
            raise ValueError(
                f"send matrix must have shape ({nranks}, {nranks}), got {m.shape}"
            )
        # Match the scalar path exactly: entries truncate to int, the
        # diagonal never counts, and only positive entries carry volume.
        # Masked sums instead of a mutated copy: at 10k ranks the matrix is
        # 800 MB, so every avoided full-matrix write is a real win.
        if not np.issubdtype(m.dtype, np.integer):
            m = m.astype(np.int64)  # truncate like int()
        positive = m > 0
        np.fill_diagonal(positive, False)
        send_bytes = m.sum(axis=1, where=positive, dtype=np.int64)
        recv_bytes = m.sum(axis=0, where=positive, dtype=np.int64)
        partners = positive.sum(axis=1) + positive.sum(axis=0)
        cost = partners * self.latency + (send_bytes + recv_bytes) / self.bandwidth
        worst = float(cost.max()) if nranks else 0.0
        return max(0.0, worst) + self.per_rank_overhead

    def alltoallv_loop(self, send_matrix_bytes, nranks: int) -> float:
        """Reference O(P²) Python-loop pricing of :meth:`alltoallv`.

        Kept for the parity tests and benchmarks that gate the vectorised
        path; new code should call :meth:`alltoallv`.
        """
        self._check_ranks(nranks)
        worst = 0.0
        for i in range(nranks):
            send_bytes = 0
            partners = 0
            for j in range(nranks):
                b = int(send_matrix_bytes[i][j]) if i != j else 0
                if b > 0:
                    send_bytes += b
                    partners += 1
            recv_bytes = 0
            for j in range(nranks):
                b = int(send_matrix_bytes[j][i]) if i != j else 0
                if b > 0:
                    recv_bytes += b
                    partners += 1
            cost = partners * self.latency + (send_bytes + recv_bytes) / self.bandwidth
            worst = max(worst, cost)
        return worst + self.per_rank_overhead

    def _check_ranks(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")

    # -- convenience -----------------------------------------------------------

    @classmethod
    def blue_waters(cls) -> "NetworkCostModel":
        """Parameters approximating the Blue Waters Cray Gemini interconnect."""
        return cls(latency=1.5e-6, bandwidth=6.0e9, per_rank_overhead=5.0e-6)

    @classmethod
    def slow_cluster(cls) -> "NetworkCostModel":
        """A commodity-ethernet-like platform (used by the ablation benches)."""
        return cls(latency=5.0e-5, bandwidth=1.0e9, per_rank_overhead=2.0e-5)
