"""Bulk-synchronous (driver-side) simulated communicator.

The :class:`BSPCommunicator` implements the semantics of MPI collectives over
*per-rank lists held by the driver*: ``values[r]`` is the value rank ``r``
contributes.  Each call returns the per-rank results (again indexed by rank)
and charges the modelled communication cost to the per-rank virtual clocks
through :class:`~repro.simmpi.costmodel.NetworkCostModel`.

This style trades MPI's SPMD control flow for a data-parallel driver loop,
which keeps the simulation single-threaded, deterministic, and able to model
hundreds of virtual ranks cheaply.  The thread-based
:class:`~repro.simmpi.runtime.SimRuntime` offers the SPMD view when that is
preferred.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.costmodel import NetworkCostModel
from repro.simmpi.timing import VirtualClocks


#: Wire-size estimate for payloads that cannot be pickled (open handles,
#: lambdas, ...).  Such objects could not cross a real MPI boundary at all;
#: pricing them as one small pickled envelope keeps the cost model defined
#: without hiding the anomaly behind an inflated transfer.
UNPICKLABLE_PAYLOAD_NBYTES = 64

#: Errors ``pickle.dumps`` raises for unpicklable objects: PicklingError for
#: types pickle rejects itself, TypeError/AttributeError for objects whose
#: reduction fails (e.g. locks, sockets, local classes), RecursionError for
#: pathologically nested structures.  Anything else (MemoryError, ...) is a
#: real failure and propagates.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError, RecursionError)


def _payload_nbytes(obj: Any) -> int:
    """Approximate the wire size of a Python payload.

    NumPy arrays count their buffer size; other objects are priced by their
    pickle length (which is what a real mpi4py lowercase call would send).
    Unpicklable payloads are priced at :data:`UNPICKLABLE_PAYLOAD_NBYTES`.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and obj and all(isinstance(x, np.ndarray) for x in obj):
        return int(sum(x.nbytes for x in obj))
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except _PICKLE_ERRORS:
        return UNPICKLABLE_PAYLOAD_NBYTES


class BSPCommunicator:
    """Driver-side communicator over ``nranks`` virtual ranks.

    Parameters
    ----------
    nranks:
        Number of virtual ranks.
    cost_model:
        Network cost model used to charge modelled time; defaults to the
        Blue Waters-like model.
    clocks:
        Existing :class:`VirtualClocks` to account into; a fresh set is
        created when omitted.
    track_stats:
        When True (default), per-operation counters (calls, bytes) are kept
        in :attr:`stats`.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: Optional[NetworkCostModel] = None,
        clocks: Optional[VirtualClocks] = None,
        track_stats: bool = True,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self._nranks = int(nranks)
        self.cost_model = cost_model or NetworkCostModel.blue_waters()
        self.clocks = clocks or VirtualClocks(nranks)
        if self.clocks.nranks != nranks:
            raise ValueError(
                f"clocks track {self.clocks.nranks} ranks, expected {nranks}"
            )
        self._track = bool(track_stats)
        self.stats: Dict[str, Dict[str, float]] = {}

    # -- basic properties ---------------------------------------------------

    @property
    def nranks(self) -> int:
        """Number of virtual ranks in the communicator."""
        return self._nranks

    def ranks(self) -> range:
        """Iterator over rank indices."""
        return range(self._nranks)

    def _check_values(self, values: Sequence[Any], name: str = "values") -> None:
        if len(values) != self._nranks:
            raise ValueError(
                f"{name} must have one entry per rank ({self._nranks}), got {len(values)}"
            )

    def _record(self, op: str, nbytes: float, seconds: float) -> None:
        if not self._track:
            return
        entry = self.stats.setdefault(op, {"calls": 0.0, "bytes": 0.0, "seconds": 0.0})
        entry["calls"] += 1
        entry["bytes"] += nbytes
        entry["seconds"] += seconds

    # -- local compute accounting -----------------------------------------------

    def compute(self, seconds_per_rank: Sequence[float]) -> None:
        """Charge per-rank local compute time (no communication)."""
        self._check_values(seconds_per_rank, "seconds_per_rank")
        self.clocks.advance_all(seconds_per_rank)

    def run_per_rank(
        self, func: Callable[[int], Any], charge: Optional[Sequence[float]] = None
    ) -> List[Any]:
        """Run ``func(rank)`` for every rank and return the per-rank results.

        ``charge`` optionally gives per-rank modelled seconds to account for
        the work (when omitted nothing is charged — the caller typically
        charges modelled time computed from the results).
        """
        results = [func(rank) for rank in self.ranks()]
        if charge is not None:
            self.compute(charge)
        return results

    # -- collectives ---------------------------------------------------------------

    def barrier(self) -> float:
        """Synchronise all ranks.  Returns the post-barrier modelled time."""
        cost = self.cost_model.barrier(self._nranks)
        t = self.clocks.synchronize(cost)
        self._record("barrier", 0, cost)
        return t

    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        """Broadcast ``value`` from ``root``; every rank receives it."""
        self._check_rank(root)
        nbytes = _payload_nbytes(value)
        cost = self.cost_model.bcast(nbytes, self._nranks)
        self.clocks.synchronize(cost)
        self._record("bcast", nbytes, cost)
        return [value for _ in self.ranks()]

    def gather(self, values: Sequence[Any], root: int = 0) -> List[Optional[List[Any]]]:
        """Gather per-rank ``values`` at ``root``.

        Returns a per-rank list where only ``root`` holds the gathered list
        (other entries are ``None``), mirroring MPI's convention.
        """
        self._check_rank(root)
        self._check_values(values)
        per_rank = max(_payload_nbytes(v) for v in values)
        cost = self.cost_model.gather(per_rank, self._nranks)
        self.clocks.synchronize(cost)
        self._record("gather", per_rank * self._nranks, cost)
        out: List[Optional[List[Any]]] = [None] * self._nranks
        out[root] = list(values)
        return out

    def allgather(self, values: Sequence[Any]) -> List[List[Any]]:
        """All ranks receive the list of every rank's value."""
        self._check_values(values)
        per_rank = max(_payload_nbytes(v) for v in values)
        cost = self.cost_model.allgather(per_rank, self._nranks)
        self.clocks.synchronize(cost)
        self._record("allgather", per_rank * self._nranks, cost)
        gathered = list(values)
        return [list(gathered) for _ in self.ranks()]

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> List[Any]:
        """Scatter ``values`` (held by ``root``) so rank ``r`` gets ``values[r]``."""
        self._check_rank(root)
        if values is None:
            raise ValueError("scatter requires the root's list of values")
        self._check_values(values)
        per_rank = max(_payload_nbytes(v) for v in values)
        cost = self.cost_model.scatter(per_rank, self._nranks)
        self.clocks.synchronize(cost)
        self._record("scatter", per_rank * self._nranks, cost)
        return list(values)

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = None
    ) -> List[Any]:
        """Combine per-rank values with ``op`` (default: sum) on every rank."""
        self._check_values(values)
        if op is None:
            op = lambda a, b: a + b  # noqa: E731 - tiny default combiner
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        nbytes = _payload_nbytes(values[0])
        cost = self.cost_model.allreduce(nbytes, self._nranks)
        self.clocks.synchronize(cost)
        self._record("allreduce", nbytes, cost)
        return [acc for _ in self.ranks()]

    def reduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> List[Optional[Any]]:
        """Combine per-rank values with ``op`` at ``root`` only."""
        self._check_rank(root)
        self._check_values(values)
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        nbytes = _payload_nbytes(values[0])
        cost = self.cost_model.reduce(nbytes, self._nranks)
        self.clocks.synchronize(cost)
        self._record("reduce", nbytes, cost)
        out: List[Optional[Any]] = [None] * self._nranks
        out[root] = acc
        return out

    def alltoallv(self, send_lists: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Personalised all-to-all exchange.

        ``send_lists[i][j]`` is the payload rank ``i`` sends to rank ``j``
        (``None`` meaning nothing).  Returns ``recv[j][i]`` = payload received
        by ``j`` from ``i``.  This is the primitive the block-redistribution
        step uses: each rank posts non-blocking sends/receives for the blocks
        it gives away / takes over.
        """
        self._check_values(send_lists, "send_lists")
        # int64 byte matrix: the cost model prices it with one vectorised
        # row/column-sum pass, which is what keeps 10k-virtual-rank sweeps
        # out of O(P^2) Python loops.
        matrix = np.zeros((self._nranks, self._nranks), dtype=np.int64)
        recv: List[List[Any]] = [[None] * self._nranks for _ in range(self._nranks)]
        total_bytes = 0
        for i, row in enumerate(send_lists):
            if len(row) != self._nranks:
                raise ValueError(
                    f"send_lists[{i}] must have {self._nranks} entries, got {len(row)}"
                )
            for j, payload in enumerate(row):
                if payload is None:
                    continue
                nbytes = _payload_nbytes(payload)
                matrix[i, j] = nbytes
                total_bytes += nbytes
                recv[j][i] = payload
        cost = self.cost_model.alltoallv(matrix, self._nranks)
        self.clocks.synchronize(cost)
        self._record("alltoallv", total_bytes, cost)
        return recv

    # -- diagnostics -----------------------------------------------------------------

    def communication_seconds(self) -> float:
        """Total modelled seconds spent in communication so far."""
        return float(sum(e["seconds"] for e in self.stats.values()))

    def reset_stats(self) -> None:
        """Clear the per-operation statistics."""
        self.stats.clear()

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self._nranks):
            raise ValueError(f"rank {rank} out of range [0, {self._nranks})")
