"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def ensure_3d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 3-D :class:`numpy.ndarray`, raising otherwise."""
    arr = np.asarray(array)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be 3-D, got shape {arr.shape}")
    return arr


def ensure_float_array(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a floating-point ndarray (float32 preserved)."""
    arr = np.asarray(array)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def ensure_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and return it as float."""
    v = float(value)
    if not v > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return v


def ensure_in_range(
    value: float, bounds: Tuple[float, float], name: str = "value"
) -> float:
    """Validate ``bounds[0] <= value <= bounds[1]`` and return it as float."""
    lo, hi = bounds
    v = float(value)
    if not (lo <= v <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return v
