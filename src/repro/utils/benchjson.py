"""Machine-readable benchmark records (``BENCH_engine.json`` + history).

The engine benchmarks print human-readable timings; CI additionally wants a
machine-readable artefact it can upload and diff across runs.  Every gated
measurement calls :func:`record_bench` with the scenario, backend, measured
seconds, and speedup; the accumulated records are rewritten to
``benchmarks/output/BENCH_engine.json`` after *each* call, so the artefact
survives an aborted (``pytest -x``) run with everything measured up to the
failure.

Records are keyed by ``(gate, scenario, backend)``: re-measuring a gate in
the same or a later process replaces its record instead of appending a
duplicate, and records written by earlier processes are preserved (the file
is re-read before every rewrite).

Both files are *live* outputs, not committed state (they are gitignored —
committing them made every benchmark run a spurious diff).  The snapshot
file holds the latest record per key; ``BENCH_history.jsonl`` additionally
receives one appended JSON line per measurement, so trend lines across runs
(and across PRs, via uploaded CI artifacts) survive the snapshot's
overwrite semantics.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = ["default_bench_path", "default_history_path", "record_bench"]

_FILENAME = "BENCH_engine.json"
_HISTORY_FILENAME = "BENCH_history.jsonl"


def default_bench_path() -> Path:
    """``benchmarks/output/BENCH_engine.json`` next to this repository's benchmarks."""
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks" / "output" / _FILENAME


def default_history_path() -> Path:
    """``benchmarks/output/BENCH_history.jsonl`` — the append-only trend file."""
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks" / "output" / _HISTORY_FILENAME


def _load_records(path: Path) -> Dict[Tuple[str, str, str], dict]:
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    records = {}
    for record in payload.get("records", []):
        key = (
            str(record.get("gate", "")),
            str(record.get("scenario", "")),
            str(record.get("backend", "")),
        )
        records[key] = record
    return records


def record_bench(
    gate: str,
    scenario: str,
    backend: str,
    seconds: float,
    baseline_backend: Optional[str] = None,
    baseline_seconds: Optional[float] = None,
    speedup: Optional[float] = None,
    passed: Optional[bool] = None,
    path: Optional[Path] = None,
    **extra,
) -> Path:
    """Record one benchmark measurement and rewrite the JSON artefact.

    Parameters
    ----------
    gate:
        Name of the benchmark gate (e.g. ``"scoring_speedup"``).
    scenario, backend:
        Workload and engine backend the measurement ran on.
    seconds:
        Measured wall-clock seconds of the gated backend.
    baseline_backend, baseline_seconds:
        The reference the speedup is taken against, when there is one.
    speedup:
        ``baseline_seconds / seconds``; derived automatically when omitted
        and a baseline is given.
    passed:
        Whether the gate's assertion held (``None`` for pure measurements).
    path:
        Target snapshot file; defaults to :func:`default_bench_path`.  The
        history line goes to ``BENCH_history.jsonl`` in the same directory.
    extra:
        Additional JSON-serialisable fields stored verbatim on the record.
    """
    target = Path(path) if path is not None else default_bench_path()
    if speedup is None and baseline_seconds is not None and seconds > 0:
        speedup = baseline_seconds / seconds
    record = {
        "gate": str(gate),
        "scenario": str(scenario),
        "backend": str(backend),
        "seconds": float(seconds),
    }
    if baseline_backend is not None:
        record["baseline_backend"] = str(baseline_backend)
    if baseline_seconds is not None:
        record["baseline_seconds"] = float(baseline_seconds)
    if speedup is not None:
        record["speedup"] = float(speedup)
    if passed is not None:
        record["passed"] = bool(passed)
    record.update(extra)

    records = _load_records(target)
    records[(record["gate"], record["scenario"], record["backend"])] = record
    ordered = sorted(
        records.values(), key=lambda r: (r["gate"], r["scenario"], r["backend"])
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps({"records": ordered}, indent=2) + "\n")

    # Trend line: the same record, timestamped and appended — never rewritten.
    history = target.parent / _HISTORY_FILENAME
    stamped = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"), **record}
    with open(history, "a") as fh:
        fh.write(json.dumps(stamped) + "\n")
    return target
