"""Fixed-range histogram helpers.

The paper's ITL-style entropy metric requires histograms built with the *same*
range and bin count on every process so that per-block entropies are
comparable across the whole domain (Section IV-B-c).  These helpers centralise
that logic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _bin_indices(values: np.ndarray, bins: int, lo: float, hi: float) -> np.ndarray:
    """Bin index of every value over ``bins`` equal bins spanning ``[lo, hi]``.

    The same formula is used by the scalar and the batched histogram so that
    per-block scores are bitwise identical regardless of which path computed
    them (values exactly on an interior bin edge may differ from
    ``numpy.histogram`` by one bin, which is irrelevant as long as every
    process — and every code path — bins identically).
    """
    scale = bins / (hi - lo)
    idx = np.floor((np.asarray(values, dtype=np.float64) - lo) * scale).astype(np.int64)
    return np.clip(idx, 0, bins - 1)


def fixed_range_histogram(
    values: np.ndarray,
    bins: int,
    value_range: Tuple[float, float],
    clip: bool = True,
) -> np.ndarray:
    """Histogram ``values`` into ``bins`` equally-sized bins over ``value_range``.

    Parameters
    ----------
    values:
        Array of samples (any shape; flattened internally).
    bins:
        Number of bins (must be >= 1).
    value_range:
        ``(lo, hi)`` with ``hi > lo``.  The same range must be used by every
        process for scores to be comparable.
    clip:
        If True (default), values outside the range are clipped into the first
        or last bin, mirroring how the paper treats the known dBZ range.
        If False, out-of-range values are dropped.

    Returns
    -------
    numpy.ndarray
        Integer counts of shape ``(bins,)``.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    lo, hi = float(value_range[0]), float(value_range[1])
    if not hi > lo:
        raise ValueError(f"invalid range: ({lo}, {hi})")
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return np.zeros(bins, dtype=np.int64)
    if clip:
        # NaNs survive np.clip; drop them (np.histogram's behaviour) instead
        # of letting them reach the undefined float->int cast in the binning.
        flat = np.clip(flat[~np.isnan(flat)], lo, hi)
    else:
        flat = flat[(flat >= lo) & (flat <= hi)]  # NaN compares False: dropped
    if flat.size == 0:
        return np.zeros(bins, dtype=np.int64)
    counts = np.bincount(_bin_indices(flat, bins, lo, hi), minlength=bins)
    return counts.astype(np.int64)


def fixed_range_histogram_batch(
    values: np.ndarray,
    bins: int,
    value_range: Tuple[float, float],
    clip: bool = True,
) -> np.ndarray:
    """Row-wise fixed-range histograms of a ``(nrows, nvalues)`` array.

    The vectorised counterpart of :func:`fixed_range_histogram`: one histogram
    per row, all with the same bins and range, computed by a single
    ``bincount`` over offset bin indices.  Uses the same binning formula as
    the scalar path, so ``fixed_range_histogram_batch(x)[i]`` equals
    ``fixed_range_histogram(x[i])`` exactly.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    lo, hi = float(value_range[0]), float(value_range[1])
    if not hi > lo:
        raise ValueError(f"invalid range: ({lo}, {hi})")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"values must be 2-D (nrows, nvalues), got shape {arr.shape}")
    nrows = arr.shape[0]
    if nrows == 0 or arr.shape[1] == 0:
        return np.zeros((nrows, bins), dtype=np.int64)
    if clip:
        valid = ~np.isnan(arr)  # same NaN-dropping as the scalar path
        arr = np.where(valid, np.clip(arr, lo, hi), lo)
    else:
        valid = (arr >= lo) & (arr <= hi)  # NaN compares False: dropped
        arr = np.where(valid, arr, lo)
    idx = _bin_indices(arr, bins, lo, hi)
    idx += np.arange(nrows, dtype=np.int64)[:, None] * bins
    counts = np.bincount(idx[valid], minlength=nrows * bins)
    return counts.reshape(nrows, bins).astype(np.int64)


def probabilities(counts: np.ndarray) -> np.ndarray:
    """Convert histogram ``counts`` into probabilities (empty bins removed).

    Returns an array of strictly positive probabilities summing to 1, or an
    empty array if all counts are zero.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError("counts must be 1-D")
    total = counts.sum()
    if total <= 0:
        return np.zeros(0, dtype=np.float64)
    probs = counts[counts > 0] / total
    return probs


def shannon_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a histogram given as raw counts.

    ``E = -sum(p_i * log2(p_i))`` over non-empty bins.  Returns 0.0 for an
    empty histogram (a constant block carries no information).
    """
    probs = probabilities(counts)
    if probs.size == 0:
        return 0.0
    return float(-np.sum(probs * np.log2(probs)))
