"""Fixed-range histogram helpers.

The paper's ITL-style entropy metric requires histograms built with the *same*
range and bin count on every process so that per-block entropies are
comparable across the whole domain (Section IV-B-c).  These helpers centralise
that logic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def fixed_range_histogram(
    values: np.ndarray,
    bins: int,
    value_range: Tuple[float, float],
    clip: bool = True,
) -> np.ndarray:
    """Histogram ``values`` into ``bins`` equally-sized bins over ``value_range``.

    Parameters
    ----------
    values:
        Array of samples (any shape; flattened internally).
    bins:
        Number of bins (must be >= 1).
    value_range:
        ``(lo, hi)`` with ``hi > lo``.  The same range must be used by every
        process for scores to be comparable.
    clip:
        If True (default), values outside the range are clipped into the first
        or last bin, mirroring how the paper treats the known dBZ range.
        If False, out-of-range values are dropped.

    Returns
    -------
    numpy.ndarray
        Integer counts of shape ``(bins,)``.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    lo, hi = float(value_range[0]), float(value_range[1])
    if not hi > lo:
        raise ValueError(f"invalid range: ({lo}, {hi})")
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return np.zeros(bins, dtype=np.int64)
    if clip:
        flat = np.clip(flat, lo, hi)
    else:
        flat = flat[(flat >= lo) & (flat <= hi)]
        if flat.size == 0:
            return np.zeros(bins, dtype=np.int64)
    counts, _ = np.histogram(flat, bins=bins, range=(lo, hi))
    return counts.astype(np.int64)


def probabilities(counts: np.ndarray) -> np.ndarray:
    """Convert histogram ``counts`` into probabilities (empty bins removed).

    Returns an array of strictly positive probabilities summing to 1, or an
    empty array if all counts are zero.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError("counts must be 1-D")
    total = counts.sum()
    if total <= 0:
        return np.zeros(0, dtype=np.float64)
    probs = counts[counts > 0] / total
    return probs


def shannon_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a histogram given as raw counts.

    ``E = -sum(p_i * log2(p_i))`` over non-empty bins.  Returns 0.0 for an
    empty histogram (a constant block carries no information).
    """
    probs = probabilities(counts)
    if probs.size == 0:
        return 0.0
    return float(-np.sum(probs * np.log2(probs)))
