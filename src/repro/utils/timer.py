"""Wall-clock timing helpers used by every pipeline step.

The pipeline tracks two independent notions of time:

* *measured* time — actual Python wall-clock, obtained with :class:`Timer`;
* *modelled* time — "platform seconds" produced by :mod:`repro.perfmodel`.

:class:`StepTimings` aggregates both per pipeline step so experiment drivers
can report either one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


class Timer:
    """A context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        """Stop the stopwatch and return the accumulated elapsed time."""
        if self._running and self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._running = False
        return self._elapsed

    def reset(self) -> None:
        """Reset accumulated time to zero and stop the stopwatch."""
        self._start = None
        self._elapsed = 0.0
        self._running = False

    @property
    def elapsed(self) -> float:
        """Accumulated elapsed seconds (includes the running segment, if any)."""
        if self._running and self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed


@dataclass
class StepTimings:
    """Per-step timing record for one pipeline iteration.

    Attributes
    ----------
    measured:
        Wall-clock seconds actually spent in each named step.
    modelled:
        Platform-model seconds attributed to each named step.
    """

    measured: Dict[str, float] = field(default_factory=dict)
    modelled: Dict[str, float] = field(default_factory=dict)

    def add_measured(self, step: str, seconds: float) -> None:
        """Accumulate measured wall-clock ``seconds`` under ``step``."""
        if seconds < 0:
            raise ValueError(f"negative measured time for step {step!r}: {seconds}")
        self.measured[step] = self.measured.get(step, 0.0) + seconds

    def add_modelled(self, step: str, seconds: float) -> None:
        """Accumulate modelled platform ``seconds`` under ``step``."""
        if seconds < 0:
            raise ValueError(f"negative modelled time for step {step!r}: {seconds}")
        self.modelled[step] = self.modelled.get(step, 0.0) + seconds

    def total_measured(self) -> float:
        """Sum of measured seconds over all steps."""
        return float(sum(self.measured.values()))

    def total_modelled(self) -> float:
        """Sum of modelled seconds over all steps."""
        return float(sum(self.modelled.values()))

    def merge(self, other: "StepTimings") -> "StepTimings":
        """Return a new record combining ``self`` and ``other``."""
        out = StepTimings(dict(self.measured), dict(self.modelled))
        for k, v in other.measured.items():
            out.add_measured(k, v)
        for k, v in other.modelled.items():
            out.add_modelled(k, v)
        return out

    def steps(self) -> Iterator[str]:
        """Iterate over the union of step names present in either clock."""
        seen = dict.fromkeys(list(self.measured) + list(self.modelled))
        return iter(seen)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Return a plain-dict snapshot (suitable for JSON serialization)."""
        return {"measured": dict(self.measured), "modelled": dict(self.modelled)}
