"""Deterministic random-number helpers.

Every stochastic choice in the library (storm phase noise, random shuffling of
blocks, synthetic workload generation) flows from an explicit integer seed so
experiments are exactly reproducible.  The random-shuffle redistribution
strategy additionally requires *all ranks to derive the same permutation*,
which :func:`derive_seed` makes easy: each rank derives the seed from the
(shared) base seed and the iteration number, never from its own rank.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator]


def rng_from_seed(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts either an integer seed or an existing generator (returned as-is),
    so library functions can take a ``seed`` argument of either kind.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Derive a new 63-bit seed from ``base_seed`` and a list of components.

    The derivation is a stable hash, so ``derive_seed(42, "shuffle", 3)`` is
    identical on every rank and every run — which is exactly what the paper's
    random-shuffle strategy needs ("making sure all processes use the same
    seed").
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for comp in components:
        h.update(b"|")
        h.update(str(comp).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)
