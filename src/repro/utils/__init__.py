"""Shared utilities: timers, histograms, validation, deterministic RNG helpers."""

from repro.utils.timer import Timer, StepTimings
from repro.utils.benchjson import default_bench_path, record_bench
from repro.utils.histogram import fixed_range_histogram, probabilities, shannon_entropy
from repro.utils.pool import LazyThreadPool
from repro.utils.procpool import (
    chunk_bounds,
    default_process_workers,
    shared_process_pool,
    shutdown_shared_pool,
)
from repro.utils.random import rng_from_seed, derive_seed
from repro.utils.validation import (
    ensure_3d,
    ensure_float_array,
    ensure_positive,
    ensure_in_range,
)

__all__ = [
    "Timer",
    "StepTimings",
    "LazyThreadPool",
    "chunk_bounds",
    "default_bench_path",
    "record_bench",
    "default_process_workers",
    "shared_process_pool",
    "shutdown_shared_pool",
    "fixed_range_histogram",
    "probabilities",
    "shannon_entropy",
    "rng_from_seed",
    "derive_seed",
    "ensure_3d",
    "ensure_float_array",
    "ensure_positive",
    "ensure_in_range",
]
