"""Shared lazy process-pool helper for the process pipeline steps.

Mirror of :mod:`repro.utils.pool`, but for ``ProcessPoolExecutor``: where
threads are the right pool for GIL-releasing NumPy kernels, processes are
the right pool for *GIL-bound* per-block Python work (scalar user metrics,
pure-Python scoring loops).  Worker processes are expensive to start, so a
single module-level pool is shared by every process step in the engine and
created lazily on first submit.

The pool uses the ``fork`` start method where available: forked workers
start in milliseconds and inherit the parent's imports, and every fork
happens from the driver thread while no step threads hold locks (the
process backend never nests inside the thread backend).  Payloads cross
the boundary through :mod:`repro.grid.shm` segments, so tasks themselves
only carry handles and small metadata.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.managers
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "chunk_bounds",
    "default_process_workers",
    "shared_manager",
    "shared_process_pool",
    "shutdown_shared_pool",
    "warm_shared_pool",
]

_POOL: Optional[ProcessPoolExecutor] = None
_MANAGER: Optional["multiprocessing.managers.SyncManager"] = None
_POOL_LOCK = threading.Lock()


def default_process_workers() -> int:
    """Worker count for the shared pool (same cap as the thread pools)."""
    return min(16, os.cpu_count() or 1)


def _start_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def shared_process_pool() -> ProcessPoolExecutor:
    """The process-wide worker pool, created on first use."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ProcessPoolExecutor(
                max_workers=default_process_workers(), mp_context=_start_context()
            )
        return _POOL


def shared_manager() -> "multiprocessing.managers.SyncManager":
    """The process-wide :class:`multiprocessing.Manager`, created on first use.

    Pool tasks cannot carry raw ``multiprocessing.Queue``/``Event`` objects
    (they only cross process boundaries by inheritance), so cross-process
    control channels — the serve tier's per-run event streams and cancel
    flags — go through proxies served by this single manager process.
    """
    global _MANAGER
    with _POOL_LOCK:
        if _MANAGER is None:
            _MANAGER = multiprocessing.Manager()
        return _MANAGER


def warm_shared_pool(tasks: Optional[int] = None) -> int:
    """Spin up the shared pool's worker processes ahead of time.

    Workers fork lazily on submit; a server that first submits from a
    request thread would fork with arbitrary other threads running.  Calling
    this during single-threaded startup makes every later submit hit an
    already-forked worker.  Returns the number of distinct worker PIDs seen.
    """
    pool = shared_process_pool()
    count = default_process_workers() if tasks is None else max(1, int(tasks))
    # time.sleep keeps each warmup task busy long enough that the executor's
    # on-demand spawner starts a fresh worker for the next one.
    futures = [pool.submit(time.sleep, 0.02) for _ in range(count)]
    for future in futures:
        future.result()
    return len(pool._processes or {})


def shutdown_shared_pool() -> None:
    """Tear down the shared pool and manager (tests / interpreter exit)."""
    global _POOL, _MANAGER
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
        manager, _MANAGER = _MANAGER, None
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    if manager is not None:
        manager.shutdown()


atexit.register(shutdown_shared_pool)


def chunk_bounds(n: int, nchunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``nchunks`` contiguous, non-empty
    ``(lo, hi)`` slices of near-equal size (same ``np.linspace`` splitting
    the parallel steps use, so chunk boundaries never affect results)."""
    if n <= 0:
        return []
    nchunks = max(1, min(int(nchunks), n))
    bounds = np.linspace(0, n, nchunks + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
