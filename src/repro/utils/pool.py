"""Shared lazy thread-pool helper for the parallel pipeline steps."""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class LazyThreadPool:
    """A validated, lazily created, long-lived ``ThreadPoolExecutor``.

    The parallel steps (scoring, reduction, rendering) all need the same
    worker-pool plumbing: validate the worker count once, create the
    executor on first use, and reuse it for the owner's lifetime (a step
    lives as long as its engine).  This helper is that plumbing, written
    once.  Threads are the right pool for these steps: their NumPy-heavy
    work releases the GIL, and threads share the block payloads for free
    where a process pool would pickle every payload.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        thread_name_prefix: str = "worker",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers or min(16, os.cpu_count() or 1))
        self.thread_name_prefix = thread_name_prefix
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The pool, created on first use and reused thereafter."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix=self.thread_name_prefix,
            )
        return self._executor

    def map(self, fn: Callable[..., R], *iterables: Iterable) -> Iterator[R]:
        """``executor.map`` over the lazily created pool."""
        return self.executor.map(fn, *iterables)
