"""Figure 10 — dynamic adaptation without load redistribution.

The pipeline runs for 30 iterations with Algorithm 1 enabled and a fixed
target run time (120/60/20 s on 64 cores, 30/15/7 s on 400 cores in the
paper).  The reproduction records the per-iteration run time and reduction
percentage and checks convergence: after the first few iterations the run
time stays near the target (within the variability of the rendering task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import AdaptationConfig
from repro.experiments.common import ExperimentScenario

#: Target run times per core count used by the paper for Figure 10.
PAPER_FIG10_TARGETS: Dict[int, Sequence[float]] = {
    64: (120.0, 60.0, 20.0),
    400: (30.0, 15.0, 7.0),
}


@dataclass
class AdaptationTrace:
    """Per-iteration behaviour of one adaptive run."""

    target_seconds: float
    times: List[float] = field(default_factory=list)
    percents: List[float] = field(default_factory=list)

    def settling_error(self, warmup: int = 5) -> float:
        """Mean relative |time - target| after the warm-up iterations."""
        if len(self.times) <= warmup:
            return float("nan")
        tail = np.asarray(self.times[warmup:], dtype=np.float64)
        return float(np.mean(np.abs(tail - self.target_seconds)) / self.target_seconds)

    def converged(self, warmup: int = 5, tolerance: float = 0.5) -> bool:
        """Whether the post-warm-up run times stay within ``tolerance`` of the target."""
        err = self.settling_error(warmup)
        return bool(np.isfinite(err) and err <= tolerance)


@dataclass
class Fig10Result:
    """Traces for every target of one core count."""

    ncores: int
    redistribution: str
    traces: Dict[float, AdaptationTrace] = field(default_factory=dict)


def run_adaptation(
    scenario: Optional[ExperimentScenario] = None,
    targets: Optional[Sequence[float]] = None,
    niterations: int = 30,
    metric: str = "VAR",
    redistribution: str = "none",
) -> Fig10Result:
    """Reproduce Figure 10 (or Figure 11 when ``redistribution`` is enabled)."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=10)
    if targets is None:
        targets = PAPER_FIG10_TARGETS.get(scenario.nranks, (60.0, 20.0))
    # The paper replays 30 iterations; cycle over the available snapshots.
    snapshots = scenario.dataset.select(min(niterations, len(scenario.dataset)))
    result = Fig10Result(ncores=scenario.nranks, redistribution=redistribution)
    for target in targets:
        pipeline = scenario.build_pipeline(
            metric=metric,
            redistribution=redistribution,
            adaptation=AdaptationConfig(enabled=True, target_seconds=float(target)),
        )
        trace = AdaptationTrace(target_seconds=float(target))
        for i in range(niterations):
            snapshot_index = snapshots[i % len(snapshots)]
            blocks = scenario.blocks_for(snapshot_index)
            iteration_result, _ = pipeline.process_iteration(blocks)
            trace.times.append(iteration_result.modelled_total)
            trace.percents.append(iteration_result.percent_reduced)
        result.traces[float(target)] = trace
    return result


def format_fig10(result: Fig10Result, label: str = "Figure 10") -> str:
    """Text rendering of the adaptation traces."""
    lines = [
        f"{label} — adaptive runs ({result.ncores} cores, redistribution={result.redistribution})"
    ]
    for target, trace in result.traces.items():
        lines.append(
            f"  target {target:>6.1f} s: settling error {trace.settling_error():.2f}, "
            f"final percent {trace.percents[-1]:.1f}"
        )
        lines.append(
            "    times: " + " ".join(f"{t:6.1f}" for t in trace.times)
        )
        lines.append(
            "    perc : " + " ".join(f"{p:6.1f}" for p in trace.percents)
        )
    return "\n".join(lines)
