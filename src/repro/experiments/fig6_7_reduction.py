"""Figures 6 & 7 — rendering time as a function of the reduction percentage.

Figure 6 plots the per-iteration rendering time at a handful of fixed
percentages; Figure 7 plots the average/min/max rendering time against the
percentage of reduced blocks.  The paper's key observation — reproduced and
asserted by the benchmarks — is that the improvement is *not* proportional to
the percentage: since the high-score blocks are clustered on a few processes
(and many blocks are transparent), a majority of blocks must be reduced before
the slowest process gets any relief.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario


@dataclass
class ReductionSweepResult:
    """Rendering time per percentage (Figure 7) and per iteration (Figure 6)."""

    ncores: int
    percentages: List[float]
    #: ``series[p][i]`` = rendering seconds at percentage ``p``, iteration ``i``.
    series: Dict[float, List[float]] = field(default_factory=dict)

    def mean(self, percent: float) -> float:
        """Mean rendering seconds at one percentage."""
        return float(np.mean(self.series[percent]))

    def minimum(self, percent: float) -> float:
        """Minimum rendering seconds at one percentage."""
        return float(np.min(self.series[percent]))

    def maximum(self, percent: float) -> float:
        """Maximum rendering seconds at one percentage."""
        return float(np.max(self.series[percent]))

    def means(self) -> List[float]:
        """Mean rendering seconds for every percentage, in sweep order."""
        return [self.mean(p) for p in self.percentages]


def run_reduction_sweep(
    scenario: Optional[ExperimentScenario] = None,
    percentages: Sequence[float] = (0, 20, 40, 60, 80, 90, 94, 98, 100),
    niterations: int = 10,
    metric: str = "VAR",
    redistribution: str = "none",
) -> ReductionSweepResult:
    """Run the pipeline at each fixed percentage (Figures 6, 7 and 9)."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=max(niterations, 1))
    iteration_blocks = scenario.iteration_blocks(niterations)
    result = ReductionSweepResult(
        ncores=scenario.nranks, percentages=[float(p) for p in percentages]
    )
    for percent in result.percentages:
        pipeline = scenario.build_pipeline(metric=metric, redistribution=redistribution)
        times = []
        for blocks in iteration_blocks:
            iteration_result, _ = pipeline.process_iteration(
                blocks, percent_override=percent
            )
            times.append(iteration_result.modelled_rendering)
        result.series[percent] = times
    return result


def format_fig7(result: ReductionSweepResult) -> str:
    """Text rendering of the Figure 7 curve."""
    lines = [
        f"Figure 7 — rendering time vs percentage of reduced blocks ({result.ncores} cores)",
        f"{'% reduced':>10} {'mean s':>9} {'min s':>9} {'max s':>9}",
    ]
    for p in result.percentages:
        lines.append(
            f"{p:>10.0f} {result.mean(p):>9.1f} {result.minimum(p):>9.1f} {result.maximum(p):>9.1f}"
        )
    return "\n".join(lines)


def format_fig6(result: ReductionSweepResult) -> str:
    """Text rendering of the Figure 6 per-iteration series."""
    lines = [f"Figure 6 — per-iteration rendering time ({result.ncores} cores)"]
    header = "iter  " + "  ".join(f"{p:>6.0f}%" for p in result.percentages)
    lines.append(header)
    niter = len(next(iter(result.series.values()))) if result.series else 0
    for i in range(niter):
        row = f"{i:>4}  " + "  ".join(
            f"{result.series[p][i]:>7.1f}" for p in result.percentages
        )
        lines.append(row)
    return "\n".join(lines)
