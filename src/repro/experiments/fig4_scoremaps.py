"""Figure 4 — scoremaps of the domain for each metric.

The paper shows greyscale maps of the per-block scores next to the original
reflectivity colormap, so scientists can pick the metric whose high-score
region matches the feature they care about (the vortex region at the centre
of the storm).  The reproduction computes the same scoremaps and reports, per
metric, how strongly the high-score blocks overlap the storm's region of
interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario
from repro.metrics.registry import PAPER_METRICS, create_metric
from repro.metrics.scoremap import ScoreMap, compute_scoremap
from repro.viz.slice_render import extract_slice


@dataclass
class Fig4Result:
    """Scoremaps plus their overlap with the storm region."""

    scoremaps: Dict[str, ScoreMap]
    original_slice: np.ndarray
    #: Fraction of each metric's top-decile-score area lying inside the storm
    #: region (dBZ > 20 anywhere in the column).
    storm_overlap: Dict[str, float]


def run_fig4(
    scenario: Optional[ExperimentScenario] = None,
    metrics: Sequence[str] = PAPER_METRICS,
    snapshot_index: int = 0,
) -> Fig4Result:
    """Reproduce the Figure 4 scoremaps."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=1)
    field = np.asarray(
        scenario.dataset.snapshot(snapshot_index).get_field(scenario.config.field_name),
        dtype=np.float64,
    )
    decomposition = scenario.decomposition
    storm_columns = field.max(axis=2) > 20.0  # horizontal footprint of the storm
    scoremaps: Dict[str, ScoreMap] = {}
    overlap: Dict[str, float] = {}
    for name in metrics:
        metric = create_metric(name)
        smap = compute_scoremap(metric, decomposition, field)
        scoremaps[metric.name] = smap
        norm = smap.normalised()
        threshold = np.quantile(norm, 0.9)
        high = norm > threshold
        overlap[metric.name] = float(
            np.sum(high & storm_columns) / max(np.sum(high), 1)
        )
    return Fig4Result(
        scoremaps=scoremaps,
        original_slice=extract_slice(field),
        storm_overlap=overlap,
    )


def format_fig4(result: Fig4Result) -> str:
    """Text rendering of the scoremap/storm overlap summary."""
    lines = [
        "Figure 4 — scoremaps: overlap of each metric's top-decile blocks with the storm",
        f"{'metric':<10} {'storm overlap':>14}",
    ]
    for name, value in result.storm_overlap.items():
        lines.append(f"{name:<10} {value:>14.2f}")
    return "\n".join(lines)
