"""Figure 3 — pairwise comparison of the block orderings produced by the metrics.

For every pair of the six representative metrics, every block is placed at
(rank under metric A, rank under metric B).  The reproduction reports, per
pair, the Spearman rank correlation, the fraction of blocks whose two ranks
agree within 10%, and the size of the "quiet prefix" — the set of minimum-
score blocks that every metric orders identically (by block id), which is the
diagonal lower-left segment visible in the paper's scatter plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario
from repro.metrics.comparison import (
    MetricComparison,
    compare_metrics,
    score_blocks_with_metrics,
)
from repro.metrics.registry import PAPER_METRICS, create_metric


@dataclass
class Fig3Result:
    """Outcome of the Figure 3 reproduction."""

    comparisons: List[MetricComparison]
    quiet_prefix_size: Dict[str, int]
    nblocks: int

    def pair(self, metric_a: str, metric_b: str) -> MetricComparison:
        """Return the comparison of one (unordered) metric pair."""
        wanted = {metric_a.upper(), metric_b.upper()}
        for comp in self.comparisons:
            if {comp.metric_a, comp.metric_b} == wanted:
                return comp
        raise KeyError(f"no comparison for pair {metric_a!r}, {metric_b!r}")


def _quiet_prefix(scores: Dict[int, float]) -> int:
    """Number of blocks sharing the metric's minimum score."""
    values = np.asarray(list(scores.values()), dtype=np.float64)
    if values.size == 0:
        return 0
    return int(np.sum(np.isclose(values, values.min())))


def run_fig3(
    scenario: Optional[ExperimentScenario] = None,
    metrics: Sequence[str] = PAPER_METRICS,
    snapshot_index: int = 0,
    max_blocks: Optional[int] = 512,
) -> Fig3Result:
    """Reproduce the Figure 3 pairwise rank-agreement analysis."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=1)
    blocks = scenario.all_blocks(snapshot_index)
    if max_blocks is not None and len(blocks) > max_blocks:
        stride = int(np.ceil(len(blocks) / max_blocks))
        blocks = blocks[::stride]
    metric_objs = [create_metric(name) for name in metrics]
    per_metric_scores = score_blocks_with_metrics(metric_objs, blocks)
    comparisons = compare_metrics(per_metric_scores)
    quiet = {name: _quiet_prefix(scores) for name, scores in per_metric_scores.items()}
    return Fig3Result(
        comparisons=comparisons, quiet_prefix_size=quiet, nblocks=len(blocks)
    )


def format_fig3(result: Fig3Result) -> str:
    """Text rendering of the 15 pairwise comparisons."""
    lines = [
        f"Figure 3 — metric rank agreement over {result.nblocks} blocks",
        f"{'pair':<18} {'spearman':>9} {'close ranks (10%)':>18}",
    ]
    for comp in result.comparisons:
        lines.append(
            f"{comp.metric_a}/{comp.metric_b:<12} {comp.spearman:>9.3f} "
            f"{comp.agreement_fraction(0.1):>18.2f}"
        )
    return "\n".join(lines)
