"""Figure 1 — original vs filtered renderings of the reflectivity field.

Reproduces the four panels of the paper's Figure 1: a volume-style rendering
and a horizontal colormap of the dBZ field, each computed from (a/c) the
original data and (b/d) the data with every block reduced to 2×2×2 corners.
The driver reports the images (as arrays, optionally written to PGM files)
and the modelled rendering cost of both variants — the paper's 50 s → 1 s
observation at 400 cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.reduction_step import ReductionStep
from repro.experiments.common import ExperimentScenario
from repro.grid.reduction import reconstruct_block
from repro.viz.framebuffer import Framebuffer
from repro.viz.slice_render import render_colormap_slice
from repro.viz.volume import volume_max_projection


@dataclass
class Fig1Result:
    """Images and timings of the Figure 1 reproduction."""

    volume_original: np.ndarray
    volume_filtered: np.ndarray
    colormap_original: np.ndarray
    colormap_filtered: np.ndarray
    render_seconds_original: float
    render_seconds_filtered: float

    def save(self, directory: Path) -> Dict[str, Path]:
        """Write the four panels as PGM images; returns their paths."""
        directory = Path(directory)
        out = {}
        for name, img in (
            ("fig1a_volume_original", self.volume_original),
            ("fig1b_volume_filtered", self.volume_filtered),
            ("fig1c_colormap_original", self.colormap_original),
            ("fig1d_colormap_filtered", self.colormap_filtered),
        ):
            out[name] = Framebuffer.save_array_pgm(img, directory / f"{name}.pgm")
        return out


def _filtered_field(scenario: ExperimentScenario, snapshot_index: int) -> np.ndarray:
    """Full-domain field where every block has been reduced then re-expanded."""
    shape = scenario.config.shape
    out = np.zeros(shape, dtype=np.float64)
    reduction = ReductionStep()
    per_rank = scenario.blocks_for(snapshot_index)
    pairs = [(b.block_id, 0.0) for blocks in per_rank for b in blocks]
    reduced, _, _ = reduction.run(per_rank, sorted(pairs), percent=100.0)
    for blocks in reduced:
        for block in blocks:
            out[block.extent.slices] = reconstruct_block(block)
    return out


def run_fig1(
    scenario: Optional[ExperimentScenario] = None,
    snapshot_index: int = 0,
    level_index: Optional[int] = None,
) -> Fig1Result:
    """Reproduce the Figure 1 panels and the original-vs-filtered cost gap."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=1)
    field = scenario.dataset.snapshot(snapshot_index).get_field(scenario.config.field_name)
    field = np.asarray(field, dtype=np.float64)
    filtered = _filtered_field(scenario, snapshot_index)

    # Modelled rendering cost of both variants (p = 0 and p = 100).
    pipeline_orig = scenario.build_pipeline(metric="VAR", redistribution="none")
    res_orig, _ = pipeline_orig.process_iteration(
        scenario.blocks_for(snapshot_index), percent_override=0.0
    )
    pipeline_filt = scenario.build_pipeline(metric="VAR", redistribution="none")
    res_filt, _ = pipeline_filt.process_iteration(
        scenario.blocks_for(snapshot_index), percent_override=100.0
    )

    return Fig1Result(
        volume_original=volume_max_projection(field, vmin=-20.0, vmax=75.0),
        volume_filtered=volume_max_projection(filtered, vmin=-20.0, vmax=75.0),
        colormap_original=render_colormap_slice(field, level_index=level_index, vmin=-20.0, vmax=75.0),
        colormap_filtered=render_colormap_slice(filtered, level_index=level_index, vmin=-20.0, vmax=75.0),
        render_seconds_original=res_orig.modelled_rendering,
        render_seconds_filtered=res_filt.modelled_rendering,
    )
