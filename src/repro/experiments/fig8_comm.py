"""Figure 8 — redistribution communication time vs reduction percentage.

The data exchanged by the redistribution step shrinks as more blocks are
reduced (a reduced block is 8 values instead of tens of thousands), so the
communication time decreases with the percentage — while staying one to two
orders of magnitude below the rendering time, which is the paper's
justification for treating it as negligible (~1.2 s on 64 cores, ~0.6 s on
400 at 0 percent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario


@dataclass
class CommSweepResult:
    """Communication seconds per strategy and percentage."""

    ncores: int
    percentages: List[float]
    #: ``series[strategy][p]`` = list of per-iteration communication seconds.
    series: Dict[str, Dict[float, List[float]]] = field(default_factory=dict)

    def mean(self, strategy: str, percent: float) -> float:
        """Mean communication seconds of one strategy at one percentage."""
        return float(np.mean(self.series[strategy][percent]))

    def means(self, strategy: str) -> List[float]:
        """Mean communication seconds across the sweep for one strategy."""
        return [self.mean(strategy, p) for p in self.percentages]


def run_comm_sweep(
    scenario: Optional[ExperimentScenario] = None,
    percentages: Sequence[float] = (0, 20, 40, 60, 80, 100),
    niterations: int = 10,
    metric: str = "LEA",
    strategies: Sequence[str] = ("round_robin", "shuffle"),
) -> CommSweepResult:
    """Reproduce Figure 8 (the paper uses the LEA metric for this experiment)."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=max(niterations, 1))
    iteration_blocks = scenario.iteration_blocks(niterations)
    result = CommSweepResult(
        ncores=scenario.nranks, percentages=[float(p) for p in percentages]
    )
    for strategy in strategies:
        result.series[strategy] = {}
        for percent in result.percentages:
            pipeline = scenario.build_pipeline(metric=metric, redistribution=strategy)
            times = []
            for blocks in iteration_blocks:
                iteration_result, _ = pipeline.process_iteration(
                    blocks, percent_override=percent
                )
                times.append(iteration_result.modelled_steps["redistribution"])
            result.series[strategy][percent] = times
    return result


def format_fig8(result: CommSweepResult) -> str:
    """Text rendering of the Figure 8 curves."""
    lines = [
        f"Figure 8 — redistribution time vs percentage of reduced blocks ({result.ncores} cores)",
        f"{'% reduced':>10} " + " ".join(f"{s:>14}" for s in result.series),
    ]
    for p in result.percentages:
        row = f"{p:>10.0f} " + " ".join(
            f"{result.mean(s, p):>14.3f}" for s in result.series
        )
        lines.append(row)
    return "\n".join(lines)
