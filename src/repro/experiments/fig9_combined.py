"""Figure 9 — combined effect of reduction percentage and load redistribution.

The rendering time is swept over the reduction percentage with redistribution
disabled, random, and round-robin.  The reproduction checks the paper's two
observations: redistribution improves (and stabilises) the rendering time at
every percentage, and the round-robin and random policies perform equivalently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario
from repro.experiments.fig6_7_reduction import ReductionSweepResult, run_reduction_sweep


@dataclass
class CombinedSweepResult:
    """One reduction sweep per redistribution strategy."""

    ncores: int
    sweeps: Dict[str, ReductionSweepResult] = field(default_factory=dict)

    def mean(self, strategy: str, percent: float) -> float:
        """Mean rendering seconds of one strategy at one percentage."""
        return self.sweeps[strategy].mean(percent)

    def strategies(self) -> List[str]:
        """Strategies present in the sweep."""
        return list(self.sweeps)


def run_combined_sweep(
    scenario: Optional[ExperimentScenario] = None,
    percentages: Sequence[float] = (0, 20, 40, 60, 80, 90, 98, 100),
    niterations: int = 10,
    metric: str = "VAR",
    strategies: Sequence[str] = ("none", "round_robin", "shuffle"),
) -> CombinedSweepResult:
    """Reproduce Figure 9."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=max(niterations, 1))
    result = CombinedSweepResult(ncores=scenario.nranks)
    for strategy in strategies:
        result.sweeps[strategy] = run_reduction_sweep(
            scenario,
            percentages=percentages,
            niterations=niterations,
            metric=metric,
            redistribution=strategy,
        )
    return result


def format_fig9(result: CombinedSweepResult) -> str:
    """Text rendering of the Figure 9 curves."""
    strategies = result.strategies()
    first = result.sweeps[strategies[0]]
    lines = [
        f"Figure 9 — rendering time vs percentage, with/without redistribution ({result.ncores} cores)",
        f"{'% reduced':>10} " + " ".join(f"{s:>14}" for s in strategies),
    ]
    for p in first.percentages:
        lines.append(
            f"{p:>10.0f} " + " ".join(f"{result.mean(s, p):>14.1f}" for s in strategies)
        )
    return "\n".join(lines)
