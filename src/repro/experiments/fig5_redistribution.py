"""Figure 5 — rendering time under the different load-redistribution policies.

No block is reduced; the pipeline runs with (a) no redistribution, (b) random
shuffling, and (c) round-robin distribution driven by each of the six metrics.
The paper's findings, which the reproduction checks: redistribution speeds the
rendering up by several times (4× on 64 cores, 5× on 400 in the paper), and
the choice of metric — or using random shuffling instead — makes little
difference to the balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentScenario
from repro.metrics.registry import PAPER_METRICS


@dataclass
class Fig5Row:
    """Mean/min/max rendering seconds of one configuration."""

    label: str
    mean_seconds: float
    min_seconds: float
    max_seconds: float
    mean_comm_seconds: float


@dataclass
class Fig5Result:
    """All configurations of one core count."""

    ncores: int
    rows: List[Fig5Row]

    def row(self, label: str) -> Fig5Row:
        """Row with the given label (NONE, SHUFFLE, or a metric name)."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r}")

    def speedup(self, label: str) -> float:
        """Speedup of configuration ``label`` relative to NONE."""
        baseline = self.row("NONE").mean_seconds
        other = self.row(label).mean_seconds
        if other <= 0:
            return float("inf")
        return baseline / other


def run_fig5(
    scenario: Optional[ExperimentScenario] = None,
    niterations: int = 10,
    metrics: Sequence[str] = PAPER_METRICS,
    fast_metric_only: bool = False,
) -> Fig5Result:
    """Reproduce Figure 5 for one scenario.

    Parameters
    ----------
    niterations:
        Number of equally spaced iterations to process per configuration
        (the paper uses 10).
    fast_metric_only:
        When True only the VAR-driven round-robin is run in addition to NONE
        and SHUFFLE (used by the small benchmark scale to bound run time).
    """
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=max(niterations, 1))
    iteration_blocks = scenario.iteration_blocks(niterations)
    rows: List[Fig5Row] = []

    def run_config(label: str, metric: str, redistribution: str) -> Fig5Row:
        pipeline = scenario.build_pipeline(metric=metric, redistribution=redistribution)
        render_times = []
        comm_times = []
        for blocks in iteration_blocks:
            result, _ = pipeline.process_iteration(blocks, percent_override=0.0)
            render_times.append(result.modelled_rendering)
            comm_times.append(result.modelled_steps["redistribution"])
        return Fig5Row(
            label=label,
            mean_seconds=float(np.mean(render_times)),
            min_seconds=float(np.min(render_times)),
            max_seconds=float(np.max(render_times)),
            mean_comm_seconds=float(np.mean(comm_times)),
        )

    rows.append(run_config("NONE", "VAR", "none"))
    rows.append(run_config("SHUFFLE", "VAR", "shuffle"))
    selected = ("VAR",) if fast_metric_only else tuple(metrics)
    for name in selected:
        rows.append(run_config(name, name, "round_robin"))
    return Fig5Result(ncores=scenario.nranks, rows=rows)


def format_fig5(result: Fig5Result) -> str:
    """Text rendering of the Figure 5 bars."""
    lines = [
        f"Figure 5 — rendering time per redistribution policy ({result.ncores} cores, p=0)",
        f"{'policy':<10} {'mean s':>9} {'min s':>9} {'max s':>9} {'speedup':>9} {'comm s':>8}",
    ]
    for row in result.rows:
        speedup = result.speedup(row.label)
        lines.append(
            f"{row.label:<10} {row.mean_seconds:>9.1f} {row.min_seconds:>9.1f} "
            f"{row.max_seconds:>9.1f} {speedup:>9.2f} {row.mean_comm_seconds:>8.2f}"
        )
    return "\n".join(lines)
