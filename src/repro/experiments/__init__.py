"""Experiment drivers reproducing every table and figure of the paper.

Each module regenerates one artefact of the paper's evaluation section
(Section V) from this repository's synthetic substrate, in modelled
"Blue Waters seconds":

=======================  ============================================
:mod:`fig1_renderings`    Fig. 1 — original vs filtered renderings
:mod:`table1_metric_cost` Table I — metric scoring cost on 64/400 cores
:mod:`fig3_metric_agreement` Fig. 3 — pairwise metric rank agreement
:mod:`fig4_scoremaps`     Fig. 4 — scoremaps vs the original dBZ field
:mod:`fig5_redistribution` Fig. 5 — rendering time per redistribution strategy
:mod:`fig6_7_reduction`   Figs. 6 & 7 — rendering time vs reduction percentage
:mod:`fig8_comm`          Fig. 8 — redistribution communication time vs percentage
:mod:`fig9_combined`      Fig. 9 — reduction x redistribution interaction
:mod:`fig10_adaptation`   Fig. 10 — adaptation without redistribution
:mod:`fig11_full_pipeline` Fig. 11 — full pipeline with adaptation
=======================  ============================================

:mod:`repro.experiments.common` provides the shared scenario construction and
platform calibration; the ``benchmarks/`` tree wraps each driver in a
pytest-benchmark entry that prints the regenerated rows/series.
"""

from repro.experiments.common import ExperimentScenario, ScenarioConfig

__all__ = ["ExperimentScenario", "ScenarioConfig"]
