"""Figure 11 — the full pipeline (reduction + redistribution) under adaptation.

Same protocol as Figure 10 but with load redistribution enabled, which lets
the pipeline meet much tighter targets (25/10 s on 64 cores, 7/3 s on 400
cores in the paper) because redistribution already removes most of the
load imbalance before any data has to be sacrificed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import ExperimentScenario
from repro.experiments.fig10_adaptation import Fig10Result, format_fig10, run_adaptation

#: Target run times per core count used by the paper for Figure 11.
PAPER_FIG11_TARGETS: Dict[int, Sequence[float]] = {
    64: (25.0, 10.0),
    400: (7.0, 3.0),
}


def run_full_pipeline_adaptation(
    scenario: Optional[ExperimentScenario] = None,
    targets: Optional[Sequence[float]] = None,
    niterations: int = 30,
    metric: str = "VAR",
    redistribution: str = "round_robin",
) -> Fig10Result:
    """Reproduce Figure 11."""
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=10)
    if targets is None:
        targets = PAPER_FIG11_TARGETS.get(scenario.nranks, (25.0, 10.0))
    return run_adaptation(
        scenario,
        targets=targets,
        niterations=niterations,
        metric=metric,
        redistribution=redistribution,
    )


def format_fig11(result: Fig10Result) -> str:
    """Text rendering of the Figure 11 traces."""
    return format_fig10(result, label="Figure 11")
