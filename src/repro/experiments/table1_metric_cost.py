"""Table I — computation time required for different metrics.

The paper scores 16,000 blocks of 55×55×38 floats and reports the elapsed
seconds per metric on 64 and 400 cores.  The reproduction reports, for each of
the six representative metrics:

* the **measured** wall-clock seconds to score this repository's laptop-scale
  blocks (a sanity check that the relative ordering of metric costs —
  VAR < LEA < RANGE < FPZIP < ITL < TRILIN — is preserved by the
  implementations);
* the **modelled** seconds for the paper's exact workload (16,000 blocks of
  55×55×38 values spread over 64 / 400 cores) using the per-point
  coefficients calibrated from Table I, next to the paper's published value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentScenario
from repro.metrics.registry import PAPER_METRICS, create_metric
from repro.perfmodel.calibration import (
    PAPER_BLOCK_SHAPE,
    PAPER_NBLOCKS,
    TABLE1_SECONDS,
    paper_points_per_core,
)
from repro.utils.timer import Timer


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    metric: str
    measured_seconds: float
    measured_blocks: int
    modelled_seconds_64: float
    modelled_seconds_400: float
    paper_seconds_64: float
    paper_seconds_400: float


def run_table1(
    scenario: Optional[ExperimentScenario] = None,
    metrics: Sequence[str] = PAPER_METRICS,
    max_blocks: int = 128,
) -> List[Table1Row]:
    """Reproduce Table I.

    Parameters
    ----------
    scenario:
        Scenario providing the blocks to score; a 64-core scenario is built
        when omitted.
    metrics:
        Metric names to evaluate (default: the paper's six).
    max_blocks:
        Number of laptop-scale blocks actually scored for the measured column
        (keeps the pure-Python compressor metrics affordable).
    """
    scenario = scenario or ExperimentScenario.blue_waters(64, nsnapshots=1)
    blocks = scenario.all_blocks(0)[: max(1, int(max_blocks))]
    points_per_core = {n: paper_points_per_core(n) for n in (64, 400)}
    rows: List[Table1Row] = []
    for name in metrics:
        metric = create_metric(name)
        with Timer() as timer:
            for block in blocks:
                metric.score_block(block.data)
        cost64 = scenario.platform.metric_costs.get(metric.name, metric.cost)
        rows.append(
            Table1Row(
                metric=metric.name,
                measured_seconds=timer.elapsed,
                measured_blocks=len(blocks),
                modelled_seconds_64=cost64.per_point * points_per_core[64],
                modelled_seconds_400=cost64.per_point * points_per_core[400],
                paper_seconds_64=TABLE1_SECONDS.get(metric.name, {}).get(64, float("nan")),
                paper_seconds_400=TABLE1_SECONDS.get(metric.name, {}).get(400, float("nan")),
            )
        )
    return rows


def format_table(rows: Sequence[Table1Row]) -> str:
    """Render the reproduced Table I as text."""
    lines = [
        "Table I — metric scoring cost (modelled for the paper's 16,000 x 55x55x38 blocks)",
        f"{'Metric':<8} {'measured s (laptop blocks)':>28} {'64-core model/paper':>22} {'400-core model/paper':>22}",
    ]
    for row in rows:
        lines.append(
            f"{row.metric:<8} {row.measured_seconds:>20.3f} ({row.measured_blocks:>4}) "
            f"{row.modelled_seconds_64:>10.2f} / {row.paper_seconds_64:<8.2f} "
            f"{row.modelled_seconds_400:>10.2f} / {row.paper_seconds_400:<8.2f}"
        )
    return "\n".join(lines)
