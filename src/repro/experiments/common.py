"""Shared scenario construction for the experiment drivers.

Workload *parameters* live in the scenario registry
(:mod:`repro.scenarios`): ``ScenarioConfig`` is re-exported from there, the
named constructors (``blue_waters``, ``tiny``, ``from_name``) resolve
through the registry, and :func:`cached_scenario` memoises construction
keyed by the full resolved config.  This module adds what the *experiments*
need on top of a config — data, decomposition, and calibration.

An :class:`ExperimentScenario` bundles everything an experiment needs:

* a synthetic CM1 dataset at laptop scale (the paper's 2200×2200×380 grid
  scaled down by 10× per horizontal axis, same aspect ratio);
* a CM1-style horizontal domain decomposition over the configured number of
  virtual ranks, with a constant number of equally-sized blocks per rank;
* a :class:`~repro.perfmodel.platform.PlatformModel` whose rendering cost is
  **calibrated** so that the reference workload (iteration 0, no reduction,
  no redistribution) costs exactly the paper's baseline on the slowest rank
  (160 s on 64 cores, 50 s on 400 cores) — after which every other number the
  drivers report emerges from the data and the model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from repro.cm1.config import CM1Config
from repro.cm1.dataset import CM1Dataset
from repro.core.config import AdaptationConfig, PipelineConfig
from repro.core.pipeline import InSituPipeline
from repro.grid.block import Block
from repro.grid.decomposition import CartesianDecomposition, factorize_ranks
from repro.perfmodel.calibration import PAPER_BASELINES, calibrate_render_model
from repro.perfmodel.platform import PlatformModel
from repro.scenarios import ScenarioConfig, create_scenario_config
from repro.simmpi.costmodel import NetworkCostModel
from repro.viz.catalyst import IsosurfaceScript

__all__ = [
    "ExperimentScenario",
    "ScenarioConfig",
    "bench_scale",
    "cached_scenario",
    "render_baseline_seconds",
]

#: Environment variable selecting the experiment scale ("small" or "full").
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale() -> str:
    """Experiment scale selected through the environment (default "small")."""
    value = os.environ.get(SCALE_ENV_VAR, "small").strip().lower()
    if value not in ("small", "full"):
        raise ValueError(
            f"{SCALE_ENV_VAR} must be 'small' or 'full', got {value!r}"
        )
    return value


@dataclass(frozen=True)
class ExchangeCalibratedNetwork(NetworkCostModel):
    """Network model whose block-exchange bandwidth is calibrated separately.

    Latency-bound collectives (barrier, the score sort's gather/broadcast) use
    the physical Blue Waters parameters, while the personalised all-to-all of
    the redistribution step uses an *effective* bandwidth calibrated so that a
    full exchange of this repository's (much smaller) blocks costs what the
    paper measured (~1.2 s on 64 cores, ~0.6 s on 400).
    """

    exchange_bandwidth: float = 6.0e9

    def alltoallv(self, send_matrix_bytes, nranks: int) -> float:
        effective = NetworkCostModel(
            latency=self.latency,
            bandwidth=self.exchange_bandwidth,
            per_rank_overhead=self.per_rank_overhead,
        )
        return effective.alltoallv(send_matrix_bytes, nranks)


def render_baseline_seconds(ncores: int) -> float:
    """The paper's no-reduction/no-redistribution rendering baseline for ``ncores``."""
    baselines = PAPER_BASELINES["render_none"]
    if ncores in baselines:
        return baselines[ncores]
    # Scale the 64-core baseline by the core ratio for other configurations.
    return baselines[64] * 64.0 / float(ncores)


class ExperimentScenario:
    """Dataset + decomposition + calibrated platform for one configuration.

    ``dataset`` (optional) replaces the live CM1 simulation with any object
    exposing the :class:`~repro.cm1.dataset.CM1Dataset` access surface
    (``select``, ``per_rank_blocks``) — typically a
    :class:`~repro.cm1.dataset.StoredCM1Dataset` opened with ``mmap=True``,
    which is how the serve mode's replay cache avoids re-simulating CM1.
    """

    def __init__(self, config: ScenarioConfig, dataset=None) -> None:
        self.config = config
        if dataset is not None:
            self.dataset = dataset
        else:
            if config.storm is not None:
                cm1 = CM1Config(
                    shape=config.shape, seed=config.seed, storm=config.storm
                )
            else:
                cm1 = CM1Config(shape=config.shape, seed=config.seed)
            self.dataset = CM1Dataset(cm1, nsnapshots=config.nsnapshots, cache=True)
        # CM1 decomposes horizontally; keep the vertical column on one rank.
        px, py = factorize_ranks(config.ncores, ndims=2)
        self.decomposition = CartesianDecomposition(
            global_shape=config.shape,
            nranks=config.ncores,
            blocks_per_subdomain=config.blocks_per_subdomain,
            rank_dims_override=(px, py, 1),
        )
        self._blocks_cache: Dict[int, List[List[Block]]] = {}
        self.platform = self._calibrated_platform()

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_name(cls, name: str, **overrides) -> "ExperimentScenario":
        """Scenario built from a registered workload name.

        Keyword overrides (``ncores``, ``nsnapshots``, ``shape``, ``seed``,
        ...) replace the registered family's defaults; ``None`` values are
        ignored, so CLI arguments forward directly.
        """
        return cls(create_scenario_config(name, **overrides))

    @classmethod
    def blue_waters(cls, ncores: int = 64, nsnapshots: int = 10) -> "ExperimentScenario":
        """Scenario matching one of the paper's two configurations."""
        if ncores == 64:
            return cls.from_name("blue_waters_64", nsnapshots=nsnapshots)
        if ncores == 400:
            return cls.from_name("blue_waters_400", nsnapshots=nsnapshots)
        return cls(ScenarioConfig(ncores=ncores, nsnapshots=nsnapshots))

    @classmethod
    def tiny(cls, nranks: int = 4, nsnapshots: int = 2) -> "ExperimentScenario":
        """Unit-test-sized scenario."""
        return cls.from_name("tiny", ncores=nranks, nsnapshots=nsnapshots)

    # -- data access --------------------------------------------------------------

    @property
    def nranks(self) -> int:
        """Number of virtual ranks of the scenario."""
        return self.config.ncores

    @property
    def nblocks(self) -> int:
        """Total number of blocks per iteration."""
        return self.decomposition.nblocks

    def blocks_for(self, snapshot_index: int) -> List[List[Block]]:
        """Per-rank block lists of one snapshot (cached)."""
        if snapshot_index not in self._blocks_cache:
            self._blocks_cache[snapshot_index] = self.dataset.per_rank_blocks(
                self.decomposition, snapshot_index, self.config.field_name
            )
        return self._blocks_cache[snapshot_index]

    def iteration_blocks(self, count: Optional[int] = None) -> List[List[List[Block]]]:
        """Blocks of ``count`` equally spaced snapshots (default: all)."""
        count = self.config.nsnapshots if count is None else count
        return [self.blocks_for(i) for i in self.dataset.select(count)]

    def all_blocks(self, snapshot_index: int = 0) -> List[Block]:
        """Flat list of every block of one snapshot."""
        return [b for rank_blocks in self.blocks_for(snapshot_index) for b in rank_blocks]

    # -- calibration ---------------------------------------------------------------

    def reference_workload(self) -> Dict[str, int]:
        """Work counts of the slowest rank at iteration 0, p=0, no redistribution."""
        script = IsosurfaceScript(level=self.config.isosurface_level, mode="count")
        per_rank = self.blocks_for(0)
        worst = {"triangles": 0, "points": 0, "blocks": 0}
        for blocks in per_rank:
            result = script.process(blocks, iteration=0)
            if result.ntriangles >= worst["triangles"]:
                worst = {
                    "triangles": result.ntriangles,
                    "points": result.npoints,
                    "blocks": len(blocks),
                }
        return worst

    def _calibrated_platform(self) -> PlatformModel:
        platform = PlatformModel.blue_waters(self.config.ncores)
        worst = self.reference_workload()
        if worst["triangles"] <= 0:
            # Degenerate scenario (no isosurface at iteration 0): keep defaults.
            return platform
        render = calibrate_render_model(
            max_rank_triangles=worst["triangles"],
            max_rank_points=worst["points"],
            max_rank_blocks=worst["blocks"],
            target_seconds=render_baseline_seconds(self.config.ncores),
        )
        network = self._calibrated_network()
        return PlatformModel(
            name=platform.name,
            ncores=platform.ncores,
            network=network,
            render=render,
            metric_costs=dict(platform.metric_costs),
        )

    def _calibrated_network(self) -> NetworkCostModel:
        """Effective network model anchored to the paper's redistribution cost.

        The paper measures ~1.2 s (64 cores) / ~0.6 s (400 cores) to exchange
        the full set of unreduced blocks.  Our synthetic blocks are much
        smaller than the paper's 55x55x38 ones, so the physical Gemini
        bandwidth would make the exchange vanish; instead the *exchange*
        bandwidth is set so that a full shuffle of iteration 0 at 0 percent
        reduced costs the paper's baseline — preserving the relative shape of
        Figure 8 (communication time decreasing with the reduction
        percentage) at the paper's absolute scale.  All other collectives
        (notably the score sort) keep the physical parameters.
        """
        baselines = PAPER_BASELINES["redistribution_comm"]
        target = baselines.get(self.config.ncores)
        if target is None:
            target = baselines[64] * 64.0 / float(self.config.ncores)
        per_rank = self.blocks_for(0)
        total_bytes = sum(b.nbytes for blocks in per_rank for b in blocks)
        nranks = max(self.nranks, 2)
        # Worst-rank send+receive volume of a full exchange (uniform estimate).
        worst_bytes = 2.0 * total_bytes * (nranks - 1) / nranks / nranks
        default = NetworkCostModel.blue_waters()
        if worst_bytes <= 0 or target <= 0:
            return default
        return ExchangeCalibratedNetwork(
            latency=default.latency,
            bandwidth=default.bandwidth,
            per_rank_overhead=default.per_rank_overhead,
            exchange_bandwidth=worst_bytes / target,
        )

    # -- pipeline construction ------------------------------------------------------

    def build_pipeline(
        self,
        metric: str = "VAR",
        redistribution: str = "none",
        adaptation: Optional[AdaptationConfig] = None,
        render_mode: str = "count",
        engine: Optional[str] = None,
        pipelined: bool = False,
        quality_ladder: Optional[tuple] = None,
    ) -> InSituPipeline:
        """Build a pipeline wired to this scenario's platform and rank count.

        ``engine`` selects the execution backend ("serial", "vectorized",
        or "parallel");
        the default follows :class:`PipelineConfig` (vectorized).
        ``pipelined=True`` runs feedback-free multi-iteration calls on the
        overlapping :class:`~repro.core.engine.PipelinedEngine`.
        ``quality_ladder`` forwards a reduction quality ladder (``(level,
        fraction)`` rungs); ``None`` keeps the all-corners default.
        """
        config = PipelineConfig(
            metric=metric,
            redistribution=redistribution,
            isosurface_level=self.config.isosurface_level,
            render_mode=render_mode,
            field_name=self.config.field_name,
            adaptation=adaptation
            if adaptation is not None
            else AdaptationConfig(enabled=False, target_seconds=1.0),
            shuffle_seed=self.config.seed,
            pipelined=pipelined,
            **({} if engine is None else {"engine": engine}),
            **({} if quality_ladder is None else {"quality_ladder": quality_ladder}),
        )
        return InSituPipeline(config, self.platform, nranks=self.nranks)


@lru_cache(maxsize=8)
def _scenario_for_config(config: ScenarioConfig) -> ExperimentScenario:
    """Memoised scenario construction keyed by the *full* config.

    ``ScenarioConfig`` is frozen and hashable, so two workloads that happen
    to share a scale (say ``tiny`` and ``turbulence_field`` at 4 ranks / 2
    snapshots) occupy distinct cache slots — the cache key is the scenario's
    identity, not its size.
    """
    return ExperimentScenario(config)


def cached_scenario(
    ncores: Optional[int] = None,
    nsnapshots: Optional[int] = None,
    name: Optional[str] = None,
) -> ExperimentScenario:
    """Memoised scenario construction shared by the benchmark modules.

    Building a scenario generates the synthetic dataset and calibrates the
    platform, which takes a few seconds at the 400-rank scale; the benchmarks
    for different figures share the same scenario through this cache.

    ``name`` selects a registered workload (with optional ``ncores`` /
    ``nsnapshots`` overrides).  Without a name, the historical behaviour is
    preserved: 64 and 400 cores resolve to the paper's two configurations,
    any other count to a generic supercell scenario.
    """
    if name is None:
        if ncores is None:
            raise TypeError("cached_scenario requires a scenario name or ncores")
        if ncores == 64:
            name = "blue_waters_64"
        elif ncores == 400:
            name = "blue_waters_400"
        else:
            config = ScenarioConfig(
                ncores=ncores,
                **({} if nsnapshots is None else {"nsnapshots": nsnapshots}),
            )
            return _scenario_for_config(config)
    config = create_scenario_config(name, ncores=ncores, nsnapshots=nsnapshots)
    return _scenario_for_config(config)
