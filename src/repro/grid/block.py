"""Blocks: the unit of scoring, reduction, and redistribution.

A :class:`Block` carries a regular subarray of the domain (its *extent* in
global index space) plus the field payload for that extent.  After the
reduction step a block's payload is replaced by its 8 corner values
(2×2×2) but its extent is unchanged, so downstream consumers can still
reconstruct an interpolated approximation over the original region.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockExtent:
    """Half-open index extent ``[start, stop)`` of a block in global index space."""

    start: Tuple[int, int, int]
    stop: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.start) != 3 or len(self.stop) != 3:
            raise ValueError("start and stop must be 3-tuples")
        start = tuple(int(v) for v in self.start)
        stop = tuple(int(v) for v in self.stop)
        for lo, hi in zip(start, stop):
            if lo < 0 or hi <= lo:
                raise ValueError(f"invalid extent: start={start} stop={stop}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "stop", stop)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Number of points covered along each axis."""
        return tuple(hi - lo for lo, hi in zip(self.start, self.stop))

    @property
    def npoints(self) -> int:
        """Total number of points covered by the extent."""
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def slices(self) -> Tuple[slice, slice, slice]:
        """Index slices selecting this extent from a global array."""
        return tuple(slice(lo, hi) for lo, hi in zip(self.start, self.stop))

    def contains(self, point: Tuple[int, int, int]) -> bool:
        """True if the global index ``point`` lies inside the extent."""
        return all(lo <= p < hi for p, lo, hi in zip(point, self.start, self.stop))

    def overlaps(self, other: "BlockExtent") -> bool:
        """True if the two extents share at least one point."""
        return all(
            lo1 < hi2 and lo2 < hi1
            for lo1, hi1, lo2, hi2 in zip(self.start, self.stop, other.start, other.stop)
        )

    def corner_indices(self) -> Tuple[Tuple[int, int, int], ...]:
        """Global indices of the 8 corner points (last point is ``stop - 1``)."""
        xs = (self.start[0], self.stop[0] - 1)
        ys = (self.start[1], self.stop[1] - 1)
        zs = (self.start[2], self.stop[2] - 1)
        return tuple((i, j, k) for i in xs for j in ys for k in zs)


@dataclass(frozen=True)
class Block:
    """A block of field data.

    Attributes
    ----------
    block_id:
        Globally unique integer id (dense, ``0 .. nblocks-1``).
    extent:
        Position of the block in global index space.
    data:
        Payload array.  Shape equals ``extent.shape`` for a full block, or
        ``(2, 2, 2)`` (``(2, 2)`` for 2-D use) for a reduced block.
    owner:
        Rank currently responsible for this block.
    home:
        Rank that originally produced the block (before redistribution).
    reduced:
        Whether the payload has been reduced to corner values.
    score:
        Relevance score assigned by the scoring step, if any.
    field_name:
        Name of the field the payload belongs to (e.g. ``"dbz"``).
    """

    block_id: int
    extent: BlockExtent
    data: np.ndarray
    owner: int = 0
    home: int = 0
    reduced: bool = False
    score: Optional[float] = None
    field_name: str = "dbz"

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise ValueError(f"block_id must be >= 0, got {self.block_id}")
        data = np.asarray(self.data)
        if data.ndim != 3:
            raise ValueError(f"block data must be 3-D, got shape {data.shape}")
        if not self.reduced and tuple(data.shape) != self.extent.shape:
            raise ValueError(
                f"full block data shape {data.shape} does not match extent "
                f"shape {self.extent.shape}"
            )
        if self.reduced and tuple(data.shape) != (2, 2, 2):
            raise ValueError(
                f"reduced block data must have shape (2, 2, 2), got {data.shape}"
            )
        object.__setattr__(self, "data", data)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (what redistribution actually transfers)."""
        return int(self.data.nbytes)

    @property
    def npoints_payload(self) -> int:
        """Number of points currently stored in the payload."""
        return int(self.data.size)

    @property
    def npoints_full(self) -> int:
        """Number of points the block covers in the domain (reduced or not)."""
        return self.extent.npoints

    def _clone_with(self, **updates: object) -> "Block":
        """Copy of the block with some fields replaced, skipping re-validation.

        Only safe for fields that don't participate in the payload/extent
        consistency checks (owner, score): the payload was validated when the
        block was built, and these copies happen once per block per pipeline
        step, which makes ``dataclasses.replace``'s re-validation the hot
        path's dominant cost.  The frozen-dataclass guard lives in
        ``__setattr__``, so filling the fresh instance's ``__dict__`` directly
        is both legal and the fastest copy Python offers.
        """
        clone = object.__new__(Block)
        clone.__dict__.update(self.__dict__)
        clone.__dict__.update(updates)
        return clone

    def with_owner(self, owner: int) -> "Block":
        """Return a copy of the block assigned to a different ``owner`` rank."""
        if owner < 0:
            raise ValueError(f"owner must be >= 0, got {owner}")
        return self._clone_with(owner=int(owner))

    def with_score(self, score: float) -> "Block":
        """Return a copy of the block with ``score`` attached."""
        return self._clone_with(score=float(score))

    def with_data(self, data: np.ndarray, reduced: bool) -> "Block":
        """Return a copy of the block carrying a new payload."""
        return replace(self, data=np.asarray(data), reduced=bool(reduced))

    def with_corner_payload(self, corners: np.ndarray) -> "Block":
        """Return a reduced copy carrying 2×2×2 ``corners`` (fast path).

        Equivalent to ``with_data(corners, reduced=True)`` but skipping the
        dataclass ``replace``/re-validation machinery: the only constraint a
        reduced block carries is the (2, 2, 2) payload shape, checked here
        directly.  This is the clone the batched reduction step performs once
        per reduced block per iteration, where ``replace``'s overhead is the
        hot path's dominant cost (rows of a ``reduce_to_corners_batch``
        result are already validated by construction).
        """
        corners = np.asarray(corners)
        if corners.shape != (2, 2, 2):
            raise ValueError(
                f"reduced block data must have shape (2, 2, 2), got {corners.shape}"
            )
        return self._clone_with(data=corners, reduced=True)

    def value_range(self) -> Tuple[float, float]:
        """(min, max) of the payload values."""
        return (float(self.data.min()), float(self.data.max()))
